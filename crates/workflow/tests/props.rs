//! Property tests for the workflow layer: stage buffers under arbitrary
//! completion orders, registry accounting, and coordinator runs over
//! arbitrary pipeline shapes. Runs on the in-repo `props!` harness.

use impress_pilot::backend::SimulatedBackend;
use impress_pilot::{Completion, PilotConfig, ResourceRequest, TaskDescription, TaskId};
use impress_sim::{props, SimDuration, SimTime};
use impress_workflow::stage::StageBuffer;
use impress_workflow::{Coordinator, NoDecisions, PipelineLogic, Registry, Step};

fn completion(id: u64) -> Completion {
    Completion {
        task: TaskId(id),
        name: format!("t{id}"),
        tag: String::new(),
        result: Ok(None),
        started: SimTime::ZERO,
        finished: SimTime::ZERO,
        attempts: 0,
        hedged: false,
    }
}

props! {
    /// Whatever order completions arrive in, the buffer releases exactly
    /// once, with the batch in submission order.
    fn stage_buffer_orders_any_arrival(rng) {
        let n = 1 + rng.below(39);
        let ids: Vec<TaskId> = (0..n as u64).map(TaskId).collect();
        let mut buffer = StageBuffer::new(ids.clone());
        let mut order: Vec<u64> = (0..n as u64).collect();
        rng.shuffle(&mut order);
        let mut released = None;
        for (i, id) in order.iter().enumerate() {
            let out = buffer.record(completion(*id));
            if i + 1 < n {
                assert!(out.is_none(), "released early");
            } else {
                released = out;
            }
        }
        let batch = released.expect("released at the last completion");
        let got: Vec<u64> = batch.iter().map(|c| c.task.0).collect();
        assert_eq!(got, (0..n as u64).collect::<Vec<_>>());
    }

    /// Registry counters are consistent under arbitrary interleavings of
    /// registrations, stages and finishes.
    fn registry_accounting_is_consistent(rng) {
        let script: Vec<(u8, usize)> = {
            let len = 1 + rng.below(59);
            (0..len)
                .map(|_| (rng.below(3) as u8, rng.below(8)))
                .collect()
        };
        let mut reg = Registry::new();
        let mut live: Vec<impress_workflow::PipelineId> = Vec::new();
        let mut total_tasks = 0usize;
        let mut roots = 0usize;
        let mut subs = 0usize;
        for (op, arg) in script {
            match op {
                0 => {
                    // register (sub of a live pipeline when one exists and
                    // arg is odd)
                    let parent = if arg % 2 == 1 && !live.is_empty() {
                        Some(live[arg % live.len()])
                    } else {
                        None
                    };
                    if parent.is_some() { subs += 1 } else { roots += 1 }
                    let id = reg.register(format!("p{arg}"), parent, SimTime::ZERO);
                    live.push(id);
                }
                1 => {
                    if let Some(&id) = live.get(arg % live.len().max(1)) {
                        let n = arg + 1;
                        reg.note_stage_submitted(id, n);
                        total_tasks += n;
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let id = live.remove(arg % live.len());
                        reg.finish(id, impress_workflow::PipelineState::Completed, SimTime::ZERO);
                    }
                }
            }
        }
        assert_eq!(reg.root_count(), roots);
        assert_eq!(reg.sub_count(), subs);
        assert_eq!(reg.total_tasks(), total_tasks);
        assert_eq!(reg.live_count(), live.len());
    }

    /// A coordinator over arbitrary pipeline shapes (stage counts, fan-outs)
    /// always terminates with every pipeline completed and the task ledger
    /// matching the shapes.
    fn coordinator_terminates_for_arbitrary_shapes(rng) {
        let shapes: Vec<Vec<usize>> = {
            let n_pipelines = 1 + rng.below(5);
            (0..n_pipelines)
                .map(|_| {
                    let n_stages = 1 + rng.below(4);
                    (0..n_stages).map(|_| 1 + rng.below(3)).collect()
                })
                .collect()
        };

        struct Shaped {
            stages: Vec<usize>,
            cursor: usize,
        }
        impl Shaped {
            fn next(&mut self) -> Step<usize> {
                if self.cursor >= self.stages.len() {
                    return Step::Complete(self.cursor);
                }
                let n = self.stages[self.cursor];
                self.cursor += 1;
                Step::Submit(
                    (0..n)
                        .map(|i| {
                            TaskDescription::new(
                                format!("s{}-{i}", self.cursor),
                                ResourceRequest::cores(1),
                                SimDuration::from_secs(1 + i as u64),
                            )
                            .with_work(|| ())
                        })
                        .collect(),
                )
            }
        }
        impl PipelineLogic<usize> for Shaped {
            fn name(&self) -> String {
                "shaped".into()
            }
            fn begin(&mut self) -> Step<usize> {
                self.next()
            }
            fn stage_done(&mut self, _: Vec<Completion>) -> Step<usize> {
                self.next()
            }
        }

        let expected_tasks: usize = shapes.iter().flatten().sum();
        let backend = SimulatedBackend::new(PilotConfig {
            bootstrap: SimDuration::from_secs(1),
            exec_setup_per_task: SimDuration::ZERO,
            ..PilotConfig::default()
        });
        let mut coord = Coordinator::new(backend, NoDecisions);
        for stages in &shapes {
            coord.add_pipeline(Box::new(Shaped {
                stages: stages.clone(),
                cursor: 0,
            }));
        }
        let report = coord.run();
        assert_eq!(coord.outcomes().len(), shapes.len());
        assert_eq!(report.total_tasks, expected_tasks);
        assert_eq!(report.root_pipelines, shapes.len());
        // Every outcome reports its own stage count.
        for (_, stages_done) in coord.outcomes() {
            assert!(*stages_done <= 5);
        }
    }
}
