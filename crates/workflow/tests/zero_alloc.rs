//! Zero-allocation pins for the workflow fast path.
//!
//! Two perf claims the journal group commit rests on, pinned so they
//! cannot rot silently:
//!
//! 1. **`ToJsonBuf` serialization is zero-alloc**: writing a record's
//!    compact JSON into a warm buffer performs no heap allocation, for
//!    any record shape (strings, vectors, floats included).
//! 2. **The steady-state `Journal::record` path is zero-alloc**: once
//!    the frame buffer and scratch are warm, buffering a record (frame +
//!    CRC + replay-plan maintenance) allocates nothing. Measured on
//!    records that own no heap data (`StageCompleted`, `TaskPoisoned`)
//!    so the window isolates the journal's own path from the caller's
//!    record construction; durability I/O (`commit`) sits outside the
//!    window — the group commit pays it once per cycle, not per record.
//!
//! This is a dedicated test binary with a single `#[test]`: the probe's
//! counters are process-global, so a second concurrent test would bleed
//! allocations into the measurement.

use impress_pilot::{ResourceRequest, TaskKind};
use impress_sim::alloc_probe::CountingAlloc;
use impress_sim::SimDuration;
use impress_workflow::journal::{Journal, JournalRecord, MemoryJournal, TaskMeta};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn meta(name: &str) -> TaskMeta {
    TaskMeta {
        name: name.into(),
        request: ResourceRequest::cores(2),
        duration: SimDuration::from_secs(300),
        gpu_busy_fraction: 0.25,
        priority: 1,
        kind: TaskKind::Ml,
        walltime: Some(SimDuration::from_secs(3600)),
    }
}

#[test]
fn warm_serialization_and_journal_record_paths_allocate_nothing() {
    // --- Pin 1: ToJsonBuf into a warm buffer -------------------------
    let rec = JournalRecord::StageSubmitted {
        pipeline: 3,
        stage: 2,
        tasks: vec![meta("fold-\"x\"-msa"), meta("md-equilibrate")],
    };
    let mut buf = String::new();
    impress_json::write_json(&mut buf, &rec); // warm the capacity
    let expected = buf.clone();
    buf.clear();
    let (allocs, ()) = ALLOC.measure(|| impress_json::write_json(&mut buf, &rec));
    assert_eq!(
        allocs, 0,
        "ToJsonBuf must not allocate into a warm buffer"
    );
    assert_eq!(buf, expected, "warm pass must produce identical bytes");

    // --- Pin 2: steady-state Journal::record -------------------------
    let mut journal = Journal::new(Box::new(MemoryJournal::new()), "zero-alloc", 7).unwrap();
    journal
        .record(JournalRecord::Registered {
            pipeline: 0,
            parent: None,
            name: "probe".into(),
        })
        .unwrap();
    // Submit well past what the measured window completes, so the replay
    // plan's stage vector has settled capacity and every completion in
    // the window is in order.
    const WINDOW: u64 = 16;
    for stage in 0..(3 * WINDOW as usize) {
        journal
            .record(JournalRecord::StageSubmitted {
                pipeline: 0,
                stage,
                tasks: vec![meta("warm")],
            })
            .unwrap();
    }
    for stage in 0..WINDOW as usize {
        journal
            .record(JournalRecord::StageCompleted { pipeline: 0, stage })
            .unwrap();
    }
    // Commit clears the frame buffer but keeps its (now warm) capacity.
    journal.commit().unwrap();
    assert_eq!(journal.pending_records(), 0);

    let (allocs, ()) = ALLOC.measure(|| {
        for i in 0..WINDOW {
            journal
                .record(JournalRecord::StageCompleted {
                    pipeline: 0,
                    stage: WINDOW as usize + i as usize,
                })
                .unwrap();
            journal
                .record(JournalRecord::TaskPoisoned {
                    pipeline: 0,
                    task: 1000 + i,
                    distinct_nodes: 2,
                })
                .unwrap();
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state Journal::record must not allocate ({} records buffered)",
        2 * WINDOW
    );
    assert_eq!(journal.pending_records(), 2 * WINDOW as usize);
    journal.commit().unwrap();
}
