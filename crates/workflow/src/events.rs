//! Structured coordinator event log.
//!
//! Every pipeline lifecycle transition the coordinator performs is recorded
//! with its virtual timestamp. The log is the workflow-level counterpart of
//! the pilot profiler's task records: it answers "when did pipeline X enter
//! stage N, and what triggered the spawn of sub-pipeline Y?" — the raw
//! material for makespan attribution and for debugging adaptive policies.

use crate::pipeline::PipelineId;
use impress_json::{json_enum, json_struct};
use impress_sim::SimTime;

/// One coordinator event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Pipeline registered (root or sub).
    Registered {
        /// Parent pipeline for sub-pipelines.
        parent: Option<PipelineId>,
    },
    /// A stage of `n_tasks` tasks was submitted.
    StageSubmitted {
        /// Stage ordinal within the pipeline (0-based).
        stage: usize,
        /// Number of tasks in the stage.
        n_tasks: usize,
    },
    /// A stage's tasks all completed.
    StageCompleted {
        /// Stage ordinal within the pipeline (0-based).
        stage: usize,
    },
    /// Pipeline finished successfully.
    Completed,
    /// Pipeline aborted.
    Aborted {
        /// The abort reason.
        reason: String,
    },
    /// A task reached a terminal state only after the pilot resubmitted it
    /// (fault injection / retry-on-failure). Recorded when the completion
    /// arrives, with the total number of failed attempts that preceded it.
    TaskRetried {
        /// The backend task id.
        task: u64,
        /// Failed attempts before the terminal result.
        attempts: u32,
    },
    /// The quarantine layer classified a task as poisoned: its attempts
    /// failed on `distinct_nodes` distinct nodes, so the retry budget was
    /// cut short and the lineage terminated with a poison verdict.
    TaskPoisoned {
        /// The backend task id.
        task: u64,
        /// Distinct nodes the lineage failed on.
        distinct_nodes: u32,
    },
}
json_enum!(EventKind {
    Registered { parent },
    StageSubmitted { stage, n_tasks },
    StageCompleted { stage },
    Completed,
    Aborted { reason },
    TaskRetried { task, attempts },
    TaskPoisoned { task, distinct_nodes }
});

/// A timestamped, sequenced event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number, assigned at append time. Virtual
    /// timestamps tie whenever several completions land in one coordinator
    /// step; `seq` breaks the tie, so sorting by `(at, seq)` always
    /// reproduces append order exactly.
    pub seq: u64,
    /// When it happened (backend time).
    pub at: SimTime,
    /// Which pipeline.
    pub pipeline: PipelineId,
    /// What happened.
    pub kind: EventKind,
}
json_struct!(Event {
    seq,
    at,
    pipeline,
    kind
});

/// Append-only event log.
///
/// Ordering guarantee: every appended event receives the next sequence
/// number, and [`events`](Self::events) returns them in append order —
/// which is also `(at, seq)` order, since timestamps never decrease.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<Event>,
    next_seq: u64,
}
json_struct!(EventLog { events, next_seq });

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event, assigning it the next sequence number.
    pub fn push(&mut self, at: SimTime, pipeline: PipelineId, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Event {
            seq,
            at,
            pipeline,
            kind,
        });
    }

    /// All events, in append order (monotone in `(at, seq)`).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events of one pipeline, in order.
    pub fn for_pipeline(&self, id: PipelineId) -> Vec<&Event> {
        self.events.iter().filter(|e| e.pipeline == id).collect()
    }

    /// Count of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// Time from a pipeline's registration to its terminal event, if both
    /// are present.
    pub fn pipeline_span(&self, id: PipelineId) -> Option<(SimTime, SimTime)> {
        let events = self.for_pipeline(id);
        let start = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Registered { .. }))?
            .at;
        let end = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Completed | EventKind::Aborted { .. }))?
            .at;
        Some((start, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_micros(s * 1_000_000)
    }

    #[test]
    fn log_records_in_order_and_filters() {
        let mut log = EventLog::new();
        let p0 = PipelineId(0);
        let p1 = PipelineId(1);
        log.push(t(0), p0, EventKind::Registered { parent: None });
        log.push(t(1), p1, EventKind::Registered { parent: Some(p0) });
        log.push(
            t(2),
            p0,
            EventKind::StageSubmitted {
                stage: 0,
                n_tasks: 1,
            },
        );
        log.push(t(5), p0, EventKind::StageCompleted { stage: 0 });
        log.push(t(6), p0, EventKind::Completed);
        assert_eq!(log.events().len(), 5);
        assert_eq!(log.for_pipeline(p0).len(), 4);
        assert_eq!(
            log.count(|e| matches!(e.kind, EventKind::Registered { .. })),
            2
        );
    }

    #[test]
    fn pipeline_span_measures_lifetime() {
        let mut log = EventLog::new();
        let p = PipelineId(3);
        log.push(t(10), p, EventKind::Registered { parent: None });
        log.push(t(40), p, EventKind::Completed);
        let (start, end) = log.pipeline_span(p).unwrap();
        assert_eq!(start, t(10));
        assert_eq!(end, t(40));
        assert!(log.pipeline_span(PipelineId(99)).is_none());
    }

    #[test]
    fn span_handles_aborts() {
        let mut log = EventLog::new();
        let p = PipelineId(1);
        log.push(t(0), p, EventKind::Registered { parent: None });
        log.push(
            t(7),
            p,
            EventKind::Aborted {
                reason: "budget".into(),
            },
        );
        assert_eq!(log.pipeline_span(p), Some((t(0), t(7))));
    }

    #[test]
    fn sequence_numbers_are_monotonic_and_break_timestamp_ties() {
        let mut log = EventLog::new();
        let p = PipelineId(0);
        // Three events at the same virtual instant — the common case when
        // multiple completions land in one coordinator step.
        log.push(t(5), p, EventKind::StageCompleted { stage: 0 });
        log.push(
            t(5),
            p,
            EventKind::StageSubmitted {
                stage: 1,
                n_tasks: 2,
            },
        );
        log.push(t(5), p, EventKind::Completed);
        let seqs: Vec<u64> = log.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        // A stable sort by (at, seq) reproduces append order exactly.
        let mut sorted: Vec<&Event> = log.events().iter().collect();
        sorted.sort_by_key(|e| (e.at, e.seq));
        assert!(sorted
            .iter()
            .zip(log.events())
            .all(|(a, b)| a.seq == b.seq && a.kind == b.kind));
    }
}
