//! DAG pipelines: named tasks with explicit dependencies, executed in
//! level-synchronized waves.
//!
//! [`crate::linear::LinearPipeline`] covers chains; this covers general
//! directed acyclic dependency graphs. Nodes are grouped into *levels* by
//! longest path from a source; each level is submitted as one stage, so a
//! node starts only after every node of earlier levels finished. (This is
//! level-synchronous, not fully asynchronous, matching the coordinator's
//! one-stage-in-flight model; inter-*pipeline* asynchrony is where IMPRESS
//! gets its concurrency.)
//!
//! Node builders receive the completions of all *dependency* nodes by name
//! and use [`impress_pilot::Completion::peek`] to read shared outputs.

use crate::pipeline::PipelineLogic;
use crate::stage::Step;
use impress_pilot::{Completion, TaskDescription};
use std::collections::HashMap;

/// Builds one node's task from its dependencies' completions.
pub type NodeFn = Box<dyn FnMut(&HashMap<String, Completion>) -> TaskDescription>;

/// Builds the pipeline outcome from all completions.
pub type DagFinishFn<O> = Box<dyn FnMut(&HashMap<String, Completion>) -> O>;

struct Node {
    name: String,
    deps: Vec<String>,
    build: NodeFn,
    level: usize,
}

/// Builder for [`DagPipeline`].
pub struct DagBuilder {
    name: String,
    nodes: Vec<Node>,
}

impl DagBuilder {
    /// Start a named DAG.
    pub fn named(name: impl Into<String>) -> DagBuilder {
        DagBuilder {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// Add a node. `deps` must name previously added nodes (cycles are
    /// thereby impossible by construction). Panics on duplicate names or
    /// unknown dependencies.
    pub fn node<F>(mut self, name: impl Into<String>, deps: &[&str], build: F) -> Self
    where
        F: FnMut(&HashMap<String, Completion>) -> TaskDescription + 'static,
    {
        let name = name.into();
        assert!(
            !self.nodes.iter().any(|n| n.name == name),
            "duplicate node {name:?}"
        );
        let mut level = 0;
        let deps: Vec<String> = deps
            .iter()
            .map(|d| {
                let dep = self
                    .nodes
                    .iter()
                    .find(|n| n.name == *d)
                    .unwrap_or_else(|| panic!("node {name:?}: unknown dependency {d:?}"));
                level = level.max(dep.level + 1);
                dep.name.clone()
            })
            .collect();
        self.nodes.push(Node {
            name,
            deps,
            build: Box::new(build),
            level,
        });
        self
    }

    /// Finish with an outcome builder over *all* node completions.
    /// Panics if the DAG has no nodes.
    pub fn finish<O, F>(self, finish: F) -> DagPipeline<O>
    where
        F: FnMut(&HashMap<String, Completion>) -> O + 'static,
    {
        assert!(!self.nodes.is_empty(), "DAG pipeline needs ≥ 1 node");
        let levels = self.nodes.iter().map(|n| n.level).max().unwrap_or(0) + 1;
        DagPipeline {
            name: self.name,
            nodes: self.nodes,
            finish: Box::new(finish),
            levels,
            current_level: 0,
            in_flight: Vec::new(),
            completed: HashMap::new(),
        }
    }
}

/// A pipeline executing a dependency DAG in level waves.
pub struct DagPipeline<O> {
    name: String,
    nodes: Vec<Node>,
    finish: DagFinishFn<O>,
    levels: usize,
    current_level: usize,
    /// Node names of the level in flight, in submission order.
    in_flight: Vec<String>,
    completed: HashMap<String, Completion>,
}

impl<O> DagPipeline<O> {
    fn submit_level(&mut self) -> Step<O> {
        let level = self.current_level;
        let mut names = Vec::new();
        let mut tasks = Vec::new();
        // Two passes to appease the borrow checker: collect indices first.
        let idxs: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.level == level)
            .map(|(i, _)| i)
            .collect();
        for i in idxs {
            // Assemble just this node's dependency map (completions stay
            // owned by the pipeline; builders peek).
            let node = &mut self.nodes[i];
            let mut deps = HashMap::new();
            for d in node.deps.clone() {
                let c = self
                    .completed
                    .remove(&d)
                    .expect("dependency completed in an earlier level");
                deps.insert(d, c);
            }
            let task = (node.build)(&deps);
            // Return the dependencies for later nodes / the finisher.
            self.completed.extend(deps);
            names.push(node.name.clone());
            tasks.push(task);
        }
        assert!(!tasks.is_empty(), "level {level} of {} is empty", self.name);
        self.in_flight = names;
        self.current_level += 1;
        Step::Submit(tasks)
    }
}

impl<O> PipelineLogic<O> for DagPipeline<O> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn begin(&mut self) -> Step<O> {
        self.current_level = 0;
        self.submit_level()
    }

    fn stage_done(&mut self, completions: Vec<Completion>) -> Step<O> {
        let names = std::mem::take(&mut self.in_flight);
        assert_eq!(names.len(), completions.len(), "level size mismatch");
        for (name, completion) in names.into_iter().zip(completions) {
            self.completed.insert(name, completion);
        }
        if self.current_level < self.levels {
            self.submit_level()
        } else {
            Step::Complete((self.finish)(&self.completed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Coordinator, NoDecisions};
    use impress_pilot::backend::SimulatedBackend;
    use impress_pilot::{PilotConfig, ResourceRequest};
    use impress_sim::SimDuration;

    fn task(name: &str, out: u64) -> TaskDescription {
        TaskDescription::new(name, ResourceRequest::cores(1), SimDuration::from_secs(1))
            .with_work(move || out)
    }

    fn run<O>(pipeline: DagPipeline<O>) -> O
    where
        O: Clone + 'static,
    {
        let mut c = Coordinator::new(SimulatedBackend::new(PilotConfig::default()), NoDecisions);
        c.add_pipeline(Box::new(pipeline));
        c.run();
        c.outcomes()[0].1.clone()
    }

    #[test]
    fn diamond_dag_threads_dependency_outputs() {
        // a → (b, c) → d ; d sums b and c which each doubled a.
        let dag = DagBuilder::named("diamond")
            .node("a", &[], |_| task("a", 10))
            .node("b", &["a"], |deps| {
                let a = *deps["a"].peek::<u64>();
                task("b", a * 2)
            })
            .node("c", &["a"], |deps| {
                let a = *deps["a"].peek::<u64>();
                task("c", a * 3)
            })
            .node("d", &["b", "c"], |deps| {
                let sum = deps["b"].peek::<u64>() + deps["c"].peek::<u64>();
                task("d", sum)
            })
            .finish(|all| *all["d"].peek::<u64>());
        assert_eq!(run(dag), 50);
    }

    #[test]
    fn independent_nodes_share_a_level() {
        let dag = DagBuilder::named("par")
            .node("x", &[], |_| task("x", 1))
            .node("y", &[], |_| task("y", 2))
            .node("z", &[], |_| task("z", 3))
            .finish(|all| all.values().map(|c| *c.peek::<u64>()).sum::<u64>());
        assert_eq!(run(dag), 6);
    }

    #[test]
    fn levels_follow_longest_path() {
        // a → b → c with an extra edge a → c: c must land at level 2.
        let dag = DagBuilder::named("lp")
            .node("a", &[], |_| task("a", 1))
            .node("b", &["a"], |_| task("b", 2))
            .node("c", &["a", "b"], |deps| {
                // Both deps visible despite different levels.
                let v = deps["a"].peek::<u64>() + deps["b"].peek::<u64>();
                task("c", v)
            })
            .finish(|all| *all["c"].peek::<u64>());
        assert_eq!(run(dag), 3);
    }

    #[test]
    #[should_panic(expected = "unknown dependency")]
    fn unknown_dependency_is_rejected_at_build_time() {
        let _ = DagBuilder::named("bad").node("a", &["ghost"], |_| task("a", 1));
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn duplicate_names_rejected() {
        let _ = DagBuilder::named("dup")
            .node("a", &[], |_| task("a", 1))
            .node("a", &[], |_| task("a", 2));
    }
}
