//! Pipeline bookkeeping: states, parentage, task counts.
//!
//! The coordinator "tracks their execution states" (§II-B); the registry is
//! that ledger. Parentage distinguishes *root* pipelines (submitted by the
//! experiment) from *sub-pipelines* (spawned by the decision engine) — the
//! distinction behind Table I's `# PL` and `# Sub-PL` columns.

use crate::pipeline::{PipelineId, PipelineState};
use impress_json::json_struct;
use impress_sim::SimTime;

/// One pipeline's ledger entry.
#[derive(Debug, Clone)]
pub struct PipelineEntry {
    /// The pipeline.
    pub id: PipelineId,
    /// Its display name.
    pub name: String,
    /// `None` for root pipelines; `Some(parent)` for spawned sub-pipelines.
    pub parent: Option<PipelineId>,
    /// Current state.
    pub state: PipelineState,
    /// Tasks submitted on behalf of this pipeline so far.
    pub tasks_submitted: usize,
    /// Stages completed so far.
    pub stages_completed: usize,
    /// When the pipeline was registered.
    pub created_at: SimTime,
    /// When it reached a terminal state (if it has).
    pub finished_at: Option<SimTime>,
}
json_struct!(PipelineEntry {
    id,
    name,
    parent,
    state,
    tasks_submitted,
    stages_completed,
    created_at,
    finished_at
});

/// The coordinator's pipeline ledger.
///
/// Ids are assigned densely from 0 and entries are never removed, so the
/// ledger is a plain slab: `entries[id]` *is* the entry, lookups are one
/// bounds-checked index (the hot coordinator dispatch path used to pay a
/// hash per lookup), and the vector itself is registration order.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Vec<PipelineEntry>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id the next [`register`](Self::register) call will assign.
    /// The journal writes its `Registered` record *before* registration, so
    /// it needs the id ahead of time.
    pub fn peek_next_id(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Register a new pipeline, returning its id.
    pub fn register(
        &mut self,
        name: String,
        parent: Option<PipelineId>,
        at: SimTime,
    ) -> PipelineId {
        if let Some(p) = parent {
            assert!(
                (p.0 as usize) < self.entries.len(),
                "parent {p} is not registered"
            );
        }
        let id = PipelineId(self.entries.len() as u64);
        self.entries.push(PipelineEntry {
            id,
            name,
            parent,
            state: PipelineState::Created,
            tasks_submitted: 0,
            stages_completed: 0,
            created_at: at,
            finished_at: None,
        });
        id
    }

    /// Look up an entry.
    pub fn get(&self, id: PipelineId) -> &PipelineEntry {
        self.entries.get(id.0 as usize).expect("pipeline is registered")
    }

    fn get_mut(&mut self, id: PipelineId) -> &mut PipelineEntry {
        self.entries
            .get_mut(id.0 as usize)
            .expect("pipeline is registered")
    }

    /// Mark a pipeline running and charge `n_tasks` submitted tasks to it.
    pub fn note_stage_submitted(&mut self, id: PipelineId, n_tasks: usize) {
        let e = self.get_mut(id);
        assert!(!e.state.is_terminal(), "{id} is already terminal");
        e.state = PipelineState::Running;
        e.tasks_submitted += n_tasks;
    }

    /// Record a completed stage.
    pub fn note_stage_completed(&mut self, id: PipelineId) {
        self.get_mut(id).stages_completed += 1;
    }

    /// Move a pipeline to a terminal state.
    pub fn finish(&mut self, id: PipelineId, state: PipelineState, at: SimTime) {
        assert!(state.is_terminal(), "finish() needs a terminal state");
        let e = self.get_mut(id);
        assert!(!e.state.is_terminal(), "{id} already finished");
        e.state = state;
        e.finished_at = Some(at);
    }

    /// All entries in registration order.
    pub fn entries(&self) -> Vec<&PipelineEntry> {
        self.entries.iter().collect()
    }

    /// Number of root pipelines (Table I `# PL`).
    pub fn root_count(&self) -> usize {
        self.entries.iter().filter(|e| e.parent.is_none()).count()
    }

    /// Number of spawned sub-pipelines (Table I `# Sub-PL`).
    pub fn sub_count(&self) -> usize {
        self.entries.iter().filter(|e| e.parent.is_some()).count()
    }

    /// Pipelines not yet in a terminal state.
    pub fn live_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| !e.state.is_terminal())
            .count()
    }

    /// Total tasks submitted across all pipelines.
    pub fn total_tasks(&self) -> usize {
        self.entries.iter().map(|e| e.tasks_submitted).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_assigns_sequential_ids() {
        let mut r = Registry::new();
        let a = r.register("a".into(), None, SimTime::ZERO);
        let b = r.register("b".into(), None, SimTime::ZERO);
        assert_eq!(a, PipelineId(0));
        assert_eq!(b, PipelineId(1));
        assert_eq!(r.root_count(), 2);
        assert_eq!(r.sub_count(), 0);
    }

    #[test]
    fn sub_pipeline_parentage_is_tracked() {
        let mut r = Registry::new();
        let root = r.register("root".into(), None, SimTime::ZERO);
        let sub = r.register("sub".into(), Some(root), SimTime::ZERO);
        assert_eq!(r.get(sub).parent, Some(root));
        assert_eq!(r.root_count(), 1);
        assert_eq!(r.sub_count(), 1);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_parent_rejected() {
        let mut r = Registry::new();
        r.register("orphan".into(), Some(PipelineId(99)), SimTime::ZERO);
    }

    #[test]
    fn task_and_stage_accounting() {
        let mut r = Registry::new();
        let id = r.register("p".into(), None, SimTime::ZERO);
        r.note_stage_submitted(id, 3);
        r.note_stage_completed(id);
        r.note_stage_submitted(id, 1);
        let e = r.get(id);
        assert_eq!(e.tasks_submitted, 4);
        assert_eq!(e.stages_completed, 1);
        assert_eq!(e.state, PipelineState::Running);
        assert_eq!(r.total_tasks(), 4);
    }

    #[test]
    fn finish_transitions_and_counts() {
        let mut r = Registry::new();
        let a = r.register("a".into(), None, SimTime::ZERO);
        let b = r.register("b".into(), None, SimTime::ZERO);
        assert_eq!(r.live_count(), 2);
        r.finish(a, PipelineState::Completed, SimTime::ZERO);
        r.finish(b, PipelineState::Aborted, SimTime::ZERO);
        assert_eq!(r.live_count(), 0);
        assert!(r.get(a).finished_at.is_some());
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn double_finish_panics() {
        let mut r = Registry::new();
        let a = r.register("a".into(), None, SimTime::ZERO);
        r.finish(a, PipelineState::Completed, SimTime::ZERO);
        r.finish(a, PipelineState::Completed, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "needs a terminal state")]
    fn finish_requires_terminal() {
        let mut r = Registry::new();
        let a = r.register("a".into(), None, SimTime::ZERO);
        r.finish(a, PipelineState::Running, SimTime::ZERO);
    }
}
