//! The pipeline abstraction.
//!
//! A pipeline is a state machine: the coordinator calls
//! [`PipelineLogic::begin`] once, submits the returned stage, and feeds the
//! stage's completions back through [`PipelineLogic::stage_done`]; the
//! pipeline answers with the next stage or a terminal step. Iteration
//! (Stage 6M+7 of the paper: cycle back to Stage 4 / start the next design
//! cycle) is expressed by simply emitting earlier-stage task groups again.

use crate::stage::Step;
use impress_json::{json_enum, json_struct};
use impress_pilot::Completion;
use std::fmt;

/// Unique pipeline identifier within a coordinator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PipelineId(pub u64);
json_struct!(PipelineId(u64));

impl fmt::Display for PipelineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pl.{:04}", self.0)
    }
}

/// Lifecycle state of a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineState {
    /// Registered but not yet begun.
    Created,
    /// At least one stage submitted; not yet terminal.
    Running,
    /// Completed with an outcome.
    Completed,
    /// Aborted with a reason.
    Aborted,
}
json_enum!(PipelineState {
    Created,
    Running,
    Completed,
    Aborted
});

impl PipelineState {
    /// Whether the state is terminal.
    pub fn is_terminal(self) -> bool {
        matches!(self, PipelineState::Completed | PipelineState::Aborted)
    }
}

/// A pipeline's behaviour. `O` is the outcome type delivered to the decision
/// engine on completion.
pub trait PipelineLogic<O> {
    /// Human-readable pipeline name (for reports).
    fn name(&self) -> String;

    /// Produce the first stage (or complete immediately).
    fn begin(&mut self) -> Step<O>;

    /// Consume a finished stage's completions (in submission order) and
    /// produce the next step.
    fn stage_done(&mut self, completions: Vec<Completion>) -> Step<O>;
}

/// A boxed pipeline, as stored by the coordinator.
pub type BoxedPipeline<O> = Box<dyn PipelineLogic<O>>;

#[cfg(test)]
mod tests {
    use super::*;
    use impress_pilot::{ResourceRequest, TaskDescription};
    use impress_sim::SimDuration;

    /// A trivial two-stage pipeline used to exercise the trait machinery.
    struct TwoStage {
        stage: u32,
    }

    impl PipelineLogic<u32> for TwoStage {
        fn name(&self) -> String {
            "two-stage".into()
        }
        fn begin(&mut self) -> Step<u32> {
            self.stage = 1;
            Step::run(TaskDescription::new(
                "s1",
                ResourceRequest::cores(1),
                SimDuration::from_secs(1),
            ))
        }
        fn stage_done(&mut self, completions: Vec<Completion>) -> Step<u32> {
            assert_eq!(completions.len(), 1);
            match self.stage {
                1 => {
                    self.stage = 2;
                    Step::run(TaskDescription::new(
                        "s2",
                        ResourceRequest::cores(1),
                        SimDuration::from_secs(1),
                    ))
                }
                2 => Step::Complete(42),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn pipeline_state_machine_walks_stages() {
        let mut p = TwoStage { stage: 0 };
        match p.begin() {
            Step::Submit(tasks) => assert_eq!(tasks[0].name, "s1"),
            other => panic!("unexpected {other:?}"),
        }
        let fake = |name: &str| Completion {
            task: impress_pilot::TaskId(0),
            name: name.into(),
            tag: String::new(),
            result: Ok(None),
            started: impress_sim::SimTime::ZERO,
            finished: impress_sim::SimTime::ZERO,
            attempts: 0,
            hedged: false,
        };
        match p.stage_done(vec![fake("s1")]) {
            Step::Submit(tasks) => assert_eq!(tasks[0].name, "s2"),
            other => panic!("unexpected {other:?}"),
        }
        match p.stage_done(vec![fake("s2")]) {
            Step::Complete(v) => assert_eq!(v, 42),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn terminal_states() {
        assert!(PipelineState::Completed.is_terminal());
        assert!(PipelineState::Aborted.is_terminal());
        assert!(!PipelineState::Running.is_terminal());
        assert!(!PipelineState::Created.is_terminal());
    }

    #[test]
    fn id_display() {
        assert_eq!(PipelineId(3).to_string(), "pl.0003");
    }
}
