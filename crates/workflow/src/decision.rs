//! The adaptive decision engine.
//!
//! "The IMPRESS decision-making step determines the next steps by evaluating
//! previous pipeline results … It dynamically generates sub-pipelines when
//! additional refinement, exploration, or iterative improvement is needed"
//! (§II-D). The coordinator calls a [`DecisionEngine`] at each pipeline
//! terminal event and whenever the workload drains; the engine answers with
//! sub-pipelines to spawn. `impress-core` provides the paper's
//! quality-ranked policy; [`NoDecisions`] is the non-adaptive null engine.

use crate::coordinator::CoordinatorView;
use crate::pipeline::{BoxedPipeline, PipelineId};

/// A request to spawn a new pipeline, optionally recorded as a child of
/// `parent` (making it a *sub-pipeline* in Table I's accounting).
pub struct Spawn<O> {
    /// Parent pipeline, if this is a sub-pipeline.
    pub parent: Option<PipelineId>,
    /// The pipeline to run.
    pub pipeline: BoxedPipeline<O>,
}

impl<O> Spawn<O> {
    /// A sub-pipeline of `parent`.
    pub fn sub_of(parent: PipelineId, pipeline: BoxedPipeline<O>) -> Self {
        Spawn {
            parent: Some(parent),
            pipeline,
        }
    }

    /// A new root pipeline.
    pub fn root(pipeline: BoxedPipeline<O>) -> Self {
        Spawn {
            parent: None,
            pipeline,
        }
    }
}

/// The adaptive brain of the coordinator.
pub trait DecisionEngine<O> {
    /// A pipeline completed with `outcome`. Return sub-pipelines to spawn.
    fn on_pipeline_complete(
        &mut self,
        id: PipelineId,
        outcome: &O,
        view: &CoordinatorView<'_>,
    ) -> Vec<Spawn<O>>;

    /// A pipeline aborted. Return sub-pipelines to spawn (e.g. re-process
    /// the failed design with fresh sampling).
    fn on_pipeline_aborted(
        &mut self,
        _id: PipelineId,
        _reason: &str,
        _view: &CoordinatorView<'_>,
    ) -> Vec<Spawn<O>> {
        Vec::new()
    }

    /// Every submitted pipeline has finished. Return more pipelines to run
    /// another round, or nothing to end the run.
    fn on_all_idle(&mut self, _view: &CoordinatorView<'_>) -> Vec<Spawn<O>> {
        Vec::new()
    }

    /// The backend's quarantine layer classified a task of pipeline `id`
    /// as poisoned: its attempts failed on `distinct_nodes` distinct nodes.
    /// Engines can react (abort the lineage early, resubmit with different
    /// parameters, lower a shape class's priority); the default does
    /// nothing — the poisoned completion still reaches the pipeline as an
    /// ordinary failed task.
    fn on_task_poisoned(
        &mut self,
        _id: PipelineId,
        _task: u64,
        _distinct_nodes: u32,
        _view: &CoordinatorView<'_>,
    ) -> Vec<Spawn<O>> {
        Vec::new()
    }
}

/// Boxed engines forward, so a service that stores heterogeneous
/// campaigns can drive `Coordinator<O, B, Box<dyn DecisionEngine<O>>>`
/// without a wrapper type.
impl<O> DecisionEngine<O> for Box<dyn DecisionEngine<O>> {
    fn on_pipeline_complete(
        &mut self,
        id: PipelineId,
        outcome: &O,
        view: &CoordinatorView<'_>,
    ) -> Vec<Spawn<O>> {
        (**self).on_pipeline_complete(id, outcome, view)
    }

    fn on_pipeline_aborted(
        &mut self,
        id: PipelineId,
        reason: &str,
        view: &CoordinatorView<'_>,
    ) -> Vec<Spawn<O>> {
        (**self).on_pipeline_aborted(id, reason, view)
    }

    fn on_all_idle(&mut self, view: &CoordinatorView<'_>) -> Vec<Spawn<O>> {
        (**self).on_all_idle(view)
    }

    fn on_task_poisoned(
        &mut self,
        id: PipelineId,
        task: u64,
        distinct_nodes: u32,
        view: &CoordinatorView<'_>,
    ) -> Vec<Spawn<O>> {
        (**self).on_task_poisoned(id, task, distinct_nodes, view)
    }
}

/// The null engine: never spawns anything (the CONT-V behaviour of running
/// exactly the submitted workload).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoDecisions;

impl<O> DecisionEngine<O> for NoDecisions {
    fn on_pipeline_complete(
        &mut self,
        _id: PipelineId,
        _outcome: &O,
        _view: &CoordinatorView<'_>,
    ) -> Vec<Spawn<O>> {
        Vec::new()
    }
}
