//! The pipelines coordinator.
//!
//! Manages "the concurrent and dynamic submission of pipelines using two
//! communication channels: one to track new pipeline instances that need to
//! be submitted … and the other for completed tasks from each pipeline"
//! (§II-D). In this implementation the completed-task channel is the pilot
//! backend's completion stream, and the new-pipeline channel is the spawn
//! queue fed by the [`crate::decision::DecisionEngine`].
//!
//! The coordinator is backend-agnostic: drive it over the simulated backend
//! for deterministic virtual-time experiments, or over the threaded backend
//! for live runs.

use crate::decision::{DecisionEngine, Spawn};
use crate::events::{EventKind, EventLog};
use crate::pipeline::{BoxedPipeline, PipelineId, PipelineState};
use crate::registry::Registry;
use crate::report::RunReport;
use crate::stage::{StageBuffer, Step};
use impress_pilot::{Completion, ExecutionBackend, Session, TaskId};
use impress_sim::SimTime;
use std::collections::HashMap;

/// A read-only snapshot handed to the decision engine.
pub struct CoordinatorView<'a> {
    /// Current backend time.
    pub now: SimTime,
    /// The pipeline ledger.
    pub registry: &'a Registry,
    /// Utilization so far.
    pub utilization: impress_pilot::UtilizationReport,
}

/// The pipelines coordinator. `O` is the pipeline outcome type.
pub struct Coordinator<O, B: ExecutionBackend, D: DecisionEngine<O>> {
    session: Session<B>,
    decision: D,
    registry: Registry,
    live: HashMap<u64, BoxedPipeline<O>>,
    buffers: HashMap<u64, StageBuffer>,
    routes: HashMap<TaskId, PipelineId>,
    to_start: Vec<PipelineId>,
    outcomes: Vec<(PipelineId, O)>,
    aborts: Vec<(PipelineId, String)>,
    events: EventLog,
}

impl<O, B: ExecutionBackend, D: DecisionEngine<O>> Coordinator<O, B, D> {
    /// A coordinator over a fresh session on `backend`, advised by
    /// `decision`.
    pub fn new(backend: B, decision: D) -> Self {
        Coordinator {
            session: Session::new(backend),
            decision,
            registry: Registry::new(),
            live: HashMap::new(),
            buffers: HashMap::new(),
            routes: HashMap::new(),
            to_start: Vec::new(),
            outcomes: Vec::new(),
            aborts: Vec::new(),
            events: EventLog::new(),
        }
    }

    /// Register a root pipeline. It begins executing when [`Coordinator::run`]
    /// is called (or immediately if the run loop is already active).
    pub fn add_pipeline(&mut self, pipeline: BoxedPipeline<O>) -> PipelineId {
        self.add(None, pipeline)
    }

    fn add(&mut self, parent: Option<PipelineId>, pipeline: BoxedPipeline<O>) -> PipelineId {
        let id = self
            .registry
            .register(pipeline.name(), parent, self.session.now());
        self.events
            .push(self.session.now(), id, EventKind::Registered { parent });
        self.live.insert(id.0, pipeline);
        self.to_start.push(id);
        id
    }

    fn start_pending(&mut self) {
        while let Some(id) = self.to_start.pop() {
            let step = self
                .live
                .get_mut(&id.0)
                .expect("pipeline registered")
                .begin();
            self.apply_step(id, step);
        }
    }

    fn apply_step(&mut self, id: PipelineId, step: Step<O>) {
        match step {
            Step::Submit(tasks) => {
                assert!(!tasks.is_empty(), "{id}: empty stage submission");
                self.events.push(
                    self.session.now(),
                    id,
                    EventKind::StageSubmitted {
                        stage: self.registry.get(id).stages_completed,
                        n_tasks: tasks.len(),
                    },
                );
                self.registry.note_stage_submitted(id, tasks.len());
                let mut ids = Vec::with_capacity(tasks.len());
                for task in tasks {
                    let tid = self.session.submit(task.with_tag(format!("{id}")));
                    self.routes.insert(tid, id);
                    ids.push(tid);
                }
                let prev = self.buffers.insert(id.0, StageBuffer::new(ids));
                assert!(
                    prev.is_none(),
                    "{id}: submitted a stage while one is in flight"
                );
            }
            Step::Complete(outcome) => {
                self.events
                    .push(self.session.now(), id, EventKind::Completed);
                self.registry
                    .finish(id, PipelineState::Completed, self.session.now());
                self.live.remove(&id.0);
                // Decision point: the adaptive engine may spawn sub-pipelines.
                let spawns = {
                    let view = CoordinatorView {
                        now: self.session.now(),
                        registry: &self.registry,
                        utilization: self.session.utilization(),
                    };
                    self.decision.on_pipeline_complete(id, &outcome, &view)
                };
                self.outcomes.push((id, outcome));
                self.apply_spawns(spawns);
            }
            Step::Abort(reason) => {
                self.events.push(
                    self.session.now(),
                    id,
                    EventKind::Aborted {
                        reason: reason.clone(),
                    },
                );
                self.registry
                    .finish(id, PipelineState::Aborted, self.session.now());
                self.live.remove(&id.0);
                let spawns = {
                    let view = CoordinatorView {
                        now: self.session.now(),
                        registry: &self.registry,
                        utilization: self.session.utilization(),
                    };
                    self.decision.on_pipeline_aborted(id, &reason, &view)
                };
                self.aborts.push((id, reason));
                self.apply_spawns(spawns);
            }
        }
    }

    fn apply_spawns(&mut self, spawns: Vec<Spawn<O>>) {
        for spawn in spawns {
            self.add(spawn.parent, spawn.pipeline);
        }
    }

    fn route(&mut self, completion: Completion) {
        let id = *self
            .routes
            .get(&completion.task)
            .unwrap_or_else(|| panic!("{}: completion has no route", completion.task));
        self.routes.remove(&completion.task);
        if completion.attempts > 0 {
            self.events.push(
                self.session.now(),
                id,
                EventKind::TaskRetried {
                    task: completion.task.0,
                    attempts: completion.attempts,
                },
            );
        }
        let buffer = self
            .buffers
            .get_mut(&id.0)
            .unwrap_or_else(|| panic!("{id}: completion but no in-flight stage"));
        if let Some(batch) = buffer.record(completion) {
            self.buffers.remove(&id.0);
            self.events.push(
                self.session.now(),
                id,
                EventKind::StageCompleted {
                    stage: self.registry.get(id).stages_completed,
                },
            );
            self.registry.note_stage_completed(id);
            let step = self
                .live
                .get_mut(&id.0)
                .expect("live pipeline")
                .stage_done(batch);
            self.apply_step(id, step);
        }
    }

    /// Drive every pipeline (and everything the decision engine spawns) to
    /// a terminal state, then return the run report.
    pub fn run(&mut self) -> RunReport {
        loop {
            self.start_pending();
            match self.session.wait_next() {
                Some(c) => self.route(c),
                None => {
                    // Workload drained. Give the engine a chance to start
                    // another round; otherwise we are done.
                    let spawns = {
                        let view = CoordinatorView {
                            now: self.session.now(),
                            registry: &self.registry,
                            utilization: self.session.utilization(),
                        };
                        self.decision.on_all_idle(&view)
                    };
                    if spawns.is_empty() && self.to_start.is_empty() {
                        assert_eq!(
                            self.registry.live_count(),
                            0,
                            "drained backend but pipelines still live (stuck stage?)"
                        );
                        break;
                    }
                    self.apply_spawns(spawns);
                }
            }
        }
        self.report()
    }

    /// Build the run report for everything finished so far.
    pub fn report(&self) -> RunReport {
        RunReport::build(
            &self.registry,
            self.session.utilization(),
            self.session.phase_breakdown(),
            self.session.now(),
            self.aborts.len(),
        )
    }

    /// Completed pipeline outcomes, in completion order.
    pub fn outcomes(&self) -> &[(PipelineId, O)] {
        &self.outcomes
    }

    /// Aborted pipelines and their reasons.
    pub fn aborts(&self) -> &[(PipelineId, String)] {
        &self.aborts
    }

    /// The pipeline ledger.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The structured event log of everything that happened this run.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The underlying session (for backend-specific inspection).
    pub fn session(&self) -> &Session<B> {
        &self.session
    }

    /// Consume the coordinator, returning outcomes and the session.
    pub fn into_parts(self) -> CoordinatorParts<O, B> {
        (self.outcomes, self.aborts, self.session)
    }
}

/// What [`Coordinator::into_parts`] returns: completed outcomes, aborted
/// pipelines with reasons, and the underlying session.
pub type CoordinatorParts<O, B> = (Vec<(PipelineId, O)>, Vec<(PipelineId, String)>, Session<B>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::NoDecisions;
    use crate::pipeline::PipelineLogic;
    use impress_pilot::backend::SimulatedBackend;
    use impress_pilot::{PilotConfig, ResourceRequest, TaskDescription};
    use impress_sim::SimDuration;

    fn backend() -> SimulatedBackend {
        SimulatedBackend::new(PilotConfig {
            node: impress_pilot::NodeSpec::new(4, 1, 64),
            bootstrap: SimDuration::from_secs(10),
            exec_setup_per_task: SimDuration::from_secs(1),
            ..PilotConfig::default()
        })
    }

    /// Counts down `stages` single-task stages, then completes with the sum
    /// of its tasks' outputs.
    struct Counter {
        label: String,
        stages: u32,
        acc: u64,
    }

    impl PipelineLogic<u64> for Counter {
        fn name(&self) -> String {
            self.label.clone()
        }
        fn begin(&mut self) -> Step<u64> {
            self.next_stage()
        }
        fn stage_done(&mut self, completions: Vec<Completion>) -> Step<u64> {
            for c in completions {
                self.acc += c.output::<u64>();
            }
            self.next_stage()
        }
    }

    impl Counter {
        fn next_stage(&mut self) -> Step<u64> {
            if self.stages == 0 {
                return Step::Complete(self.acc);
            }
            self.stages -= 1;
            Step::run(
                TaskDescription::new(
                    format!("{}-stage", self.label),
                    ResourceRequest::cores(1),
                    SimDuration::from_secs(5),
                )
                .with_work(|| 1u64),
            )
        }
    }

    #[test]
    fn single_pipeline_runs_all_stages() {
        let mut c = Coordinator::new(backend(), NoDecisions);
        let id = c.add_pipeline(Box::new(Counter {
            label: "p".into(),
            stages: 3,
            acc: 0,
        }));
        let report = c.run();
        assert_eq!(c.outcomes().len(), 1);
        assert_eq!(c.outcomes()[0], (id, 3));
        assert_eq!(report.root_pipelines, 1);
        assert_eq!(report.total_tasks, 3);
        assert_eq!(c.registry().get(id).stages_completed, 3);
    }

    #[test]
    fn concurrent_pipelines_interleave() {
        let mut c = Coordinator::new(backend(), NoDecisions);
        for i in 0..4 {
            c.add_pipeline(Box::new(Counter {
                label: format!("p{i}"),
                stages: 2,
                acc: 0,
            }));
        }
        let report = c.run();
        assert_eq!(c.outcomes().len(), 4);
        assert!(c.outcomes().iter().all(|(_, v)| *v == 2));
        assert_eq!(report.total_tasks, 8);
        // 8 × 5s tasks on 4 cores with bootstrap 10 + setups: concurrent
        // execution must beat the 8 × 6 = 48s sequential floor.
        assert!(
            report.makespan.as_secs_f64() < 40.0,
            "no concurrency: {}",
            report.makespan
        );
    }

    /// Spawns one sub-pipeline for each completed root pipeline, once.
    struct SpawnOnce {
        spawned: usize,
    }

    impl DecisionEngine<u64> for SpawnOnce {
        fn on_pipeline_complete(
            &mut self,
            id: PipelineId,
            _outcome: &u64,
            view: &CoordinatorView<'_>,
        ) -> Vec<Spawn<u64>> {
            if view.registry.get(id).parent.is_some() || self.spawned >= 2 {
                return Vec::new();
            }
            self.spawned += 1;
            vec![Spawn::sub_of(
                id,
                Box::new(Counter {
                    label: format!("sub-of-{id}"),
                    stages: 1,
                    acc: 100,
                }),
            )]
        }
    }

    #[test]
    fn decision_engine_spawns_sub_pipelines() {
        let mut c = Coordinator::new(backend(), SpawnOnce { spawned: 0 });
        for i in 0..2 {
            c.add_pipeline(Box::new(Counter {
                label: format!("root{i}"),
                stages: 1,
                acc: 0,
            }));
        }
        let report = c.run();
        assert_eq!(report.root_pipelines, 2);
        assert_eq!(report.sub_pipelines, 2);
        assert_eq!(c.outcomes().len(), 4);
        let sub_outcomes: Vec<u64> = c
            .outcomes()
            .iter()
            .filter(|(id, _)| c.registry().get(*id).parent.is_some())
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(sub_outcomes, vec![101, 101]);
    }

    /// Aborts at its only stage.
    struct Aborter;

    impl PipelineLogic<u64> for Aborter {
        fn name(&self) -> String {
            "aborter".into()
        }
        fn begin(&mut self) -> Step<u64> {
            Step::run(
                TaskDescription::new("a", ResourceRequest::cores(1), SimDuration::from_secs(1))
                    .with_work(|| 0u64),
            )
        }
        fn stage_done(&mut self, _completions: Vec<Completion>) -> Step<u64> {
            Step::Abort("quality floor breached".into())
        }
    }

    #[test]
    fn aborts_are_recorded_and_run_terminates() {
        let mut c = Coordinator::new(backend(), NoDecisions);
        c.add_pipeline(Box::new(Aborter));
        let report = c.run();
        assert_eq!(c.aborts().len(), 1);
        assert!(c.aborts()[0].1.contains("quality floor"));
        assert_eq!(report.aborted_pipelines, 1);
        assert!(c.outcomes().is_empty());
    }

    /// Completes without ever submitting a task.
    struct Immediate;

    impl PipelineLogic<u64> for Immediate {
        fn name(&self) -> String {
            "immediate".into()
        }
        fn begin(&mut self) -> Step<u64> {
            Step::Complete(7)
        }
        fn stage_done(&mut self, _: Vec<Completion>) -> Step<u64> {
            unreachable!()
        }
    }

    #[test]
    fn immediately_completing_pipeline_is_fine() {
        let mut c = Coordinator::new(backend(), NoDecisions);
        c.add_pipeline(Box::new(Immediate));
        let report = c.run();
        assert_eq!(c.outcomes().len(), 1);
        assert_eq!(report.total_tasks, 0);
    }

    /// An engine that runs a second round from on_all_idle.
    struct TwoRounds {
        rounds: usize,
    }

    impl DecisionEngine<u64> for TwoRounds {
        fn on_pipeline_complete(
            &mut self,
            _id: PipelineId,
            _outcome: &u64,
            _view: &CoordinatorView<'_>,
        ) -> Vec<Spawn<u64>> {
            Vec::new()
        }
        fn on_all_idle(&mut self, _view: &CoordinatorView<'_>) -> Vec<Spawn<u64>> {
            if self.rounds >= 2 {
                return Vec::new();
            }
            self.rounds += 1;
            vec![Spawn::root(Box::new(Counter {
                label: format!("round{}", self.rounds),
                stages: 1,
                acc: 0,
            }))]
        }
    }

    #[test]
    fn event_log_captures_the_full_lifecycle() {
        let mut c = Coordinator::new(backend(), NoDecisions);
        let id = c.add_pipeline(Box::new(Counter {
            label: "p".into(),
            stages: 2,
            acc: 0,
        }));
        c.run();
        let events = c.events().for_pipeline(id);
        use crate::events::EventKind as K;
        assert!(matches!(events[0].kind, K::Registered { parent: None }));
        let submitted = c
            .events()
            .count(|e| matches!(e.kind, K::StageSubmitted { .. }));
        let completed = c
            .events()
            .count(|e| matches!(e.kind, K::StageCompleted { .. }));
        assert_eq!(submitted, 2);
        assert_eq!(completed, 2);
        assert!(matches!(events.last().unwrap().kind, K::Completed));
        let (start, end) = c.events().pipeline_span(id).unwrap();
        assert!(end > start);
    }

    #[test]
    fn on_all_idle_can_run_additional_rounds() {
        let mut c = Coordinator::new(backend(), TwoRounds { rounds: 0 });
        c.add_pipeline(Box::new(Counter {
            label: "initial".into(),
            stages: 1,
            acc: 0,
        }));
        let report = c.run();
        assert_eq!(c.outcomes().len(), 3); // initial + 2 idle rounds
        assert_eq!(report.root_pipelines, 3);
    }
}
