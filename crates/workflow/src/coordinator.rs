//! The pipelines coordinator.
//!
//! Manages "the concurrent and dynamic submission of pipelines using two
//! communication channels: one to track new pipeline instances that need to
//! be submitted … and the other for completed tasks from each pipeline"
//! (§II-D). In this implementation the completed-task channel is the pilot
//! backend's completion stream, and the new-pipeline channel is the spawn
//! queue fed by the [`crate::decision::DecisionEngine`].
//!
//! The coordinator is backend-agnostic: drive it over the simulated backend
//! for deterministic virtual-time experiments, or over the threaded backend
//! for live runs.

use crate::decision::{DecisionEngine, Spawn};
use crate::events::{EventKind, EventLog};
use crate::journal::{
    Journal, JournalError, JournalRecord, PipelineScript, ReplayPlan, TaskMeta, TerminalRecord,
};
use crate::pipeline::{BoxedPipeline, PipelineId, PipelineLogic, PipelineState};
use crate::registry::Registry;
use crate::report::RunReport;
use crate::stage::{StageBuffer, Step};
use impress_json::{FromJson, Json, JsonError, ToJson};
use impress_pilot::{Completion, ExecutionBackend, Session, TaskDescription};
use impress_sim::SimTime;
use impress_telemetry::{track, SpanCat, SpanId, Telemetry};
use std::collections::{HashMap, VecDeque};

/// A read-only snapshot handed to the decision engine.
///
/// Fields are private by design: the view is the decision engine's *only*
/// window into coordinator state, so its surface is the exact contract of
/// what adaptive policies may observe — time, the pipeline ledger, and
/// utilization. Anything not exposed here (journals, routing tables, the
/// session) is deliberately out of reach of decision callbacks.
pub struct CoordinatorView<'a> {
    now: SimTime,
    registry: &'a Registry,
    util: &'a dyn UtilSource,
    cached_util: std::cell::OnceCell<impress_pilot::UtilizationReport>,
}

/// Object-safe utilization access, so the type-erased view can read it
/// lazily without growing a backend type parameter.
trait UtilSource {
    fn utilization(&self) -> impress_pilot::UtilizationReport;
}

impl<B: ExecutionBackend> UtilSource for Session<B> {
    fn utilization(&self) -> impress_pilot::UtilizationReport {
        self.backend().utilization()
    }
}

impl<'a> CoordinatorView<'a> {
    /// Current backend time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The pipeline ledger.
    pub fn registry(&self) -> &'a Registry {
        self.registry
    }

    /// Utilization so far.
    ///
    /// Computed on first read and cached for the view's lifetime. The
    /// report walks every device's busy intervals, so engines that never
    /// look at utilization pay nothing — at service scale (thousands of
    /// campaigns sharing one big cluster, one view per terminal event)
    /// an eager report here dominated the whole run's wall time.
    pub fn utilization(&self) -> &impress_pilot::UtilizationReport {
        self.cached_util.get_or_init(|| self.util.utilization())
    }
}

/// The write-ahead journal plus the outcome encoder the coordinator needs
/// to serialize `Completed` records. Captured as a plain fn pointer so the
/// coordinator itself stays unbounded in `O`.
struct JournalWriter<O> {
    journal: Journal,
    encode: fn(&O) -> Json,
}

impl<O> JournalWriter<O> {
    /// Durability is the whole point: if the journal cannot be written, the
    /// coordinator fail-stops rather than silently running unjournaled.
    fn record(&mut self, rec: JournalRecord) {
        if let Err(e) = self.journal.record(rec) {
            panic!("write-ahead journal append failed; refusing to run without durability: {e}");
        }
    }

    /// Flush the current group commit; returns the batch size.
    fn commit(&mut self) -> usize {
        match self.journal.commit() {
            Ok(batch) => batch,
            Err(e) => {
                panic!("write-ahead journal commit failed; refusing to run without durability: {e}")
            }
        }
    }
}

/// Resume state: the journaled scripts of pipelines that reached a terminal
/// state before the kill, plus the outcome decoder for their `Completed`
/// records. Pipelines registered during a resumed run are swapped for
/// [`GhostPipeline`]s when a matching terminal script exists.
struct ReplayState<O> {
    scripts: HashMap<u64, PipelineScript>,
    decode: fn(&Json) -> Result<O, JsonError>,
}

/// A work-free replay of a journaled terminal pipeline. It resubmits the
/// exact task metadata the original submitted — so the backend sees the
/// identical load and evolves the identical virtual timeline — but every
/// task carries no work closure, and the terminal step injects the
/// journaled outcome instead of recomputing it.
struct GhostPipeline<O> {
    name: String,
    stages: VecDeque<Vec<TaskMeta>>,
    /// Taken at the terminal step (a ghost reaches it exactly once).
    terminal: Option<TerminalRecord>,
    decode: fn(&Json) -> Result<O, JsonError>,
}

impl<O> GhostPipeline<O> {
    fn next(&mut self) -> Step<O> {
        if let Some(stage) = self.stages.pop_front() {
            return Step::Submit(stage.iter().map(TaskMeta::to_description).collect());
        }
        match self.terminal.take() {
            // `resume` pre-validates that every journaled outcome decodes,
            // so the Err arm is unreachable in practice; it degrades to an
            // abort rather than panicking if a plan is mutated after that.
            Some(TerminalRecord::Completed(json)) => match (self.decode)(&json) {
                Ok(outcome) => Step::Complete(outcome),
                Err(e) => Step::Abort(format!("journaled outcome failed to decode: {e}")),
            },
            Some(TerminalRecord::Aborted(reason)) => Step::Abort(reason),
            None => Step::Abort("ghost pipeline stepped past its terminal record".into()),
        }
    }
}

impl<O> PipelineLogic<O> for GhostPipeline<O> {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn begin(&mut self) -> Step<O> {
        self.next()
    }
    fn stage_done(&mut self, _completions: Vec<Completion>) -> Step<O> {
        self.next()
    }
}

/// Open telemetry spans for one live pipeline: the whole-lifetime pipeline
/// span and the currently in-flight stage span (if any).
#[derive(Clone, Copy)]
struct PipelineSpans {
    pipeline: SpanId,
    stage: SpanId,
}

/// Dense per-pipeline dispatch state. Pipeline ids are assigned densely
/// from 0 and never recycled, so `slots[id]` replaces what used to be
/// three separate `HashMap` lookups (live pipeline, stage buffer, spans)
/// per dispatch with one bounds-checked index.
struct PipelineSlot<O> {
    /// The pipeline logic; `None` once terminal.
    live: Option<BoxedPipeline<O>>,
    /// The in-flight stage's completion buffer, if a stage is in flight.
    buffer: Option<StageBuffer>,
    /// Open telemetry spans; taken when the pipeline span closes.
    spans: Option<PipelineSpans>,
    /// The pipeline's task tag, formatted once at registration — each
    /// submission clones it (the completion owns its tag) instead of
    /// re-formatting per task.
    tag: String,
}

/// Where a task's completion routes, indexed by dense backend task id.
#[derive(Clone, Copy)]
enum RouteState {
    /// Never submitted by this coordinator (or not yet).
    Unknown,
    /// In flight, owned by this pipeline.
    Routed(PipelineId),
    /// Completion already consumed — an exact replay is deduped.
    Consumed,
}

/// What one [`Coordinator::try_step`] call achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryStep {
    /// Progress was made without waiting: pipelines started, a completion
    /// routed, or the decision engine spawned a new round.
    Progressed,
    /// Nothing is available at the current instant — every live pipeline
    /// is waiting on in-flight work. Someone must advance the clock (a
    /// blocking [`Coordinator::step`], or the shared cluster's pump).
    Blocked,
    /// The campaign reached a terminal state (finished or drained).
    Terminal,
}

/// The pipelines coordinator. `O` is the pipeline outcome type.
pub struct Coordinator<O, B: ExecutionBackend, D: DecisionEngine<O>> {
    session: Session<B>,
    decision: D,
    registry: Registry,
    slots: Vec<PipelineSlot<O>>,
    routes: Vec<RouteState>,
    /// Stage submissions produced during the current drain cycle, deferred
    /// to [`flush_effects`](Coordinator::flush_effects) so they apply only
    /// after their `StageSubmitted` records are durable.
    pending_submits: Vec<(PipelineId, Vec<TaskDescription>)>,
    dedup_hits: u64,
    to_start: Vec<PipelineId>,
    outcomes: Vec<(PipelineId, O)>,
    aborts: Vec<(PipelineId, String)>,
    events: EventLog,
    journal: Option<JournalWriter<O>>,
    replay: Option<ReplayState<O>>,
    drained: bool,
    telemetry: Telemetry,
}

impl<O: 'static, B: ExecutionBackend, D: DecisionEngine<O>> Coordinator<O, B, D> {
    /// A coordinator over a fresh session on `backend`, advised by
    /// `decision`.
    pub fn new(backend: B, decision: D) -> Self {
        let session = Session::new(backend);
        let telemetry = session.telemetry().clone();
        Coordinator {
            session,
            decision,
            registry: Registry::new(),
            slots: Vec::new(),
            routes: Vec::new(),
            pending_submits: Vec::new(),
            dedup_hits: 0,
            to_start: Vec::new(),
            outcomes: Vec::new(),
            aborts: Vec::new(),
            events: EventLog::new(),
            journal: None,
            replay: None,
            drained: false,
            telemetry,
        }
    }

    /// Register a root pipeline. It begins executing when [`Coordinator::run`]
    /// is called (or immediately if the run loop is already active).
    pub fn add_pipeline(&mut self, pipeline: BoxedPipeline<O>) -> PipelineId {
        self.add(None, pipeline)
    }

    fn add(&mut self, parent: Option<PipelineId>, pipeline: BoxedPipeline<O>) -> PipelineId {
        // Write-ahead: the id the registry will assign is known in advance,
        // so the Registered record lands before the registration applies.
        let id = PipelineId(self.registry.peek_next_id());
        let name = pipeline.name();
        self.journal_append(|| JournalRecord::Registered {
            pipeline: id.0,
            parent: parent.map(|p| p.0),
            name: name.clone(),
        });
        // Resume: a pipeline that already reached a terminal state in the
        // journal replays as a work-free ghost. Live-at-kill pipelines (no
        // terminal record) re-run for real. A name mismatch means the plan
        // does not describe this pipeline — run it for real.
        let pipeline = match self.replay.as_mut().and_then(|rs| {
            let script = rs.scripts.get(&id.0)?;
            if script.name != name {
                debug_assert!(false, "{id}: plan names {:?}, run names {name:?}", script.name);
                return None;
            }
            script.terminal.as_ref()?;
            // Each id registers exactly once, so the ghost takes ownership
            // of the journaled script instead of cloning its stages.
            let script = rs.scripts.remove(&id.0).expect("present just above");
            Some(Box::new(GhostPipeline {
                name: script.name,
                stages: script.stages.into(),
                terminal: script.terminal,
                decode: rs.decode,
            }) as BoxedPipeline<O>)
        }) {
            Some(ghost) => ghost,
            None => pipeline,
        };
        let assigned = self.registry.register(name, parent, self.session.now());
        debug_assert_eq!(assigned, id, "peeked id diverged from assigned id");
        self.events
            .push(self.session.now(), id, EventKind::Registered { parent });
        // Pipeline span: lives from registration to the terminal step,
        // parented under the spawning pipeline's span (if any) so adaptive
        // sub-pipeline trees nest in the trace.
        let parent_span = parent
            .and_then(|p| self.slots[p.0 as usize].spans.as_ref())
            .map(|s| s.pipeline)
            .unwrap_or(SpanId::NONE);
        let span = self.telemetry.span(
            SpanCat::Pipeline,
            &self.registry.get(id).name,
            parent_span,
            track::pipeline(id.0),
            self.session.stamp(),
            &[("pipeline", id.0 as i64)],
        );
        debug_assert_eq!(self.slots.len() as u64, id.0, "slot slab diverged from ids");
        self.slots.push(PipelineSlot {
            live: Some(pipeline),
            buffer: None,
            spans: Some(PipelineSpans {
                pipeline: span,
                stage: SpanId::NONE,
            }),
            tag: id.to_string(),
        });
        self.telemetry.count("pipelines_registered", 1);
        self.to_start.push(id);
        id
    }

    /// Buffer a journal record into the cycle's group commit, building it
    /// lazily so unjournaled runs pay nothing for the hook. Durability
    /// comes at the cycle's [`flush_effects`](Self::flush_effects) barrier.
    fn journal_append(&mut self, make: impl FnOnce() -> JournalRecord) {
        if let Some(writer) = &mut self.journal {
            writer.record(make());
        }
    }

    /// The group-commit barrier that ends a drain cycle: flush every
    /// journal record the cycle produced with one durable append, then
    /// perform the deferred backend submissions those records describe.
    /// The write-ahead contract holds — no externally visible effect
    /// happens before its record is durable — while the per-record flush
    /// collapses to one flush per cycle. Deferring the submissions is
    /// observationally neutral: the simulated backend schedules at
    /// `wait_next`, not at `submit`, and submission order (hence task id
    /// assignment) is preserved.
    fn flush_effects(&mut self) {
        if let Some(writer) = &mut self.journal {
            let batch = writer.commit();
            if batch > 0 {
                // One instant per *commit* (the old code stamped one per
                // record); counters keep per-record visibility and the
                // histogram shows how well the cycle batches.
                self.telemetry.count("journal_batches", 1);
                self.telemetry.count("journal_records", batch as u64);
                self.telemetry
                    .observe("journal_batch_records", 0.0, 64.0, 16, batch as f64);
                self.telemetry.instant(
                    SpanCat::Session,
                    "journal-commit",
                    SpanId::NONE,
                    track::SESSION,
                    self.session.stamp(),
                    &[("records", batch as i64)],
                );
            }
        }
        for i in 0..self.pending_submits.len() {
            let (id, tasks) = {
                let entry = &mut self.pending_submits[i];
                (entry.0, std::mem::take(&mut entry.1))
            };
            let mut ids = Vec::with_capacity(tasks.len());
            for task in tasks {
                let tid = self
                    .session
                    .submit(task.with_tag(self.slots[id.0 as usize].tag.clone()));
                let at = tid.0 as usize;
                if self.routes.len() <= at {
                    self.routes.resize(at + 1, RouteState::Unknown);
                }
                debug_assert!(matches!(self.routes[at], RouteState::Unknown));
                self.routes[at] = RouteState::Routed(id);
                ids.push(tid);
            }
            let slot = &mut self.slots[id.0 as usize];
            assert!(
                slot.buffer.is_none(),
                "{id}: submitted a stage while one is in flight"
            );
            slot.buffer = Some(StageBuffer::new(ids));
        }
        self.pending_submits.clear();
    }

    fn start_pending(&mut self) {
        while let Some(id) = self.to_start.pop() {
            let step = self.slots[id.0 as usize]
                .live
                .as_mut()
                .expect("pipeline registered")
                .begin();
            self.apply_step(id, step);
        }
        self.flush_effects();
    }

    fn apply_step(&mut self, id: PipelineId, step: Step<O>) {
        match step {
            Step::Submit(tasks) => {
                assert!(!tasks.is_empty(), "{id}: empty stage submission");
                let stage = self.registry.get(id).stages_completed;
                self.journal_append(|| JournalRecord::StageSubmitted {
                    pipeline: id.0,
                    stage,
                    tasks: tasks.iter().map(TaskMeta::of).collect(),
                });
                self.events.push(
                    self.session.now(),
                    id,
                    EventKind::StageSubmitted {
                        stage,
                        n_tasks: tasks.len(),
                    },
                );
                self.registry.note_stage_submitted(id, tasks.len());
                if let Some(spans) = self.slots[id.0 as usize].spans.as_mut() {
                    spans.stage = self.telemetry.span(
                        SpanCat::Stage,
                        "stage",
                        spans.pipeline,
                        track::pipeline(id.0),
                        self.session.stamp(),
                        &[("stage", stage as i64), ("tasks", tasks.len() as i64)],
                    );
                }
                self.telemetry.count("stages_submitted", 1);
                // Effect deferred: the backend submission happens at the
                // cycle's flush barrier, after the StageSubmitted record
                // above is durable.
                self.pending_submits.push((id, tasks));
            }
            Step::Complete(outcome) => {
                if let Some(writer) = &mut self.journal {
                    let rec = JournalRecord::Completed {
                        pipeline: id.0,
                        outcome: (writer.encode)(&outcome),
                    };
                    writer.record(rec);
                }
                self.events
                    .push(self.session.now(), id, EventKind::Completed);
                self.registry
                    .finish(id, PipelineState::Completed, self.session.now());
                self.slots[id.0 as usize].live = None;
                self.end_pipeline_span(id);
                self.telemetry.count("pipelines_completed", 1);
                // Decision point: the adaptive engine may spawn sub-pipelines.
                let spawns = {
                    let d = self.decision_span("on-pipeline-complete");
                    let view = CoordinatorView {
                        now: self.session.now(),
                        registry: &self.registry,
                        util: &self.session,
                        cached_util: std::cell::OnceCell::new(),
                    };
                    let spawns = self.decision.on_pipeline_complete(id, &outcome, &view);
                    self.telemetry.end(d, self.session.stamp());
                    spawns
                };
                self.outcomes.push((id, outcome));
                self.apply_spawns(spawns);
            }
            Step::Abort(reason) => {
                self.journal_append(|| JournalRecord::Aborted {
                    pipeline: id.0,
                    reason: reason.clone(),
                });
                self.events.push(
                    self.session.now(),
                    id,
                    EventKind::Aborted {
                        reason: reason.clone(),
                    },
                );
                self.registry
                    .finish(id, PipelineState::Aborted, self.session.now());
                self.slots[id.0 as usize].live = None;
                self.end_pipeline_span(id);
                self.telemetry.count("pipelines_aborted", 1);
                let spawns = {
                    let d = self.decision_span("on-pipeline-aborted");
                    let view = CoordinatorView {
                        now: self.session.now(),
                        registry: &self.registry,
                        util: &self.session,
                        cached_util: std::cell::OnceCell::new(),
                    };
                    let spawns = self.decision.on_pipeline_aborted(id, &reason, &view);
                    self.telemetry.end(d, self.session.stamp());
                    spawns
                };
                self.aborts.push((id, reason));
                self.apply_spawns(spawns);
            }
        }
    }

    fn apply_spawns(&mut self, spawns: Vec<Spawn<O>>) {
        for spawn in spawns {
            self.add(spawn.parent, spawn.pipeline);
        }
    }

    /// Close a pipeline's whole-lifetime span at the terminal step.
    fn end_pipeline_span(&mut self, id: PipelineId) {
        if let Some(spans) = self.slots[id.0 as usize].spans.take() {
            self.telemetry.end(spans.pipeline, self.session.stamp());
        }
    }

    /// Open a zero-or-more-spawns decision span around a
    /// [`DecisionEngine`] callback. Virtual time does not advance inside
    /// the callback, so the span is zero-width on the virtual clock; on
    /// the threaded backend its wall width is the real decision cost.
    fn decision_span(&self, name: &str) -> SpanId {
        self.telemetry.span(
            SpanCat::Decision,
            name,
            SpanId::NONE,
            track::SESSION,
            self.session.stamp(),
            &[],
        )
    }

    fn route(&mut self, completion: Completion) {
        let at = completion.task.0 as usize;
        let id = match self.routes.get(at).copied().unwrap_or(RouteState::Unknown) {
            RouteState::Routed(id) => id,
            // Idempotent dedup at the coordinator boundary: under
            // at-least-once delivery a completion already consumed can be
            // replayed. Re-applying it would double the pipeline's stage
            // progress (and the decision engine's view of it), so an exact
            // replay is counted and dropped; a completion for a task never
            // routed at all is still a routing bug.
            RouteState::Consumed => {
                self.dedup_hits += 1;
                self.telemetry.count("coordinator_dedup_hits", 1);
                self.telemetry.instant(
                    SpanCat::Fault,
                    "completion-deduped",
                    SpanId::NONE,
                    track::SESSION,
                    self.session.stamp(),
                    &[("task", completion.task.0 as i64)],
                );
                return;
            }
            RouteState::Unknown => panic!("{}: completion has no route", completion.task),
        };
        self.routes[at] = RouteState::Consumed;
        if completion.attempts > 0 {
            self.events.push(
                self.session.now(),
                id,
                EventKind::TaskRetried {
                    task: completion.task.0,
                    attempts: completion.attempts,
                },
            );
            let span = self.slots[id.0 as usize]
                .spans
                .as_ref()
                .map(|s| s.stage)
                .unwrap_or(SpanId::NONE);
            self.telemetry.instant(
                SpanCat::Fault,
                "task-retried",
                span,
                track::pipeline(id.0),
                self.session.stamp(),
                &[
                    ("task", completion.task.0 as i64),
                    ("attempts", completion.attempts as i64),
                ],
            );
        }
        // A poison verdict from the backend's quarantine layer: journal it
        // (post-mortems read verdicts off the journal), log it, and give
        // the decision engine a chance to react before the completion is
        // folded into the stage buffer as an ordinary failure.
        if let Err(impress_pilot::TaskError::Poisoned { distinct_nodes }) = &completion.result {
            let distinct = *distinct_nodes;
            self.journal_append(|| JournalRecord::TaskPoisoned {
                pipeline: id.0,
                task: completion.task.0,
                distinct_nodes: distinct,
            });
            self.events.push(
                self.session.now(),
                id,
                EventKind::TaskPoisoned {
                    task: completion.task.0,
                    distinct_nodes: distinct,
                },
            );
            let span = self.slots[id.0 as usize]
                .spans
                .as_ref()
                .map(|s| s.stage)
                .unwrap_or(SpanId::NONE);
            self.telemetry.instant(
                SpanCat::Quarantine,
                "task-poisoned",
                span,
                track::pipeline(id.0),
                self.session.stamp(),
                &[
                    ("task", completion.task.0 as i64),
                    ("distinct_nodes", distinct as i64),
                ],
            );
            let spawns = {
                let d = self.decision_span("on-task-poisoned");
                let view = CoordinatorView {
                    now: self.session.now(),
                    registry: &self.registry,
                    util: &self.session,
                    cached_util: std::cell::OnceCell::new(),
                };
                let spawns =
                    self.decision
                        .on_task_poisoned(id, completion.task.0, distinct, &view);
                self.telemetry.end(d, self.session.stamp());
                spawns
            };
            self.apply_spawns(spawns);
        }
        let batch = self.slots[id.0 as usize]
            .buffer
            .as_mut()
            .unwrap_or_else(|| panic!("{id}: completion but no in-flight stage"))
            .record(completion);
        if let Some(batch) = batch {
            self.slots[id.0 as usize].buffer = None;
            let stage = self.registry.get(id).stages_completed;
            self.journal_append(|| JournalRecord::StageCompleted {
                pipeline: id.0,
                stage,
            });
            self.events
                .push(self.session.now(), id, EventKind::StageCompleted { stage });
            self.registry.note_stage_completed(id);
            if let Some(spans) = self.slots[id.0 as usize].spans.as_mut() {
                let done = std::mem::replace(&mut spans.stage, SpanId::NONE);
                self.telemetry.end(done, self.session.stamp());
            }
            self.telemetry.count("stages_completed", 1);
            let step = self.slots[id.0 as usize]
                .live
                .as_mut()
                .expect("live pipeline")
                .stage_done(batch);
            self.apply_step(id, step);
        }
        // End-of-cycle barrier: commit the records this routing produced
        // and perform the submissions they describe.
        self.flush_effects();
    }

    /// Advance the campaign by one coordinator drain cycle: start pending
    /// pipelines, wait for the next completion, and route it (applying
    /// every transition it triggers). Returns `false` once the campaign
    /// has reached a terminal state — either finished or drained by a
    /// walltime deadline.
    ///
    /// [`Coordinator::run`] is `while self.step() {}`; calling `step`
    /// directly lets a multi-tenant driver interleave many independent
    /// campaigns on one thread (the `coord_bench` 1k-coordinator cell).
    pub fn step(&mut self) -> bool {
        self.start_pending();
        match self.session.wait_next() {
            Some(c) => {
                self.route(c);
                true
            }
            None => self.idle_transition(),
        }
    }

    /// The backend-has-nothing transition shared by [`Coordinator::step`]
    /// and [`Coordinator::try_step`]. Returns whether the campaign is
    /// still alive.
    fn idle_transition(&mut self) -> bool {
        // A walltime deadline made the backend hold tasks it could not
        // finish in time: the session has drained its in-flight work and
        // will launch nothing further. Stop here — the journal holds
        // everything a resume needs.
        if self.session.backend().held_tasks() > 0 {
            self.drained = true;
            return false;
        }
        // Workload drained. Give the engine a chance to start another
        // round; otherwise we are done.
        let spawns = {
            let d = self.decision_span("on-all-idle");
            let view = CoordinatorView {
                now: self.session.now(),
                registry: &self.registry,
                util: &self.session,
                cached_util: std::cell::OnceCell::new(),
            };
            let spawns = self.decision.on_all_idle(&view);
            self.telemetry.end(d, self.session.stamp());
            spawns
        };
        if spawns.is_empty() && self.to_start.is_empty() {
            assert_eq!(
                self.registry.live_count(),
                0,
                "drained backend but pipelines still live (stuck stage?)"
            );
            return false;
        }
        self.apply_spawns(spawns);
        true
    }

    /// Advance the campaign as far as it can go *without waiting*: start
    /// pending pipelines, then route one completion the backend already
    /// has available ([`Session::poll_next`]). Unlike
    /// [`Coordinator::step`], this never advances the backend clock — the
    /// primitive a multiplexing driver needs to keep many campaigns on one
    /// shared cluster maximally concurrent: every campaign with progress
    /// to make at the current instant is stepped before anyone waits.
    ///
    /// [`Session::poll_next`]: impress_pilot::Session::poll_next
    pub fn try_step(&mut self) -> TryStep {
        let started = !self.to_start.is_empty();
        self.start_pending();
        if let Some(c) = self.session.poll_next() {
            self.route(c);
            return TryStep::Progressed;
        }
        if started {
            return TryStep::Progressed;
        }
        if self.session.backend().in_flight() > 0 {
            return TryStep::Blocked;
        }
        if self.idle_transition() {
            TryStep::Progressed
        } else {
            TryStep::Terminal
        }
    }

    /// Whether pipelines are queued to begin on the next step (roots added
    /// since the last one, or decision-engine spawns not yet started) —
    /// i.e. [`Coordinator::try_step`] is guaranteed to make progress.
    pub fn has_pending_starts(&self) -> bool {
        !self.to_start.is_empty()
    }

    /// Drive every pipeline (and everything the decision engine spawns) to
    /// a terminal state, then return the run report.
    pub fn run(&mut self) -> RunReport {
        while self.step() {}
        self.report()
    }

    /// Build the run report for everything finished so far.
    pub fn report(&self) -> RunReport {
        let obs = self.session.observe();
        RunReport::build(
            &self.registry,
            *obs.utilization(),
            *obs.phase_breakdown(),
            obs.at(),
            self.aborts.len(),
        )
    }

    /// Completed pipeline outcomes, in completion order.
    pub fn outcomes(&self) -> &[(PipelineId, O)] {
        &self.outcomes
    }

    /// Aborted pipelines and their reasons.
    pub fn aborts(&self) -> &[(PipelineId, String)] {
        &self.aborts
    }

    /// The pipeline ledger.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The structured event log of everything that happened this run.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Whether [`run`](Self::run) stopped because the backend's walltime
    /// deadline forced a graceful drain (tasks held, work checkpointed)
    /// rather than because the campaign finished.
    pub fn drained(&self) -> bool {
        self.drained
    }

    /// Replayed completions dropped by the coordinator-boundary dedup
    /// (at-least-once delivery made exactly-once effects).
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// The write-ahead journal, if one is installed.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref().map(|w| &w.journal)
    }

    /// The underlying session (for backend-specific inspection).
    pub fn session(&self) -> &Session<B> {
        &self.session
    }

    /// Consume the coordinator, handing ownership of its results and its
    /// session back to the caller.
    ///
    /// Ownership handoff contract: after this call the coordinator is gone
    /// — its registry, event log, journal handle, and routing state are
    /// dropped. What survives is exactly what a *caller that owns the
    /// campaign's aftermath* needs: the terminal outcomes, the aborts, and
    /// the live [`Session`] (whose backend keeps its full utilization and
    /// phase history, so post-run accounting still works). The session is
    /// returned *hot*: any tasks the campaign left in flight are still in
    /// flight, which is what lets a service layer recycle the backend for
    /// the next campaign or drain it on its own schedule. Callers that
    /// need the event log or registry must read them (or clone what they
    /// need) *before* consuming the coordinator.
    pub fn into_parts(self) -> CoordinatorParts<O, B> {
        CoordinatorParts {
            outcomes: self.outcomes,
            aborts: self.aborts,
            session: self.session,
        }
    }
}

impl<O: ToJson, B: ExecutionBackend, D: DecisionEngine<O>> Coordinator<O, B, D> {
    /// Install a write-ahead journal: every state transition's record is
    /// durable *before* the transition's effects apply, so a crash at any
    /// instant leaves a journal describing a consistent prefix of the run.
    /// Records buffer across one drain cycle and flush as a single group
    /// commit at the cycle barrier — losing a buffered, unflushed suffix is
    /// indistinguishable from crashing a moment earlier, so batching does
    /// not weaken crash consistency while collapsing per-record flushes to
    /// one per cycle.
    pub fn with_journal(mut self, journal: Journal) -> Self {
        self.journal = Some(JournalWriter {
            journal,
            encode: |outcome| outcome.to_json(),
        });
        self
    }
}

impl<O: FromJson + 'static, B: ExecutionBackend, D: DecisionEngine<O>> Coordinator<O, B, D> {
    /// A coordinator that resumes an interrupted campaign from a replayed
    /// journal ([`crate::journal::load_plan`]).
    ///
    /// Resume is a deterministic re-simulation on a fresh backend: the
    /// caller re-adds the same root pipelines in the same order, and the
    /// coordinator swaps any pipeline whose journaled script reached a
    /// terminal state for a work-free ghost that replays the recorded task
    /// metadata and injects the recorded outcome. Pipelines live at the
    /// kill re-run for real; sub-pipelines re-spawn through the (seeded,
    /// deterministic) decision engine fed the identical outcome sequence.
    /// The resumed run therefore regenerates every artifact byte-for-byte.
    ///
    /// Fails with [`JournalError::Corrupt`] if any journaled outcome does
    /// not decode as `O` — a corrupt checkpoint is a diagnostic, never a
    /// panic.
    pub fn resume(backend: B, decision: D, plan: &ReplayPlan) -> Result<Self, JournalError> {
        for script in &plan.pipelines {
            if let Some(TerminalRecord::Completed(json)) = &script.terminal {
                O::from_json(json).map_err(|e| {
                    JournalError::Corrupt(format!(
                        "pipeline {} ({}): journaled outcome does not decode: {e}",
                        script.id, script.name
                    ))
                })?;
            }
        }
        let mut coordinator = Coordinator::new(backend, decision);
        coordinator.replay = Some(ReplayState {
            scripts: plan
                .pipelines
                .iter()
                .filter(|s| s.terminal.is_some())
                .map(|s| (s.id, s.clone()))
                .collect(),
            decode: |json| O::from_json(json),
        });
        Ok(coordinator)
    }
}

/// What [`Coordinator::into_parts`] returns — see that method's rustdoc
/// for the ownership handoff contract.
pub struct CoordinatorParts<O, B: ExecutionBackend> {
    /// Completed pipeline outcomes, in completion order.
    pub outcomes: Vec<(PipelineId, O)>,
    /// Aborted pipelines and their reasons.
    pub aborts: Vec<(PipelineId, String)>,
    /// The session, still owning the backend (and any in-flight work).
    pub session: Session<B>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::NoDecisions;
    use crate::pipeline::PipelineLogic;
    use impress_pilot::backend::SimulatedBackend;
    use impress_pilot::{PilotConfig, ResourceRequest, RuntimeConfig, TaskDescription, TaskId};
    use impress_sim::SimDuration;

    fn pilot_config() -> PilotConfig {
        PilotConfig {
            node: impress_pilot::NodeSpec::new(4, 1, 64),
            bootstrap: SimDuration::from_secs(10),
            exec_setup_per_task: SimDuration::from_secs(1),
            ..PilotConfig::default()
        }
    }

    fn backend() -> SimulatedBackend {
        SimulatedBackend::new(pilot_config())
    }

    /// Counts down `stages` single-task stages, then completes with the sum
    /// of its tasks' outputs.
    struct Counter {
        label: String,
        stages: u32,
        acc: u64,
    }

    impl PipelineLogic<u64> for Counter {
        fn name(&self) -> String {
            self.label.clone()
        }
        fn begin(&mut self) -> Step<u64> {
            self.next_stage()
        }
        fn stage_done(&mut self, completions: Vec<Completion>) -> Step<u64> {
            for c in completions {
                self.acc += c.output::<u64>();
            }
            self.next_stage()
        }
    }

    impl Counter {
        fn next_stage(&mut self) -> Step<u64> {
            if self.stages == 0 {
                return Step::Complete(self.acc);
            }
            self.stages -= 1;
            Step::run(
                TaskDescription::new(
                    format!("{}-stage", self.label),
                    ResourceRequest::cores(1),
                    SimDuration::from_secs(5),
                )
                .with_work(|| 1u64),
            )
        }
    }

    #[test]
    fn single_pipeline_runs_all_stages() {
        let mut c = Coordinator::new(backend(), NoDecisions);
        let id = c.add_pipeline(Box::new(Counter {
            label: "p".into(),
            stages: 3,
            acc: 0,
        }));
        let report = c.run();
        assert_eq!(c.outcomes().len(), 1);
        assert_eq!(c.outcomes()[0], (id, 3));
        assert_eq!(report.root_pipelines, 1);
        assert_eq!(report.total_tasks, 3);
        assert_eq!(c.registry().get(id).stages_completed, 3);
    }

    #[test]
    fn concurrent_pipelines_interleave() {
        let mut c = Coordinator::new(backend(), NoDecisions);
        for i in 0..4 {
            c.add_pipeline(Box::new(Counter {
                label: format!("p{i}"),
                stages: 2,
                acc: 0,
            }));
        }
        let report = c.run();
        assert_eq!(c.outcomes().len(), 4);
        assert!(c.outcomes().iter().all(|(_, v)| *v == 2));
        assert_eq!(report.total_tasks, 8);
        // 8 × 5s tasks on 4 cores with bootstrap 10 + setups: concurrent
        // execution must beat the 8 × 6 = 48s sequential floor.
        assert!(
            report.makespan.as_secs_f64() < 40.0,
            "no concurrency: {}",
            report.makespan
        );
    }

    /// Spawns one sub-pipeline for each completed root pipeline, once.
    struct SpawnOnce {
        spawned: usize,
    }

    impl DecisionEngine<u64> for SpawnOnce {
        fn on_pipeline_complete(
            &mut self,
            id: PipelineId,
            _outcome: &u64,
            view: &CoordinatorView<'_>,
        ) -> Vec<Spawn<u64>> {
            if view.registry().get(id).parent.is_some() || self.spawned >= 2 {
                return Vec::new();
            }
            self.spawned += 1;
            vec![Spawn::sub_of(
                id,
                Box::new(Counter {
                    label: format!("sub-of-{id}"),
                    stages: 1,
                    acc: 100,
                }),
            )]
        }
    }

    #[test]
    fn decision_engine_spawns_sub_pipelines() {
        let mut c = Coordinator::new(backend(), SpawnOnce { spawned: 0 });
        for i in 0..2 {
            c.add_pipeline(Box::new(Counter {
                label: format!("root{i}"),
                stages: 1,
                acc: 0,
            }));
        }
        let report = c.run();
        assert_eq!(report.root_pipelines, 2);
        assert_eq!(report.sub_pipelines, 2);
        assert_eq!(c.outcomes().len(), 4);
        let sub_outcomes: Vec<u64> = c
            .outcomes()
            .iter()
            .filter(|(id, _)| c.registry().get(*id).parent.is_some())
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(sub_outcomes, vec![101, 101]);
    }

    /// Aborts at its only stage.
    struct Aborter;

    impl PipelineLogic<u64> for Aborter {
        fn name(&self) -> String {
            "aborter".into()
        }
        fn begin(&mut self) -> Step<u64> {
            Step::run(
                TaskDescription::new("a", ResourceRequest::cores(1), SimDuration::from_secs(1))
                    .with_work(|| 0u64),
            )
        }
        fn stage_done(&mut self, _completions: Vec<Completion>) -> Step<u64> {
            Step::Abort("quality floor breached".into())
        }
    }

    #[test]
    fn aborts_are_recorded_and_run_terminates() {
        let mut c = Coordinator::new(backend(), NoDecisions);
        c.add_pipeline(Box::new(Aborter));
        let report = c.run();
        assert_eq!(c.aborts().len(), 1);
        assert!(c.aborts()[0].1.contains("quality floor"));
        assert_eq!(report.aborted_pipelines, 1);
        assert!(c.outcomes().is_empty());
    }

    /// Completes without ever submitting a task.
    struct Immediate;

    impl PipelineLogic<u64> for Immediate {
        fn name(&self) -> String {
            "immediate".into()
        }
        fn begin(&mut self) -> Step<u64> {
            Step::Complete(7)
        }
        fn stage_done(&mut self, _: Vec<Completion>) -> Step<u64> {
            unreachable!()
        }
    }

    #[test]
    fn immediately_completing_pipeline_is_fine() {
        let mut c = Coordinator::new(backend(), NoDecisions);
        c.add_pipeline(Box::new(Immediate));
        let report = c.run();
        assert_eq!(c.outcomes().len(), 1);
        assert_eq!(report.total_tasks, 0);
    }

    /// An engine that runs a second round from on_all_idle.
    struct TwoRounds {
        rounds: usize,
    }

    impl DecisionEngine<u64> for TwoRounds {
        fn on_pipeline_complete(
            &mut self,
            _id: PipelineId,
            _outcome: &u64,
            _view: &CoordinatorView<'_>,
        ) -> Vec<Spawn<u64>> {
            Vec::new()
        }
        fn on_all_idle(&mut self, _view: &CoordinatorView<'_>) -> Vec<Spawn<u64>> {
            if self.rounds >= 2 {
                return Vec::new();
            }
            self.rounds += 1;
            vec![Spawn::root(Box::new(Counter {
                label: format!("round{}", self.rounds),
                stages: 1,
                acc: 0,
            }))]
        }
    }

    #[test]
    fn event_log_captures_the_full_lifecycle() {
        let mut c = Coordinator::new(backend(), NoDecisions);
        let id = c.add_pipeline(Box::new(Counter {
            label: "p".into(),
            stages: 2,
            acc: 0,
        }));
        c.run();
        let events = c.events().for_pipeline(id);
        use crate::events::EventKind as K;
        assert!(matches!(events[0].kind, K::Registered { parent: None }));
        let submitted = c
            .events()
            .count(|e| matches!(e.kind, K::StageSubmitted { .. }));
        let completed = c
            .events()
            .count(|e| matches!(e.kind, K::StageCompleted { .. }));
        assert_eq!(submitted, 2);
        assert_eq!(completed, 2);
        assert!(matches!(events.last().unwrap().kind, K::Completed));
        let (start, end) = c.events().pipeline_span(id).unwrap();
        assert!(end > start);
    }

    #[test]
    fn on_all_idle_can_run_additional_rounds() {
        let mut c = Coordinator::new(backend(), TwoRounds { rounds: 0 });
        c.add_pipeline(Box::new(Counter {
            label: "initial".into(),
            stages: 1,
            acc: 0,
        }));
        let report = c.run();
        assert_eq!(c.outcomes().len(), 3); // initial + 2 idle rounds
        assert_eq!(report.root_pipelines, 3);
    }

    #[test]
    fn replayed_completion_is_deduped_not_reapplied() {
        let mut c = Coordinator::new(backend(), NoDecisions);
        c.add_pipeline(Box::new(Counter {
            label: "p".into(),
            stages: 2,
            acc: 0,
        }));
        // Drive the first stage by hand so its completion can be replayed
        // (at-least-once delivery) after the coordinator consumed it.
        c.start_pending();
        let first = c.session.wait_next().unwrap();
        let replay = Completion {
            task: first.task,
            name: first.name.clone(),
            tag: first.tag.clone(),
            result: Ok(None),
            started: first.started,
            finished: first.finished,
            attempts: first.attempts,
            hedged: first.hedged,
        };
        c.route(first);
        assert_eq!(c.dedup_hits(), 0);
        c.route(replay);
        assert_eq!(c.dedup_hits(), 1, "replay must be dropped, not re-applied");
        let report = c.run();
        assert_eq!(c.outcomes().len(), 1);
        assert_eq!(c.outcomes()[0].1, 2, "stage progress must not double");
        assert_eq!(report.total_tasks, 2);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn completion_for_a_never_routed_task_is_still_a_bug() {
        let mut c: Coordinator<u64, _, NoDecisions> = Coordinator::new(backend(), NoDecisions);
        c.route(Completion {
            task: TaskId(999),
            name: "ghost".into(),
            tag: String::new(),
            result: Ok(None),
            started: SimTime::ZERO,
            finished: SimTime::ZERO,
            attempts: 0,
            hedged: false,
        });
    }

    use crate::journal::{load_plan, Journal, MemoryJournal, TerminalRecord};

    /// A journaled campaign: two Counter roots and an Aborter, with a
    /// decision engine spawning subs — enough shape to exercise every
    /// record type.
    fn run_campaign(
        journal: Option<Journal>,
        plan: Option<&ReplayPlan>,
    ) -> Coordinator<u64, SimulatedBackend, SpawnOnce> {
        let mut c = match plan {
            Some(p) => Coordinator::resume(backend(), SpawnOnce { spawned: 0 }, p).unwrap(),
            None => Coordinator::new(backend(), SpawnOnce { spawned: 0 }),
        };
        if let Some(j) = journal {
            c = c.with_journal(j);
        }
        for i in 0..2 {
            c.add_pipeline(Box::new(Counter {
                label: format!("root{i}"),
                stages: 2,
                acc: 0,
            }));
        }
        c.add_pipeline(Box::new(Aborter));
        c.run();
        c
    }

    #[test]
    fn journal_records_the_full_campaign() {
        let store = MemoryJournal::new();
        let journal = Journal::new(Box::new(store.clone()), "camp", 7).unwrap();
        let c = run_campaign(Some(journal), None);
        let loaded = load_plan(&store).unwrap();
        assert_eq!(loaded.dropped, 0);
        assert_eq!(loaded.plan.label, "camp");
        // 2 roots + aborter + 2 spawned subs, all terminal.
        assert_eq!(loaded.plan.pipelines.len(), 5);
        assert_eq!(loaded.plan.live_pipelines(), 0);
        let completed = loaded
            .plan
            .pipelines
            .iter()
            .filter(|s| matches!(s.terminal, Some(TerminalRecord::Completed(_))))
            .count();
        assert_eq!(completed, c.outcomes().len());
        // The journal's in-memory plan agrees with what the store replays.
        assert_eq!(*c.journal().unwrap().plan(), loaded.plan);
    }

    #[test]
    fn resume_from_a_complete_journal_replays_byte_identically_without_work() {
        let store = MemoryJournal::new();
        let journal = Journal::new(Box::new(store.clone()), "camp", 7).unwrap();
        let live = run_campaign(Some(journal), None);
        let plan = load_plan(&store).unwrap().plan;
        let resumed = run_campaign(None, Some(&plan));
        assert_eq!(live.outcomes(), resumed.outcomes());
        assert_eq!(live.aborts(), resumed.aborts());
        assert_eq!(live.events().events(), resumed.events().events());
        assert_eq!(
            impress_json::to_string(&live.report()),
            impress_json::to_string(&resumed.report()),
            "ghost replay must evolve the identical virtual timeline"
        );
    }

    #[test]
    fn resume_after_a_mid_run_kill_completes_the_campaign_identically() {
        let reference = run_campaign(None, None);
        // Kill after the 8th journal append — mid-campaign, with pipelines
        // both terminal and live at the point of death.
        let store = MemoryJournal::new();
        let journal = Journal::new(Box::new(store.clone()), "camp", 7)
            .unwrap()
            .with_kill_after(8);
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_campaign(Some(journal), None);
        }));
        assert!(died.is_err(), "kill switch must fire");
        let loaded = load_plan(&store).unwrap();
        assert!(loaded.plan.live_pipelines() > 0 || loaded.plan.pipelines.len() < 5);
        let resumed = run_campaign(None, Some(&loaded.plan));
        assert_eq!(reference.outcomes(), resumed.outcomes());
        assert_eq!(reference.aborts(), resumed.aborts());
        assert_eq!(
            impress_json::to_string(&reference.report()),
            impress_json::to_string(&resumed.report())
        );
    }

    #[test]
    fn resume_rejects_an_undecodable_outcome_with_a_diagnostic() {
        let plan = ReplayPlan {
            label: "x".into(),
            seed: 0,
            pipelines: vec![crate::journal::PipelineScript {
                id: 0,
                name: "p".into(),
                parent: None,
                stages: Vec::new(),
                stages_completed: 0,
                terminal: Some(TerminalRecord::Completed("not a u64".to_json())),
            }],
        };
        let err = match Coordinator::<u64, _, _>::resume(backend(), NoDecisions, &plan) {
            Ok(_) => panic!("undecodable outcome must be rejected"),
            Err(e) => e,
        };
        assert!(matches!(err, JournalError::Corrupt(_)), "{err}");
    }

    #[test]
    fn deadline_drain_checkpoints_and_resume_finishes_the_campaign() {
        let reference = run_campaign(None, None);
        // 20s in: bootstrap (10s) + the first 6s stage wave fits, but the
        // second wave (finishing at 22s) and everything after it does not.
        let deadline = SimTime::from_micros(20 * 1_000_000);
        let store = MemoryJournal::new();
        let drained = {
            let deadlined = RuntimeConfig::new(pilot_config()).deadline(deadline).simulated();
            let mut c = Coordinator::new(deadlined, SpawnOnce {
                spawned: 0,
            })
            .with_journal(Journal::new(Box::new(store.clone()), "camp", 7).unwrap());
            for i in 0..2 {
                c.add_pipeline(Box::new(Counter {
                    label: format!("root{i}"),
                    stages: 2,
                    acc: 0,
                }));
            }
            c.add_pipeline(Box::new(Aborter));
            c.run();
            c
        };
        assert!(drained.drained(), "deadline must force a drain");
        assert!(drained.session().observe().held_tasks() > 0);
        assert!(drained.outcomes().len() < reference.outcomes().len());
        // Resume on a fresh, deadline-free backend.
        let plan = load_plan(&store).unwrap().plan;
        let resumed = run_campaign(None, Some(&plan));
        assert_eq!(reference.outcomes(), resumed.outcomes());
        assert_eq!(
            impress_json::to_string(&reference.report()),
            impress_json::to_string(&resumed.report())
        );
    }
}
