//! # impress-workflow
//!
//! The pipeline abstraction and the pipelines coordinator — the layer the
//! IMPRESS paper adds on top of RADICAL-Pilot (§II-B, §II-D):
//!
//! > "RP does not provide an abstraction of a pipeline nor a workflow;
//! > thus, we implemented a Pipeline class to bind a set of tasks that can
//! > be executed in a particular order and supported at runtime."
//!
//! * [`pipeline`] — [`pipeline::PipelineLogic`]: a pipeline is a state
//!   machine that emits *stages* (groups of one or more task descriptions)
//!   and consumes their completions, until it reports an outcome. Stage 6's
//!   loop back to Stage 4 is just the state machine emitting another Stage-4
//!   task group.
//! * [`stage`] — the [`stage::Step`] protocol between a pipeline and the
//!   coordinator, plus the in-flight stage buffer.
//! * [`coordinator`] — [`coordinator::Coordinator`]: submits pipelines
//!   concurrently over one pilot session, routes task completions back to
//!   their pipelines (the paper's "completed tasks" channel), and forwards
//!   finished pipelines to a decision engine that may spawn sub-pipelines
//!   (the paper's "new pipeline instances" channel).
//! * [`decision`] — the [`decision::DecisionEngine`] trait: the adaptive
//!   brain. `impress-core` implements the paper's quality-ranked re-process
//!   policy; [`decision::NoDecisions`] gives the non-adaptive behaviour.
//! * [`registry`] — pipeline bookkeeping: states, parentage (root pipeline
//!   vs spawned sub-pipeline), per-pipeline task counts.
//! * [`report`] — the run report the Table I harness consumes.
//! * [`linear`], [`dag`] — ready-made pipeline shapes (stage chains and
//!   level-synchronized dependency DAGs) for users who don't need a custom
//!   state machine.
//! * [`events`] — the structured event log of everything the coordinator
//!   did, with virtual timestamps and monotonic sequence numbers.
//! * [`journal`] — the crash-consistency layer: a write-ahead journal of
//!   coordinator state transitions with snapshot compaction, and the replay
//!   plan [`Coordinator::resume`] uses to reconstruct an interrupted
//!   campaign byte-identically.
//! * [`service`] — the multi-tenant campaign service: thousands of
//!   concurrent campaigns behind a typed submission API, multiplexed over
//!   one shared cluster with admission control, per-tenant quotas, weighted
//!   fair share and priority preemption.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod coordinator;
pub mod dag;
pub mod decision;
pub mod events;
pub mod journal;
pub mod linear;
pub mod pipeline;
pub mod registry;
pub mod report;
pub mod service;
pub mod stage;

pub use coordinator::{Coordinator, CoordinatorParts, CoordinatorView, TryStep};
pub use dag::{DagBuilder, DagPipeline};
pub use decision::{DecisionEngine, NoDecisions};
pub use events::{Event, EventKind, EventLog};
pub use journal::{
    load_plan, FileJournal, Journal, JournalError, JournalRecord, JournalStore, LoadedJournal,
    MemoryJournal, ReplayPlan, TaskMeta, JOURNAL_FORMAT_VERSION,
};
pub use linear::LinearPipeline;
pub use pipeline::{BoxedPipeline, PipelineId, PipelineLogic, PipelineState};
pub use registry::Registry;
pub use report::RunReport;
pub use service::{
    AdmissionError, CampaignHandle, CampaignResult, CampaignService, CampaignSpec, CampaignStatus,
    TenantId, TenantQuota,
};
pub use stage::Step;
