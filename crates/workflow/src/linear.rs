//! Linear pipeline builder: the common case without a custom state machine.
//!
//! Most workflows are a fixed chain of stages where each stage's tasks are
//! built from the previous stage's outputs. [`LinearPipeline`] captures that
//! pattern so users of this crate don't have to hand-write a
//! [`crate::pipeline::PipelineLogic`] impl for simple cases (the IMPRESS
//! design pipeline needs the full trait because Stage 6 loops).
//!
//! ```
//! use impress_workflow::linear::LinearPipeline;
//! use impress_workflow::{Coordinator, NoDecisions};
//! use impress_pilot::backend::SimulatedBackend;
//! use impress_pilot::{Completion, PilotConfig, ResourceRequest, TaskDescription};
//! use impress_sim::SimDuration;
//!
//! let pipeline = LinearPipeline::named("etl")
//!     .stage(|_prev: &[Completion]| {
//!         vec![TaskDescription::new("extract", ResourceRequest::cores(1),
//!              SimDuration::from_secs(5)).with_work(|| 21u64)]
//!     })
//!     .stage(|prev: &[Completion]| {
//!         // one transform per extract output
//!         (0..prev.len())
//!             .map(|i| TaskDescription::new(format!("transform{i}"),
//!                  ResourceRequest::cores(1), SimDuration::from_secs(5))
//!                  .with_work(|| 2u64))
//!             .collect()
//!     })
//!     .finish(|prev: &[Completion]| prev.len() as u64);
//!
//! let mut c = Coordinator::new(SimulatedBackend::new(PilotConfig::default()), NoDecisions);
//! c.add_pipeline(Box::new(pipeline));
//! c.run();
//! assert_eq!(c.outcomes()[0].1, 1);
//! ```

use crate::pipeline::PipelineLogic;
use crate::stage::Step;
use impress_pilot::{Completion, TaskDescription};

/// Builds a stage's tasks from the previous stage's completions (empty for
/// the first stage).
pub type StageFn = Box<dyn FnMut(&[Completion]) -> Vec<TaskDescription>>;

/// Builds the outcome from the final stage's completions.
pub type FinishFn<O> = Box<dyn FnMut(&[Completion]) -> O>;

/// A pipeline that runs a fixed chain of stages.
pub struct LinearPipeline<O> {
    name: String,
    stages: Vec<StageFn>,
    finish: Option<FinishFn<O>>,
    cursor: usize,
}

impl LinearPipeline<()> {
    /// Start building a named linear pipeline.
    pub fn named(name: impl Into<String>) -> LinearBuilder {
        LinearBuilder {
            name: name.into(),
            stages: Vec::new(),
        }
    }
}

/// Builder for [`LinearPipeline`].
pub struct LinearBuilder {
    name: String,
    stages: Vec<StageFn>,
}

impl LinearBuilder {
    /// Append a stage.
    pub fn stage<F>(mut self, f: F) -> Self
    where
        F: FnMut(&[Completion]) -> Vec<TaskDescription> + 'static,
    {
        self.stages.push(Box::new(f));
        self
    }

    /// Finish with an outcome builder over the last stage's completions.
    /// Panics if no stage was added — an empty pipeline is a bug.
    pub fn finish<O, F>(self, f: F) -> LinearPipeline<O>
    where
        F: FnMut(&[Completion]) -> O + 'static,
    {
        assert!(!self.stages.is_empty(), "linear pipeline needs ≥ 1 stage");
        LinearPipeline {
            name: self.name,
            stages: self.stages,
            finish: Some(Box::new(f)),
            cursor: 0,
        }
    }
}

impl<O> PipelineLogic<O> for LinearPipeline<O> {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn begin(&mut self) -> Step<O> {
        self.cursor = 0;
        let tasks = (self.stages[0])(&[]);
        assert!(!tasks.is_empty(), "{}: stage 0 built no tasks", self.name);
        self.cursor = 1;
        Step::Submit(tasks)
    }

    fn stage_done(&mut self, completions: Vec<Completion>) -> Step<O> {
        if self.cursor < self.stages.len() {
            let tasks = (self.stages[self.cursor])(&completions);
            assert!(
                !tasks.is_empty(),
                "{}: stage {} built no tasks",
                self.name,
                self.cursor
            );
            self.cursor += 1;
            Step::Submit(tasks)
        } else {
            let finish = self.finish.as_mut().expect("finish set by builder");
            Step::Complete(finish(&completions))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Coordinator, NoDecisions};
    use impress_pilot::backend::SimulatedBackend;
    use impress_pilot::{PilotConfig, ResourceRequest};
    use impress_sim::SimDuration;

    fn task(name: &str, out: u64) -> TaskDescription {
        TaskDescription::new(name, ResourceRequest::cores(1), SimDuration::from_secs(1))
            .with_work(move || out)
    }

    #[test]
    fn three_stage_chain_threads_outputs() {
        let pipeline = LinearPipeline::named("chain")
            .stage(|_| vec![task("a", 5)])
            .stage(|prev| {
                let v = prev[0].result.as_ref().unwrap().is_some();
                assert!(v);
                vec![task("b1", 1), task("b2", 2)]
            })
            .stage(|prev| {
                assert_eq!(prev.len(), 2, "fan-out reached stage 3");
                vec![task("c", 9)]
            })
            .finish(|prev| prev.len() as u64 * 100);
        let mut c = Coordinator::new(SimulatedBackend::new(PilotConfig::default()), NoDecisions);
        c.add_pipeline(Box::new(pipeline));
        let report = c.run();
        assert_eq!(c.outcomes()[0].1, 100);
        assert_eq!(report.total_tasks, 4);
    }

    #[test]
    fn fan_out_counts_drive_next_stage() {
        let pipeline = LinearPipeline::named("fan")
            .stage(|_| (0..5).map(|i| task(&format!("t{i}"), i)).collect())
            .finish(|prev| prev.len());
        let mut c = Coordinator::new(SimulatedBackend::new(PilotConfig::default()), NoDecisions);
        c.add_pipeline(Box::new(pipeline));
        c.run();
        assert_eq!(c.outcomes()[0].1, 5);
    }

    #[test]
    #[should_panic(expected = "needs ≥ 1 stage")]
    fn empty_pipeline_rejected() {
        let _ = LinearPipeline::named("empty").finish(|_| ());
    }
}
