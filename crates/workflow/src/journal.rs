//! Crash-consistent write-ahead journal for the coordinator.
//!
//! Real campaigns die with their pilot allocation: the walltime expires and
//! every in-flight lineage is lost (§IV runs for 27–38 hours inside one
//! allocation). This module gives the coordinator durable state. Every
//! state transition is appended to a [`Journal`] as a sequenced,
//! CRC-framed, self-describing record *before* it is applied — so whatever
//! instant the process dies at, the journal describes a consistent prefix
//! of the run.
//!
//! # Record framing
//!
//! One JSON line per record: `{"seq":N,"crc":C,"rec":{...}}` where `seq`
//! is strictly increasing and `crc` is the FNV-1a 64 hash of the compact
//! serialization of `rec`. The loader ([`load_plan`]) drops the tail at
//! the first malformed line, CRC mismatch, non-increasing sequence number,
//! or structurally inconsistent record — a torn write costs recomputation,
//! never correctness.
//!
//! # Snapshots and compaction
//!
//! The journal maintains a running [`ReplayPlan`] — the derived state a
//! resume needs — and every `snapshot_interval` records rewrites the store
//! to `[Begin, Snapshot(plan)]`, bounding both journal size and replay
//! (load) cost. Sequence numbers keep increasing across compaction.
//!
//! # Resume model
//!
//! Resume is a deterministic *re-simulation* from `t = 0` on a fresh
//! backend. Pipelines that reached a terminal state in the journal are
//! replayed as "ghosts": their journaled per-stage task descriptions are
//! resubmitted (so the backend sees the identical load and evolves the
//! identical virtual timeline) but *without their work closures* — the
//! expensive computation is skipped and the journaled outcome is injected.
//! Pipelines that were live at the kill re-run for real, fed by the same
//! deterministic decision sequence. Because backend timing depends only on
//! task metadata, never on work outputs, an interrupted-then-resumed run
//! regenerates every artifact byte-identically to an uninterrupted one.

use impress_json::{from_field, json_enum, json_struct, FromJson, Json, ToJsonBuf};
use impress_pilot::{ResourceRequest, TaskDescription, TaskKind};
use impress_sim::SimDuration;
use std::fmt::{self, Write as _};
use std::fs::File;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Journal format version. Bumped on any incompatible change to the record
/// set or framing; [`load_plan`] refuses to replay a journal written by a
/// different version.
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// Scheduling-relevant task metadata — everything the backend's timing
/// depends on. The work closure is deliberately absent (ghost replays skip
/// it) and the tag is re-applied by the coordinator at submission.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskMeta {
    /// Task name.
    pub name: String,
    /// Slots required.
    pub request: ResourceRequest,
    /// Virtual duration.
    pub duration: SimDuration,
    /// GPU hardware-busy fraction.
    pub gpu_busy_fraction: f64,
    /// Scheduling priority.
    pub priority: i32,
    /// Executable kind (launch overhead).
    pub kind: TaskKind,
    /// Walltime limit, if any.
    pub walltime: Option<SimDuration>,
}
json_struct!(TaskMeta {
    name,
    request,
    duration,
    gpu_busy_fraction,
    priority,
    kind,
    walltime
});

impl TaskMeta {
    /// Capture a description's scheduling metadata.
    pub fn of(desc: &TaskDescription) -> Self {
        TaskMeta {
            name: desc.name.clone(),
            request: desc.request,
            duration: desc.duration,
            gpu_busy_fraction: desc.gpu_busy_fraction,
            priority: desc.priority,
            kind: desc.kind,
            walltime: desc.walltime,
        }
    }

    /// Rebuild a (work-free) description for ghost replay.
    pub fn to_description(&self) -> TaskDescription {
        let mut d = TaskDescription::new(self.name.clone(), self.request, self.duration)
            .with_gpu_busy_fraction(self.gpu_busy_fraction)
            .with_priority(self.priority)
            .with_kind(self.kind);
        if let Some(limit) = self.walltime {
            d = d.with_walltime(limit);
        }
        d
    }
}

/// How a journaled pipeline ended.
#[derive(Debug, Clone, PartialEq)]
pub enum TerminalRecord {
    /// Completed with this serialized outcome.
    Completed(Json),
    /// Aborted with this reason.
    Aborted(String),
}
json_enum!(TerminalRecord {
    Completed(outcome),
    Aborted(reason)
});

/// One pipeline's journaled history: identity, the stages it submitted (in
/// order, with full task metadata), and how it ended (if it did).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineScript {
    /// The pipeline id the live run assigned.
    pub id: u64,
    /// Its display name.
    pub name: String,
    /// Parent pipeline id, for sub-pipelines.
    pub parent: Option<u64>,
    /// Submitted stages, each a list of task metas in submission order.
    pub stages: Vec<Vec<TaskMeta>>,
    /// Stages confirmed completed (≤ `stages.len()`).
    pub stages_completed: usize,
    /// Terminal state, if the pipeline reached one before the kill.
    pub terminal: Option<TerminalRecord>,
}
json_struct!(PipelineScript {
    id,
    name,
    parent,
    stages,
    stages_completed,
    terminal
});

/// The derived state a resume needs: every pipeline the journaled run
/// registered, with its stage history and terminal record. This is also the
/// snapshot payload — the journal keeps a live copy and serializes it at
/// each compaction.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayPlan {
    /// Campaign label (validated on resume).
    pub label: String,
    /// Campaign seed (validated on resume).
    pub seed: u64,
    /// Journaled pipelines in registration order.
    pub pipelines: Vec<PipelineScript>,
}
json_struct!(ReplayPlan { label, seed, pipelines });

impl ReplayPlan {
    /// An empty plan for a fresh campaign.
    pub fn new(label: impl Into<String>, seed: u64) -> Self {
        ReplayPlan {
            label: label.into(),
            seed,
            pipelines: Vec::new(),
        }
    }

    fn script_mut(&mut self, id: u64) -> Result<&mut PipelineScript, JournalError> {
        self.pipelines
            .iter_mut()
            .find(|s| s.id == id)
            .ok_or_else(|| {
                JournalError::Corrupt(format!("record references unregistered pipeline {id}"))
            })
    }

    /// Fold one record into the plan, validating structural consistency.
    /// The writer uses this to keep its snapshot state current; the loader
    /// uses the same path, so snapshots and raw replay can never diverge.
    ///
    /// Takes the record by value: both callers own it (the writer just
    /// framed it, the loader just parsed it), so names, task vectors and
    /// outcomes move into the plan instead of being cloned per record.
    pub fn apply(&mut self, rec: JournalRecord) -> Result<(), JournalError> {
        match rec {
            JournalRecord::Begin { .. } | JournalRecord::Snapshot { .. } => Err(
                JournalError::Corrupt("Begin/Snapshot records cannot appear mid-stream".into()),
            ),
            JournalRecord::Registered {
                pipeline,
                parent,
                name,
            } => {
                if self.pipelines.iter().any(|s| s.id == pipeline) {
                    return Err(JournalError::Corrupt(format!(
                        "pipeline {pipeline} registered twice"
                    )));
                }
                self.pipelines.push(PipelineScript {
                    id: pipeline,
                    name,
                    parent,
                    stages: Vec::new(),
                    stages_completed: 0,
                    terminal: None,
                });
                Ok(())
            }
            JournalRecord::StageSubmitted {
                pipeline,
                stage,
                tasks,
            } => {
                let s = self.script_mut(pipeline)?;
                if s.terminal.is_some() || stage != s.stages.len() {
                    return Err(JournalError::Corrupt(format!(
                        "pipeline {pipeline}: stage {stage} submission out of order"
                    )));
                }
                s.stages.push(tasks);
                Ok(())
            }
            JournalRecord::StageCompleted { pipeline, stage } => {
                let s = self.script_mut(pipeline)?;
                if s.terminal.is_some() || stage != s.stages_completed || stage >= s.stages.len() {
                    return Err(JournalError::Corrupt(format!(
                        "pipeline {pipeline}: stage {stage} completion out of order"
                    )));
                }
                s.stages_completed += 1;
                Ok(())
            }
            JournalRecord::Completed { pipeline, outcome } => {
                let s = self.script_mut(pipeline)?;
                if s.terminal.is_some() {
                    return Err(JournalError::Corrupt(format!(
                        "pipeline {pipeline} finished twice"
                    )));
                }
                s.terminal = Some(TerminalRecord::Completed(outcome));
                Ok(())
            }
            JournalRecord::Aborted { pipeline, reason } => {
                let s = self.script_mut(pipeline)?;
                if s.terminal.is_some() {
                    return Err(JournalError::Corrupt(format!(
                        "pipeline {pipeline} finished twice"
                    )));
                }
                s.terminal = Some(TerminalRecord::Aborted(reason));
                Ok(())
            }
            // Poison verdicts change no replay state: resume re-simulates
            // the same fault environment and re-derives the identical
            // verdict. The record preserves it durably (post-mortems read
            // it straight off the journal), so only its structural validity
            // is checked here.
            JournalRecord::TaskPoisoned { pipeline, .. } => self.script_mut(pipeline).map(|_| ()),
        }
    }

    /// Tasks in terminal pipelines — re-submitted on resume as work-free
    /// ghosts (occupying virtual time but skipping their computation).
    pub fn ghost_tasks(&self) -> usize {
        self.pipelines
            .iter()
            .filter(|s| s.terminal.is_some())
            .map(|s| s.stages.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Pipelines that were live (non-terminal) when the journal ends.
    pub fn live_pipelines(&self) -> usize {
        self.pipelines
            .iter()
            .filter(|s| s.terminal.is_none())
            .count()
    }
}

/// One write-ahead record. Every coordinator state transition appends its
/// record *before* the transition is applied.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// Journal header: format version and campaign identity.
    Begin {
        /// [`JOURNAL_FORMAT_VERSION`] at write time.
        version: u32,
        /// Campaign label.
        label: String,
        /// Campaign seed.
        seed: u64,
    },
    /// A pipeline was registered (root or sub).
    Registered {
        /// The id the registry will assign.
        pipeline: u64,
        /// Parent pipeline, for sub-pipelines.
        parent: Option<u64>,
        /// Display name.
        name: String,
    },
    /// A stage's tasks are about to be submitted.
    StageSubmitted {
        /// The pipeline.
        pipeline: u64,
        /// Stage ordinal (0-based).
        stage: usize,
        /// Full scheduling metadata of every task in the stage.
        tasks: Vec<TaskMeta>,
    },
    /// A stage's tasks all completed.
    StageCompleted {
        /// The pipeline.
        pipeline: u64,
        /// Stage ordinal (0-based).
        stage: usize,
    },
    /// A pipeline completed; `outcome` is its serialized outcome value.
    Completed {
        /// The pipeline.
        pipeline: u64,
        /// Serialized outcome (decoded on resume).
        outcome: Json,
    },
    /// A pipeline aborted.
    Aborted {
        /// The pipeline.
        pipeline: u64,
        /// The abort reason.
        reason: String,
    },
    /// The quarantine layer classified one of the pipeline's tasks as
    /// poisoned (failed on enough distinct nodes). Written only when a
    /// quarantine policy is active and fires — journals of clean runs are
    /// byte-identical to the pre-quarantine format.
    TaskPoisoned {
        /// The pipeline that owns the task.
        pipeline: u64,
        /// The backend task id.
        task: u64,
        /// Distinct nodes the lineage failed on.
        distinct_nodes: u32,
    },
    /// A compacted snapshot of the full replay plan so far.
    Snapshot {
        /// The plan at snapshot time.
        plan: ReplayPlan,
    },
}
json_enum!(JournalRecord {
    Begin { version, label, seed },
    Registered { pipeline, parent, name },
    StageSubmitted { pipeline, stage, tasks },
    StageCompleted { pipeline, stage },
    Completed { pipeline, outcome },
    Aborted { pipeline, reason },
    TaskPoisoned { pipeline, task, distinct_nodes },
    Snapshot { plan }
});

/// Why a journal could not be written or replayed.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// The underlying store failed.
    Io(String),
    /// The journal was written by an incompatible format version.
    Version {
        /// Version found in the Begin record.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The journal head or a record is structurally invalid.
    Corrupt(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(msg) => write!(f, "journal store error: {msg}"),
            JournalError::Version { found, expected } => write!(
                f,
                "journal format version {found} is not replayable by this build (expected {expected})"
            ),
            JournalError::Corrupt(msg) => write!(f, "corrupt journal: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<impress_json::JsonError> for JournalError {
    fn from(e: impress_json::JsonError) -> Self {
        JournalError::Corrupt(e.to_string())
    }
}

/// A durable line store for journal records.
///
/// `append` must be atomic at line granularity *at most* — the whole torn-
/// write machinery exists because it usually is not. `rewrite` (compaction)
/// should replace the content as atomically as the medium allows.
pub trait JournalStore {
    /// Append one framed line.
    fn append(&self, line: &str) -> Result<(), JournalError>;
    /// Append a block of framed lines (each `\n`-terminated) with a single
    /// durability point — the group-commit fast path. Semantically
    /// equivalent to appending each line in order; the default does exactly
    /// that, and stores override it to reach one write + flush per batch.
    fn append_block(&self, block: &str) -> Result<(), JournalError> {
        for line in block.lines() {
            self.append(line)?;
        }
        Ok(())
    }
    /// All lines currently stored, in order.
    fn lines(&self) -> Result<Vec<String>, JournalError>;
    /// The full stored text, newline-delimited — the loader's single-read
    /// path (it iterates borrowed `str::lines`, never allocating per line).
    /// The default joins [`lines`](JournalStore::lines); stores override it
    /// to read their medium once.
    fn read_all(&self) -> Result<String, JournalError> {
        let mut text = self.lines()?.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        Ok(text)
    }
    /// Atomically replace the content with `lines` (compaction).
    fn rewrite(&self, lines: &[String]) -> Result<(), JournalError>;
}

/// An in-memory store. Clones share the same backing buffer, so a handle
/// held outside a coordinator survives the coordinator's death — which is
/// exactly what the kill-and-resume tests need.
#[derive(Clone, Default)]
pub struct MemoryJournal {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemoryJournal {
    /// An empty shared store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored lines.
    pub fn line_count(&self) -> usize {
        self.lines.lock().expect("journal buffer lock").len()
    }

    /// Total stored bytes (excluding line terminators).
    pub fn bytes(&self) -> usize {
        self.lines
            .lock()
            .expect("journal buffer lock")
            .iter()
            .map(String::len)
            .sum()
    }

    /// Mutate the raw lines — the test hook for simulating torn writes and
    /// corruption (truncate a line, flip bytes, drop a suffix).
    pub fn tamper(&self, f: impl FnOnce(&mut Vec<String>)) {
        f(&mut self.lines.lock().expect("journal buffer lock"));
    }
}

impl JournalStore for MemoryJournal {
    fn append(&self, line: &str) -> Result<(), JournalError> {
        self.lines
            .lock()
            .expect("journal buffer lock")
            .push(line.to_string());
        Ok(())
    }

    fn append_block(&self, block: &str) -> Result<(), JournalError> {
        // One lock acquisition per batch (`append` pays one per record).
        self.lines
            .lock()
            .expect("journal buffer lock")
            .extend(block.lines().map(str::to_string));
        Ok(())
    }

    fn lines(&self) -> Result<Vec<String>, JournalError> {
        Ok(self.lines.lock().expect("journal buffer lock").clone())
    }

    fn read_all(&self) -> Result<String, JournalError> {
        let lines = self.lines.lock().expect("journal buffer lock");
        let mut text = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for line in lines.iter() {
            text.push_str(line);
            text.push('\n');
        }
        Ok(text)
    }

    fn rewrite(&self, lines: &[String]) -> Result<(), JournalError> {
        *self.lines.lock().expect("journal buffer lock") = lines.to_vec();
        Ok(())
    }
}

/// A file-backed store: newline-delimited records written through a
/// persistent append handle (opened once, one `write` + `flush` per group
/// commit); compaction writes a sibling temp file and renames it over the
/// journal (atomic on POSIX filesystems), invalidating the handle.
pub struct FileJournal {
    path: PathBuf,
    handle: Mutex<Option<File>>,
}

impl FileJournal {
    /// A store at `path`. The file is created on first write.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FileJournal {
            path: path.into(),
            handle: Mutex::new(None),
        }
    }

    /// The journal file path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Write + flush through the persistent append handle, opening it on
    /// first use (and after a `rewrite` invalidated it).
    fn write_durable(&self, bytes: &[u8]) -> Result<(), JournalError> {
        let mut guard = self.handle.lock().expect("journal file handle lock");
        if guard.is_none() {
            *guard = Some(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)
                    .map_err(io_err)?,
            );
        }
        let f = guard.as_mut().expect("handle just ensured");
        f.write_all(bytes).map_err(io_err)?;
        f.flush().map_err(io_err)
    }
}

fn io_err(e: std::io::Error) -> JournalError {
    JournalError::Io(e.to_string())
}

impl JournalStore for FileJournal {
    fn append(&self, line: &str) -> Result<(), JournalError> {
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.write_durable(framed.as_bytes())
    }

    fn append_block(&self, block: &str) -> Result<(), JournalError> {
        self.write_durable(block.as_bytes())
    }

    fn lines(&self) -> Result<Vec<String>, JournalError> {
        Ok(self.read_all()?.lines().map(str::to_string).collect())
    }

    fn read_all(&self) -> Result<String, JournalError> {
        match std::fs::read_to_string(&self.path) {
            Ok(text) => Ok(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(String::new()),
            Err(e) => Err(io_err(e)),
        }
    }

    fn rewrite(&self, lines: &[String]) -> Result<(), JournalError> {
        // Drop the append handle first: the rename replaces the inode, and
        // a stale handle would keep appending to the unlinked old file.
        *self.handle.lock().expect("journal file handle lock") = None;
        let tmp = self.path.with_extension("journal.tmp");
        let mut body = lines.join("\n");
        if !body.is_empty() {
            body.push('\n');
        }
        std::fs::write(&tmp, body).map_err(io_err)?;
        std::fs::rename(&tmp, &self.path).map_err(io_err)
    }
}

/// FNV-1a 64-bit hash — the record checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append one framed line (`{"seq":N,"crc":C,"rec":{...}}`, no trailing
/// newline) to `out`. The record is serialized exactly once, through the
/// [`ToJsonBuf`] fast path into `scratch` (a reused buffer), and the CRC is
/// computed over those same bytes — the old tree-building path serialized
/// every record twice and allocated a fresh `String` both times. Fast-path
/// bytes are identical to the tree path's, so journals stay interchangeable.
fn write_frame(out: &mut String, scratch: &mut String, seq: u64, rec: &JournalRecord) {
    scratch.clear();
    rec.write_json(scratch);
    let crc = fnv1a(scratch.as_bytes());
    out.push_str("{\"seq\":");
    let _ = write!(out, "{seq}");
    out.push_str(",\"crc\":");
    let _ = write!(out, "{crc}");
    out.push_str(",\"rec\":");
    out.push_str(scratch);
    out.push('}');
}

/// Frame into a fresh `String` — the compaction / test convenience wrapper
/// around [`write_frame`].
fn frame(seq: u64, rec: &JournalRecord) -> String {
    let mut out = String::new();
    let mut scratch = String::new();
    write_frame(&mut out, &mut scratch, seq, rec);
    out
}

/// Why one frame failed to parse. Deliberately cheap to construct: the
/// loader discards mid-stream issues wholesale (a torn tail is dropped, not
/// reported), so formatting a diagnostic per bad line would be allocation
/// for nothing. Only the journal head converts an issue into a full
/// [`JournalError`] via [`FrameIssue::into_error`].
#[derive(Debug)]
enum FrameIssue {
    Json(impress_json::JsonError),
    NoRec,
    Crc { seq: u64, stored: u64, computed: u64 },
}

impl FrameIssue {
    fn into_error(self) -> JournalError {
        match self {
            FrameIssue::Json(e) => JournalError::Corrupt(e.to_string()),
            FrameIssue::NoRec => JournalError::Corrupt("frame has no rec field".into()),
            FrameIssue::Crc {
                seq,
                stored,
                computed,
            } => JournalError::Corrupt(format!(
                "crc mismatch at seq {seq}: stored {stored:#x}, computed {computed:#x}"
            )),
        }
    }
}

fn parse_frame(line: &str, scratch: &mut String) -> Result<(u64, JournalRecord), FrameIssue> {
    let v = impress_json::parse(line).map_err(FrameIssue::Json)?;
    let seq: u64 = from_field(&v, "seq").map_err(FrameIssue::Json)?;
    let crc: u64 = from_field(&v, "crc").map_err(FrameIssue::Json)?;
    let rec = v.get("rec").ok_or(FrameIssue::NoRec)?;
    // CRC check re-serializes the parsed record into the caller's reused
    // scratch buffer — the old path allocated a fresh String per line.
    scratch.clear();
    rec.write_json(scratch);
    let computed = fnv1a(scratch.as_bytes());
    if computed != crc {
        return Err(FrameIssue::Crc {
            seq,
            stored: crc,
            computed,
        });
    }
    Ok((seq, JournalRecord::from_json(rec).map_err(FrameIssue::Json)?))
}

/// The write-ahead journal a coordinator appends to.
///
/// Writes are **group-committed**: [`record`](Journal::record) frames into
/// an in-memory buffer and [`commit`](Journal::commit) makes the whole
/// batch durable with a single store write + flush. The write-ahead
/// contract therefore moves from "every record durable before its
/// transition applies" to "every record durable before its transition's
/// *effects* apply" — callers must commit at the barrier between producing
/// records and performing externally visible effects. Crash-wise this is
/// free: losing a buffered, uncommitted suffix is indistinguishable from
/// having crashed before those records were produced, and every journal
/// prefix is a valid checkpoint.
pub struct Journal {
    store: Box<dyn JournalStore>,
    seq: u64,
    appended: u64,
    snapshots: u64,
    since_snapshot: usize,
    snapshot_interval: Option<usize>,
    kill_after: Option<u64>,
    plan: ReplayPlan,
    /// Framed-but-not-durable lines, each `\n`-terminated.
    buf: String,
    /// Per-record serialization scratch (CRC is computed over it).
    scratch: String,
    /// Records in `buf`.
    pending: usize,
}

impl Journal {
    /// Start a fresh journal on `store` for the campaign identified by
    /// `label` + `seed`, resetting any previous content and writing the
    /// `Begin` header.
    pub fn new(
        store: Box<dyn JournalStore>,
        label: impl Into<String>,
        seed: u64,
    ) -> Result<Self, JournalError> {
        let label = label.into();
        let begin = JournalRecord::Begin {
            version: JOURNAL_FORMAT_VERSION,
            label: label.clone(),
            seed,
        };
        store.rewrite(&[frame(0, &begin)])?;
        Ok(Journal {
            store,
            seq: 1,
            appended: 0,
            snapshots: 0,
            since_snapshot: 0,
            snapshot_interval: None,
            kill_after: None,
            plan: ReplayPlan::new(label, seed),
            buf: String::new(),
            scratch: String::new(),
            pending: 0,
        })
    }

    /// Compact to a snapshot every `interval` records (default: never).
    pub fn with_snapshot_interval(mut self, interval: usize) -> Self {
        assert!(interval > 0, "snapshot interval must be positive");
        self.snapshot_interval = Some(interval);
        self
    }

    /// Test hook: panic right after the `n`-th record is durably appended —
    /// simulating a crash *between* the journal write and the state
    /// transition it describes (the write-ahead window).
    pub fn with_kill_after(mut self, n: u64) -> Self {
        self.kill_after = Some(n);
        self
    }

    /// Buffer one record into the current group commit. Framing (one
    /// serialization through the reused scratch buffer, zero allocations
    /// once warm) and plan maintenance happen now; durability is deferred
    /// to [`commit`](Journal::commit), which the caller must invoke before
    /// applying any buffered transition's externally visible effects.
    pub fn record(&mut self, rec: JournalRecord) -> Result<(), JournalError> {
        write_frame(&mut self.buf, &mut self.scratch, self.seq, &rec);
        self.buf.push('\n');
        self.seq += 1;
        self.pending += 1;
        self.since_snapshot += 1;
        self.plan.apply(rec)
    }

    /// Durably flush every buffered record as one block append — the group
    /// commit barrier. Returns the batch size. Compaction, when due, runs
    /// here (never mid-batch) so the rewrite only ever sees durable state.
    pub fn commit(&mut self) -> Result<usize, JournalError> {
        let batch = self.pending;
        if batch > 0 {
            if self.kill_after.is_some() {
                // Kill emulation degrades to per-record appends so the
                // simulated crash lands exactly after the n-th durable
                // record — covering mid-batch torn tails too.
                let buf = std::mem::take(&mut self.buf);
                self.pending = 0;
                for line in buf.lines() {
                    self.store.append(line)?;
                    self.appended += 1;
                    if self.kill_after.is_some_and(|n| self.appended >= n) {
                        panic!(
                            "journal kill switch: simulated crash after record {}",
                            self.appended
                        );
                    }
                }
            } else {
                self.store.append_block(&self.buf)?;
                self.buf.clear();
                self.pending = 0;
                self.appended += batch as u64;
            }
        }
        if self
            .snapshot_interval
            .is_some_and(|interval| self.since_snapshot >= interval)
        {
            self.compact()?;
        }
        Ok(batch)
    }

    /// Rewrite the store as `[Begin, Snapshot(plan)]`.
    fn compact(&mut self) -> Result<(), JournalError> {
        let begin = JournalRecord::Begin {
            version: JOURNAL_FORMAT_VERSION,
            label: self.plan.label.clone(),
            seed: self.plan.seed,
        };
        let snap = JournalRecord::Snapshot {
            plan: self.plan.clone(),
        };
        self.store
            .rewrite(&[frame(self.seq, &begin), frame(self.seq + 1, &snap)])?;
        self.seq += 2;
        self.since_snapshot = 0;
        self.snapshots += 1;
        Ok(())
    }

    /// Records durably appended so far (excluding Begin/Snapshot frames).
    pub fn records_written(&self) -> u64 {
        self.appended
    }

    /// Records buffered but not yet durable (zero outside a drain cycle).
    pub fn pending_records(&self) -> usize {
        self.pending
    }

    /// Compactions performed so far.
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots
    }

    /// The current derived replay plan (what a resume from this instant
    /// would see).
    pub fn plan(&self) -> &ReplayPlan {
        &self.plan
    }
}

/// What [`load_plan`] recovered from a (possibly torn) journal.
#[derive(Debug)]
pub struct LoadedJournal {
    /// The replay plan reconstructed from the valid prefix.
    pub plan: ReplayPlan,
    /// Valid records replayed (including the Begin/Snapshot head).
    pub records: usize,
    /// Trailing lines dropped as torn/corrupt.
    pub dropped: usize,
    /// Byte-identical adjacent re-writes skipped as benign duplicates (a
    /// crash between append and ack replays the last frame).
    pub duplicates: usize,
}

/// Replay a journal store into a [`ReplayPlan`].
///
/// The head must be a valid `Begin` record with a compatible format version
/// — without it the journal cannot even be identified, so corruption there
/// is a hard [`JournalError`]. Everything after the head is salvaged
/// best-effort: the tail is dropped at the first malformed, mis-checksummed,
/// out-of-sequence, or structurally inconsistent line. Dropping the tail
/// trades cached state for recomputation; it never produces a wrong plan.
///
/// One at-least-once wrinkle is tolerated rather than dropped: a line that
/// is byte-identical to its predecessor. A writer that crashes between the
/// durable append and its acknowledgement legitimately re-appends the same
/// frame on restart, so an exact duplicate carries the same sequence number
/// and checksum — it is skipped (and counted in
/// [`LoadedJournal::duplicates`]), never treated as corruption. A same-seq
/// line whose bytes *differ* is still a torn tail.
pub fn load_plan(store: &dyn JournalStore) -> Result<LoadedJournal, JournalError> {
    // One read for the whole journal; every line below is a borrowed slice
    // of `text`, and the CRC scratch buffer is reused across lines — the
    // loader allocates nothing per record beyond the parsed values.
    let text = store.read_all()?;
    let mut scratch = String::new();
    let mut it = text.lines();
    let head = it
        .next()
        .ok_or_else(|| JournalError::Corrupt("journal is empty".into()))?;
    let (mut prev_seq, begin) = parse_frame(head, &mut scratch).map_err(FrameIssue::into_error)?;
    let JournalRecord::Begin {
        version,
        label,
        seed,
    } = begin
    else {
        return Err(JournalError::Corrupt(
            "journal does not start with a Begin record".into(),
        ));
    };
    if version != JOURNAL_FORMAT_VERSION {
        return Err(JournalError::Version {
            found: version,
            expected: JOURNAL_FORMAT_VERSION,
        });
    }
    let mut plan = ReplayPlan::new(label, seed);
    let mut records = 1usize;
    let mut dropped = 0usize;
    let mut duplicates = 0usize;
    let mut remaining = it.clone().count();
    let mut prev_line = head;
    for line in it {
        // Benign at-least-once duplicate: the exact bytes of the previous
        // (already applied) frame, re-appended by a writer that died
        // between append and ack. Skip without re-applying.
        if line == prev_line {
            duplicates += 1;
            remaining -= 1;
            continue;
        }
        // Mid-stream failures are discarded wholesale (the tail is dropped,
        // not diagnosed), so the error type here is `()` — no message is
        // ever formatted for a line that will simply be dropped.
        let keep: Result<u64, ()> = parse_frame(line, &mut scratch)
            .map_err(|_| ())
            .and_then(|(seq, rec)| {
                if seq <= prev_seq {
                    return Err(()); // sequence regressed
                }
                match rec {
                    // A Snapshot directly after the head replaces the plan
                    // wholesale (compacted journal). Anywhere else it is
                    // torn.
                    JournalRecord::Snapshot { plan: snap } if records == 1 => {
                        if snap.label != plan.label || snap.seed != plan.seed {
                            return Err(()); // identity mismatch with Begin
                        }
                        plan = snap;
                        Ok(seq)
                    }
                    rec => plan.apply(rec).map(|()| seq).map_err(|_| ()),
                }
            });
        match keep {
            Ok(seq) => {
                prev_seq = seq;
                prev_line = line;
                records += 1;
                remaining -= 1;
            }
            Err(()) => {
                // Torn tail: everything from here on is untrusted.
                dropped = remaining;
                break;
            }
        }
    }
    Ok(LoadedJournal {
        plan,
        records,
        dropped,
        duplicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_json::ToJson;
    use impress_sim::SimTime;

    fn meta(name: &str, secs: u64) -> TaskMeta {
        TaskMeta {
            name: name.into(),
            request: ResourceRequest::with_gpus(2, 1),
            duration: SimDuration::from_secs(secs),
            gpu_busy_fraction: 0.33,
            priority: 5,
            kind: TaskKind::Ml,
            walltime: Some(SimDuration::from_hours(2)),
        }
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Begin {
                version: JOURNAL_FORMAT_VERSION,
                label: "t".into(),
                seed: 9,
            },
            JournalRecord::Registered {
                pipeline: 0,
                parent: None,
                name: "root".into(),
            },
            JournalRecord::Registered {
                pipeline: 1,
                parent: Some(0),
                name: "sub".into(),
            },
            JournalRecord::StageSubmitted {
                pipeline: 0,
                stage: 0,
                tasks: vec![meta("a", 10), meta("b", 20)],
            },
            JournalRecord::StageCompleted {
                pipeline: 0,
                stage: 0,
            },
            JournalRecord::TaskPoisoned {
                pipeline: 0,
                task: 17,
                distinct_nodes: 3,
            },
            JournalRecord::Completed {
                pipeline: 0,
                outcome: Json::object().field("score", 0.1875).build(),
            },
            JournalRecord::Aborted {
                pipeline: 1,
                reason: "quality floor".into(),
            },
            JournalRecord::Snapshot {
                plan: ReplayPlan::new("t", 9),
            },
        ]
    }

    #[test]
    fn every_record_type_round_trips_through_json() {
        for rec in sample_records() {
            let json = rec.to_json();
            let text = impress_json::to_string(&json);
            let back = JournalRecord::from_json(&impress_json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, rec, "round trip failed for {text}");
        }
    }

    #[test]
    fn task_meta_round_trips_and_rebuilds_descriptions() {
        let m = meta("af2", 3600);
        let back = TaskMeta::from_json(&impress_json::parse(&impress_json::to_string(&m)).unwrap())
            .unwrap();
        assert_eq!(back, m);
        let d = back.to_description();
        assert_eq!(TaskMeta::of(&d), m);
        assert!(d.work.is_none(), "ghost tasks carry no work");
    }

    #[test]
    fn frames_detect_bit_rot() {
        let rec = JournalRecord::StageCompleted {
            pipeline: 3,
            stage: 1,
        };
        let mut scratch = String::new();
        let line = frame(7, &rec);
        assert_eq!(parse_frame(&line, &mut scratch).unwrap(), (7, rec));
        let flipped = line.replace("\"stage\":1", "\"stage\":2");
        assert!(matches!(
            parse_frame(&flipped, &mut scratch),
            Err(FrameIssue::Crc { .. })
        ));
        assert!(
            parse_frame(&line[..line.len() - 4], &mut scratch).is_err(),
            "truncation"
        );
        assert!(matches!(
            FrameIssue::NoRec.into_error(),
            JournalError::Corrupt(_)
        ));
    }

    fn journaled(records: &[JournalRecord], interval: Option<usize>) -> MemoryJournal {
        let store = MemoryJournal::new();
        let mut j = Journal::new(Box::new(store.clone()), "t", 9).unwrap();
        if let Some(i) = interval {
            j = j.with_snapshot_interval(i);
        }
        // Commit after every record: the per-record durability cadence the
        // pre-group-commit journal had (and the compaction cadence the
        // interval tests expect).
        for rec in records {
            j.record(rec.clone()).unwrap();
            j.commit().unwrap();
        }
        store
    }

    /// The mid-stream records of [`sample_records`] (no Begin/Snapshot).
    fn body() -> Vec<JournalRecord> {
        sample_records()[1..8].to_vec()
    }

    #[test]
    fn load_replays_what_was_recorded() {
        let store = journaled(&body(), None);
        let loaded = load_plan(&store).unwrap();
        assert_eq!(loaded.dropped, 0);
        assert_eq!(loaded.records, 8);
        assert_eq!(loaded.plan.label, "t");
        assert_eq!(loaded.plan.seed, 9);
        assert_eq!(loaded.plan.pipelines.len(), 2);
        let root = &loaded.plan.pipelines[0];
        assert_eq!(root.stages.len(), 1);
        assert_eq!(root.stages_completed, 1);
        assert!(matches!(root.terminal, Some(TerminalRecord::Completed(_))));
        assert!(matches!(
            loaded.plan.pipelines[1].terminal,
            Some(TerminalRecord::Aborted(_))
        ));
        assert_eq!(loaded.plan.ghost_tasks(), 2);
        assert_eq!(loaded.plan.live_pipelines(), 0);
    }

    #[test]
    fn compaction_preserves_the_plan_and_shrinks_the_store() {
        let plain = journaled(&body(), None);
        let compacted = journaled(&body(), Some(2));
        assert!(compacted.line_count() < plain.line_count());
        assert_eq!(
            load_plan(&compacted).unwrap().plan,
            load_plan(&plain).unwrap().plan,
            "compaction must not change the recovered plan"
        );
    }

    #[test]
    fn appends_after_compaction_keep_sequencing_valid() {
        let store = MemoryJournal::new();
        let mut j = Journal::new(Box::new(store.clone()), "t", 9)
            .unwrap()
            .with_snapshot_interval(3);
        for rec in body() {
            j.record(rec).unwrap();
            j.commit().unwrap();
        }
        assert!(j.snapshots_taken() >= 1);
        let loaded = load_plan(&store).unwrap();
        assert_eq!(loaded.dropped, 0);
        assert_eq!(loaded.plan, *j.plan());
    }

    #[test]
    fn double_written_tail_frame_is_a_benign_duplicate() {
        // A crash between the durable append and its ack re-appends the
        // identical frame on restart — the loader must shrug, not drop the
        // tail as corrupt.
        let store = journaled(&body(), None);
        store.tamper(|lines| {
            let last = lines.last().unwrap().clone();
            lines.push(last);
        });
        let reference = load_plan(&journaled(&body(), None)).unwrap();
        let loaded = load_plan(&store).unwrap();
        assert_eq!(loaded.dropped, 0);
        assert_eq!(loaded.duplicates, 1);
        assert_eq!(loaded.plan, reference.plan, "duplicate must not re-apply");
    }

    #[test]
    fn duplicated_mid_stream_frame_is_skipped_and_the_tail_survives() {
        let store = journaled(&body(), None);
        store.tamper(|lines| {
            let mid = lines.len() / 2;
            let dup = lines[mid].clone();
            lines.insert(mid + 1, dup);
        });
        let reference = load_plan(&journaled(&body(), None)).unwrap();
        let loaded = load_plan(&store).unwrap();
        assert_eq!(loaded.dropped, 0);
        assert_eq!(loaded.duplicates, 1);
        assert_eq!(loaded.plan, reference.plan);
    }

    #[test]
    fn triple_written_frame_counts_every_extra_copy() {
        let store = journaled(&body(), None);
        store.tamper(|lines| {
            let last = lines.last().unwrap().clone();
            lines.push(last.clone());
            lines.push(last);
        });
        let loaded = load_plan(&store).unwrap();
        assert_eq!(loaded.dropped, 0);
        assert_eq!(loaded.duplicates, 2);
    }

    #[test]
    fn same_seq_with_different_bytes_is_still_a_torn_tail() {
        // Only a *byte-identical* re-write is the benign at-least-once
        // case. A same-seq line with different content is corruption.
        let store = journaled(&body(), None);
        store.tamper(|lines| {
            // Re-frame a different record under the last line's seq.
            let forged = frame(
                (lines.len() - 1) as u64,
                &JournalRecord::StageCompleted { pipeline: 0, stage: 0 },
            );
            lines.push(forged);
        });
        let loaded = load_plan(&store).unwrap();
        assert_eq!(loaded.dropped, 1, "forged same-seq frame must be dropped");
        assert_eq!(loaded.duplicates, 0);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let store = journaled(&body(), None);
        // Tear the last line mid-write.
        store.tamper(|lines| {
            let last = lines.last_mut().unwrap();
            last.truncate(last.len() / 2);
        });
        let loaded = load_plan(&store).unwrap();
        assert_eq!(loaded.dropped, 1);
        // The aborted sub-pipeline's terminal record was in the torn line.
        assert!(loaded.plan.pipelines[1].terminal.is_none());
        assert_eq!(loaded.plan.live_pipelines(), 1);
    }

    #[test]
    fn everything_after_a_torn_line_is_untrusted() {
        let store = journaled(&body(), None);
        store.tamper(|lines| {
            let mid = lines.len() / 2;
            lines[mid].truncate(3);
        });
        let loaded = load_plan(&store).unwrap();
        assert!(loaded.dropped >= 3, "torn line plus everything after it");
    }

    #[test]
    fn torn_snapshot_degrades_to_an_empty_plan() {
        let store = journaled(&body(), Some(100));
        // Compact manually by recording enough, then tear the snapshot line
        // of a freshly compacted journal.
        let compacted = journaled(&body(), Some(2));
        let _ = store;
        compacted.tamper(|lines| {
            // After compaction the store is [Begin, Snapshot, tail…]; tear
            // the Snapshot line itself (a torn rewrite).
            let keep = lines[1].len() / 3;
            lines[1].truncate(keep);
            lines.truncate(2);
        });
        let loaded = load_plan(&compacted).unwrap();
        assert_eq!(loaded.dropped, 1);
        assert!(
            loaded.plan.pipelines.is_empty(),
            "a torn snapshot means a full (still byte-identical) re-run"
        );
    }

    #[test]
    fn corrupt_head_is_a_typed_error_never_a_panic() {
        let empty = MemoryJournal::new();
        assert!(matches!(
            load_plan(&empty),
            Err(JournalError::Corrupt(_))
        ));
        let garbage = MemoryJournal::new();
        garbage.append("not json at all").unwrap();
        assert!(load_plan(&garbage).is_err());
        let wrong_head = journaled(&body(), None);
        wrong_head.tamper(|lines| {
            lines.remove(0);
        });
        assert!(matches!(
            load_plan(&wrong_head),
            Err(JournalError::Corrupt(_))
        ));
    }

    #[test]
    fn version_mismatch_is_reported() {
        let store = MemoryJournal::new();
        store
            .append(&frame(
                0,
                &JournalRecord::Begin {
                    version: JOURNAL_FORMAT_VERSION + 1,
                    label: "t".into(),
                    seed: 0,
                },
            ))
            .unwrap();
        assert_eq!(
            load_plan(&store).unwrap_err(),
            JournalError::Version {
                found: JOURNAL_FORMAT_VERSION + 1,
                expected: JOURNAL_FORMAT_VERSION
            }
        );
    }

    #[test]
    fn kill_switch_panics_after_the_nth_append() {
        let store = MemoryJournal::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut j = Journal::new(Box::new(store.clone()), "t", 9)
                .unwrap()
                .with_kill_after(2);
            for rec in body() {
                j.record(rec).unwrap();
                j.commit().unwrap();
            }
        }));
        assert!(result.is_err(), "kill switch must fire");
        // Begin + exactly 2 appended records survive (write-ahead: the
        // record is durable even though its transition never applied).
        assert_eq!(store.line_count(), 3);
        assert!(load_plan(&store).is_ok());
    }

    #[test]
    fn records_buffer_until_commit_then_flush_as_one_block() {
        let store = MemoryJournal::new();
        let mut j = Journal::new(Box::new(store.clone()), "t", 9).unwrap();
        for rec in body() {
            j.record(rec).unwrap();
        }
        assert_eq!(store.line_count(), 1, "nothing durable before the barrier");
        assert_eq!(j.pending_records(), 7);
        assert_eq!(j.records_written(), 0);
        assert_eq!(j.commit().unwrap(), 7);
        assert_eq!(j.pending_records(), 0);
        assert_eq!(j.records_written(), 7);
        assert_eq!(store.line_count(), 8);
        // Group commit is invisible downstream: byte-identical lines to the
        // per-record-commit path.
        let per_record = journaled(&body(), None);
        assert_eq!(store.lines().unwrap(), per_record.lines().unwrap());
    }

    #[test]
    fn commit_with_nothing_buffered_is_a_noop() {
        let store = MemoryJournal::new();
        let mut j = Journal::new(Box::new(store.clone()), "t", 9).unwrap();
        assert_eq!(j.commit().unwrap(), 0);
        assert_eq!(store.line_count(), 1);
    }

    #[test]
    fn kill_mid_batch_leaves_exactly_the_durable_prefix() {
        let store = MemoryJournal::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut j = Journal::new(Box::new(store.clone()), "t", 9)
                .unwrap()
                .with_kill_after(4);
            for rec in body() {
                j.record(rec).unwrap();
            }
            j.commit().unwrap();
        }));
        assert!(result.is_err(), "kill switch must fire inside the batch");
        assert_eq!(store.line_count(), 5, "Begin + exactly 4 durable records");
        let loaded = load_plan(&store).unwrap();
        assert_eq!(loaded.dropped, 0);
    }

    #[test]
    fn compaction_fires_at_the_commit_barrier_not_mid_batch() {
        let store = MemoryJournal::new();
        let mut j = Journal::new(Box::new(store.clone()), "t", 9)
            .unwrap()
            .with_snapshot_interval(2);
        for rec in body() {
            j.record(rec).unwrap();
        }
        assert_eq!(j.snapshots_taken(), 0, "no compaction while buffering");
        j.commit().unwrap();
        assert_eq!(j.snapshots_taken(), 1, "one compaction at the barrier");
        assert_eq!(store.line_count(), 2, "[Begin, Snapshot]");
        assert_eq!(
            load_plan(&store).unwrap().plan,
            load_plan(&journaled(&body(), None)).unwrap().plan
        );
    }

    #[test]
    fn file_store_appends_compacts_and_reloads() {
        let dir = std::env::temp_dir().join(format!(
            "impress-journal-test-{}-{:?}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.journal");
        {
            let mut j = Journal::new(Box::new(FileJournal::new(&path)), "file-test", 4).unwrap();
            // Batch the whole body through one group commit — exercises the
            // persistent handle's single-write append_block path.
            for rec in body() {
                j.record(rec).unwrap();
            }
            j.commit().unwrap();
        }
        let reloaded = load_plan(&FileJournal::new(&path)).unwrap();
        assert_eq!(reloaded.plan.pipelines.len(), 2);
        assert_eq!(reloaded.dropped, 0);
        // Compaction path: rewrite through the same store (per-record
        // commits so the interval actually fires mid-run, re-opening the
        // append handle after each rewrite).
        {
            let mut j = Journal::new(Box::new(FileJournal::new(&path)), "file-test", 4)
                .unwrap()
                .with_snapshot_interval(2);
            for rec in body() {
                j.record(rec).unwrap();
                j.commit().unwrap();
            }
            assert!(j.snapshots_taken() >= 1);
        }
        let compacted = load_plan(&FileJournal::new(&path)).unwrap();
        assert_eq!(compacted.plan, reloaded.plan);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let store = FileJournal::new("/nonexistent-dir-hopefully/x.journal");
        assert_eq!(store.lines().unwrap().len(), 0);
        let _ = SimTime::ZERO; // keep the import exercised under cfg(test)
    }
}
