//! The multi-tenant campaign service.
//!
//! Everything below the workflow layer assumes one owner: a
//! [`Coordinator`] owns a session, the session owns the backend, and a
//! campaign has the cluster to itself. The ROADMAP north star is a
//! *service* shape — many tenants, thousands of concurrent campaigns, one
//! shared cluster — and this module is that promotion. A
//! [`CampaignService`] multiplexes many independent campaigns (each its
//! own coordinator + decision engine + optional write-ahead journal) over
//! one shared backend through [`SharedCluster`] leases, behind a typed
//! submission API:
//!
//! * [`TenantId`] / [`TenantQuota`] — who may submit, and how much: max
//!   concurrently running campaigns, core/GPU-second budgets, and a
//!   fair-share weight.
//! * [`CampaignSpec`] — a builder bundling root pipelines, the decision
//!   engine, an optional journal, an optional resume plan, and a priority
//!   class.
//! * [`CampaignHandle`] — the typed token [`CampaignService::submit`]
//!   returns, accepted by `status`/`cancel`/`take_result`.
//!
//! **Admission control** is enforced at submit time: unknown tenants,
//! tenants at their in-flight cap, and tenants over their delivered
//! core/GPU-second budget are refused with a typed [`AdmissionError`].
//!
//! **Clock discipline.** The service never lets one campaign's wait
//! serialize the fleet: a campaign is stepped only while it can make
//! progress at the current instant ([`Coordinator::try_step`] — pending
//! pipeline starts, an inboxed completion, or its idle/terminal
//! transition), and only when *no* campaign is ready does the service
//! advance the shared clock, by pumping exactly one completion out of the
//! backend ([`SharedCluster::pump_one`]) and handing it to its owner.
//! Every task submittable at time `T` is therefore on the shared
//! scheduler's queue before the clock moves past `T` — thousands of
//! campaigns run genuinely concurrently instead of being time-sliced
//! sequentially by each other's blocking waits.
//!
//! **Fair share** has two cooperating layers. When several tenants have
//! ready campaigns at the same instant, stepping order is weighted
//! deficit round-robin over them (each tenant's virtual clock advances by
//! `QUANTUM / weight` per step it receives, lowest clock steps next),
//! which divides *coordinator attention* fairly under simultaneous
//! demand. Sustained slot contention inside the shared scheduler is
//! steered by per-lease priority boosts: tenants are ranked by delivered
//! usage per unit weight, and a tenant's boost is the number of tenants
//! strictly ahead of it — under-served tenants enqueue future tasks at
//! higher priority. With a single tenant the boost is exactly 0, so a
//! one-campaign service is behaviorally identical to a bare coordinator
//! on the same backend.
//!
//! **Priority preemption**: campaigns carry a priority class; admitting a
//! campaign of a higher class sweeps the running tasks of every
//! lower-class campaign through [`SharedCluster::preempt`], which reuses
//! the crash/requeue eviction path — evicted attempts are incarnation-
//! fenced, requeued without consuming retry budget, and their partial
//! occupancy is booked as waste. Preemption can therefore never produce a
//! terminal error in the victim campaign, only delay.
//!
//! **Isolation invariants**: a campaign observes exactly its own
//! completions, in shared pump order (see [`crate::coordinator`] and
//! `impress_pilot::cluster`); cancel/preempt through a lease refuse
//! foreign tasks; a canceled campaign's late completions are dropped, not
//! delivered. The contents of every completion — and each stage's batch —
//! are thus a function of the campaign's own pipelines and seeds alone.
//! One caveat is inherent to real resource sharing: the *arrival order*
//! among a campaign's own concurrent pipelines tracks actual finish times
//! on the shared cluster, exactly as it would shift between cluster
//! shapes on a dedicated one. Decision logic that is a function of the
//! (unordered) outcome set is therefore neighbor-independent — the
//! serial-vs-service determinism tests pin this down bit-for-bit — while
//! logic that races its own pipelines against a shared mutable budget
//! inherits that order sensitivity, on a service or off it.

use crate::coordinator::{Coordinator, TryStep};
use crate::decision::DecisionEngine;
use crate::journal::{Journal, ReplayPlan};
use crate::pipeline::{BoxedPipeline, PipelineId};
use impress_json::{FromJson, ToJson};
use impress_pilot::cluster::{ClusterLease, LeaseUsage, SharedCluster};
use impress_pilot::{ExecutionBackend, UtilizationReport};
use impress_sim::SimTime;
use impress_telemetry::{track, SpanCat, SpanId, Telemetry};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;

/// A tenant's identity. Cheap to clone; compared by value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub String);

impl TenantId {
    /// A tenant id from anything string-like.
    pub fn new(name: impl Into<String>) -> Self {
        TenantId(name.into())
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// What a tenant is entitled to.
#[derive(Debug, Clone, Copy)]
pub struct TenantQuota {
    /// Max campaigns running at once; further submissions are refused.
    pub max_in_flight: usize,
    /// Delivered core-second budget across all of the tenant's campaigns
    /// (`f64::INFINITY` = unmetered). Checked at admission, not mid-run:
    /// a campaign admitted under budget runs to completion.
    pub core_seconds: f64,
    /// Delivered GPU-second budget, same semantics.
    pub gpu_seconds: f64,
    /// Fair-share weight (≥ 1): a weight-2 tenant is entitled to twice the
    /// service attention and slot share of a weight-1 tenant.
    pub weight: u32,
}

impl TenantQuota {
    /// `max_in_flight` campaigns, unmetered budgets, weight 1.
    pub fn unmetered(max_in_flight: usize) -> Self {
        TenantQuota {
            max_in_flight,
            core_seconds: f64::INFINITY,
            gpu_seconds: f64::INFINITY,
            weight: 1,
        }
    }

    /// Set the fair-share weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        assert!(weight >= 1, "fair-share weight must be >= 1");
        self.weight = weight;
        self
    }

    /// Set the core/GPU-second budgets.
    pub fn with_budget(mut self, core_seconds: f64, gpu_seconds: f64) -> Self {
        self.core_seconds = core_seconds;
        self.gpu_seconds = gpu_seconds;
        self
    }
}

/// Everything needed to run one campaign, bundled for submission.
pub struct CampaignSpec<O> {
    name: String,
    roots: Vec<BoxedPipeline<O>>,
    decision: Box<dyn DecisionEngine<O>>,
    journal: Option<Journal>,
    plan: Option<ReplayPlan>,
    priority: i32,
}

impl<O: 'static> CampaignSpec<O> {
    /// A campaign named `name` with no pipelines yet and the null decision
    /// engine.
    pub fn new(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            roots: Vec::new(),
            decision: Box::new(crate::decision::NoDecisions),
            journal: None,
            plan: None,
            priority: 0,
        }
    }

    /// Add a root pipeline.
    pub fn root(mut self, pipeline: BoxedPipeline<O>) -> Self {
        self.roots.push(pipeline);
        self
    }

    /// Install the adaptive decision engine (default: no decisions).
    pub fn decision(mut self, engine: Box<dyn DecisionEngine<O>>) -> Self {
        self.decision = engine;
        self
    }

    /// Install a write-ahead journal for crash consistency.
    pub fn journal(mut self, journal: Journal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Resume from a replayed journal plan instead of starting fresh: root
    /// pipelines must be re-added in the original order, and journaled
    /// terminal pipelines replay as work-free ghosts (see
    /// [`Coordinator::resume`]).
    pub fn resume_from(mut self, plan: ReplayPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Set the priority class (default 0). Admitting a campaign of a
    /// strictly higher class preempts the running tasks of lower-class
    /// campaigns.
    pub fn priority(mut self, class: i32) -> Self {
        self.priority = class;
        self
    }
}

/// The typed token identifying one submitted campaign.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CampaignHandle {
    id: u64,
    tenant: TenantId,
}

impl CampaignHandle {
    /// The campaign's dense id (also its telemetry track key).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The owning tenant.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }
}

/// Where a campaign is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignStatus {
    /// Admitted and being stepped.
    Running,
    /// Reached its natural end; the result is waiting in the service.
    Completed,
    /// Stopped by the backend's walltime deadline with work checkpointed
    /// (meaningful only for journaled campaigns — resume from the journal).
    Drained,
    /// Canceled by the tenant; queued tasks were canceled, running tasks
    /// finish as waste and their completions are dropped.
    Canceled,
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The tenant was never registered.
    UnknownTenant(TenantId),
    /// The tenant is at its concurrent-campaign cap.
    TooManyInFlight {
        /// The cap that was hit.
        limit: usize,
    },
    /// The tenant's delivered usage exceeds a budget.
    BudgetExhausted {
        /// `"core-seconds"` or `"gpu-seconds"`.
        resource: &'static str,
        /// Delivered so far.
        spent: f64,
        /// The quota.
        budget: f64,
    },
    /// The submitted resume plan does not decode for this outcome type.
    BadPlan(String),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            AdmissionError::TooManyInFlight { limit } => {
                write!(f, "tenant is at its in-flight campaign cap of {limit}")
            }
            AdmissionError::BudgetExhausted {
                resource,
                spent,
                budget,
            } => write!(f, "tenant exhausted its {resource} budget ({spent:.1} of {budget:.1})"),
            AdmissionError::BadPlan(e) => write!(f, "resume plan rejected: {e}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A finished campaign's yield.
pub struct CampaignResult<O> {
    /// Terminal status ([`CampaignStatus::Running`] never appears here).
    pub status: CampaignStatus,
    /// Completed pipeline outcomes, in completion order.
    pub outcomes: Vec<(PipelineId, O)>,
    /// Aborted pipelines and their reasons.
    pub aborts: Vec<(PipelineId, String)>,
    /// Occupancy the campaign was delivered.
    pub usage: LeaseUsage,
    /// Backend time at submission.
    pub submitted_at: SimTime,
    /// Backend time at the terminal transition.
    pub finished_at: SimTime,
}

/// Per-tenant bookkeeping.
struct TenantState {
    id: TenantId,
    quota: TenantQuota,
    /// Campaign indices currently running.
    active: Vec<usize>,
    /// Campaigns that can make progress without waiting, in FIFO order
    /// (round-robin within the tenant emerges from re-marking).
    ready: VecDeque<usize>,
    /// Usage accumulated by finished/canceled campaigns.
    spent: LeaseUsage,
    /// Deficit round-robin virtual clock (micro-quanta).
    vclock: u64,
    /// Whether an entry for this tenant is in the stepping heap.
    queued: bool,
}

/// One campaign's slot in the service.
struct CampaignState<O, B: ExecutionBackend> {
    tenant: usize,
    name: String,
    status: CampaignStatus,
    priority: i32,
    lease: u32,
    /// Whether this campaign sits in its tenant's ready queue.
    ready: bool,
    coordinator: Option<Coordinator<O, ClusterLease<B>, Box<dyn DecisionEngine<O>>>>,
    result: Option<CampaignResult<O>>,
    submitted_at: SimTime,
    span: SpanId,
}

/// Stepping-heap entry: tenants pop in virtual-clock order (ties broken by
/// registration order), which realizes weighted deficit round-robin.
#[derive(PartialEq, Eq)]
struct HeapEntry {
    vclock: u64,
    tenant: usize,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for min-vclock-first.
        other
            .vclock
            .cmp(&self.vclock)
            .then(other.tenant.cmp(&self.tenant))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The virtual-clock quantum a weight-1 tenant pays per step. Weighted
/// tenants pay `QUANTUM / weight`, so weight-2 tenants step twice as often
/// when both have ready campaigns.
const QUANTUM: u64 = 10_080;

/// Recompute fair-share boosts every this many service steps. Boost
/// recomputation scans every tenant's live leases, so it is amortized
/// rather than per-step; a service step is roughly one routed completion,
/// so this keeps boosts responsive on the scale of tens of completions.
const REBALANCE_EVERY: u64 = 64;

/// Thousands of concurrent campaigns behind a typed submission API, on one
/// shared cluster. See the module docs for the full contract.
pub struct CampaignService<O, B: ExecutionBackend> {
    cluster: SharedCluster<B>,
    tenants: Vec<TenantState>,
    tenant_index: HashMap<TenantId, usize>,
    campaigns: Vec<CampaignState<O, B>>,
    /// Lease id → campaign index, the pump's delivery routing.
    lease_index: HashMap<u32, usize>,
    /// Tenants with ready campaigns, popped in vclock order.
    heap: BinaryHeap<HeapEntry>,
    steps: u64,
    telemetry: Telemetry,
    /// Completions of finished campaigns, for the service-level report.
    finished: usize,
}

impl<O, B> CampaignService<O, B>
where
    O: ToJson + FromJson + 'static,
    B: ExecutionBackend,
{
    /// A service over one shared backend.
    pub fn new(backend: B) -> Self {
        let cluster = SharedCluster::new(backend);
        let telemetry = cluster.telemetry().clone();
        CampaignService {
            cluster,
            tenants: Vec::new(),
            tenant_index: HashMap::new(),
            campaigns: Vec::new(),
            lease_index: HashMap::new(),
            heap: BinaryHeap::new(),
            steps: 0,
            telemetry,
            finished: 0,
        }
    }

    /// Register a tenant. Re-registering replaces the quota (existing
    /// campaigns are unaffected).
    pub fn register_tenant(&mut self, id: TenantId, quota: TenantQuota) {
        assert!(quota.weight >= 1, "fair-share weight must be >= 1");
        if let Some(&at) = self.tenant_index.get(&id) {
            self.tenants[at].quota = quota;
            return;
        }
        let at = self.tenants.len();
        // Late joiners start at the current minimum virtual clock, not 0 —
        // otherwise a tenant registered late would monopolize stepping
        // until it "caught up" with everyone's accumulated clock.
        let vclock = self.heap.peek().map(|e| e.vclock).unwrap_or(0);
        self.tenants.push(TenantState {
            id: id.clone(),
            quota,
            active: Vec::new(),
            ready: VecDeque::new(),
            spent: LeaseUsage::default(),
            vclock,
            queued: false,
        });
        self.tenant_index.insert(id, at);
    }

    /// A tenant's delivered usage so far: finished campaigns plus live
    /// leases.
    pub fn tenant_usage(&self, id: &TenantId) -> Option<LeaseUsage> {
        let &at = self.tenant_index.get(id)?;
        Some(self.tenant_usage_at(at))
    }

    fn tenant_usage_at(&self, at: usize) -> LeaseUsage {
        let t = &self.tenants[at];
        let mut u = t.spent;
        for &c in &t.active {
            if let Some(live) = self.cluster.usage_of(self.campaigns[c].lease) {
                u.core_seconds += live.core_seconds;
                u.gpu_seconds += live.gpu_seconds;
                u.completions += live.completions;
            }
        }
        u
    }

    /// Submit a campaign. On success the campaign is admitted, its lease
    /// opened, and (if its priority class exceeds a running campaign's)
    /// lower-class running tasks preempted.
    pub fn submit(
        &mut self,
        tenant: &TenantId,
        spec: CampaignSpec<O>,
    ) -> Result<CampaignHandle, AdmissionError> {
        let &at = self
            .tenant_index
            .get(tenant)
            .ok_or_else(|| AdmissionError::UnknownTenant(tenant.clone()))?;
        let quota = self.tenants[at].quota;
        if self.tenants[at].active.len() >= quota.max_in_flight {
            self.deny_instant(tenant, "in-flight-cap");
            return Err(AdmissionError::TooManyInFlight {
                limit: quota.max_in_flight,
            });
        }
        let usage = self.tenant_usage_at(at);
        if usage.core_seconds >= quota.core_seconds {
            self.deny_instant(tenant, "core-seconds");
            return Err(AdmissionError::BudgetExhausted {
                resource: "core-seconds",
                spent: usage.core_seconds,
                budget: quota.core_seconds,
            });
        }
        if usage.gpu_seconds >= quota.gpu_seconds {
            self.deny_instant(tenant, "gpu-seconds");
            return Err(AdmissionError::BudgetExhausted {
                resource: "gpu-seconds",
                spent: usage.gpu_seconds,
                budget: quota.gpu_seconds,
            });
        }

        let lease = self.cluster.lease();
        let lease_id = lease.id();
        let mut coordinator = match &spec.plan {
            Some(plan) => Coordinator::resume(lease, spec.decision, plan)
                .map_err(|e| AdmissionError::BadPlan(e.to_string()))?,
            None => Coordinator::new(lease, spec.decision),
        };
        if let Some(journal) = spec.journal {
            coordinator = coordinator.with_journal(journal);
        }
        for root in spec.roots {
            coordinator.add_pipeline(root);
        }

        let id = self.campaigns.len() as u64;
        let now = self.cluster.now();
        let span = self.telemetry.span(
            SpanCat::Service,
            &spec.name,
            SpanId::NONE,
            track::campaign(id),
            impress_telemetry::Stamp::virt(now),
            &[
                ("campaign", id as i64),
                ("tenant", at as i64),
                ("priority", spec.priority as i64),
            ],
        );
        self.telemetry.count("campaigns_admitted", 1);
        self.campaigns.push(CampaignState {
            tenant: at,
            name: spec.name,
            status: CampaignStatus::Running,
            priority: spec.priority,
            lease: lease_id,
            ready: false,
            coordinator: Some(coordinator),
            result: None,
            submitted_at: now,
            span,
        });
        let cid = self.campaigns.len() - 1;
        self.lease_index.insert(lease_id, cid);
        self.tenants[at].active.push(cid);
        self.mark_ready(cid);
        self.preempt_below(spec.priority);
        Ok(CampaignHandle {
            id,
            tenant: tenant.clone(),
        })
    }

    fn deny_instant(&self, tenant: &TenantId, why: &str) {
        if self.telemetry.enabled() {
            self.telemetry.count("campaigns_denied", 1);
            self.telemetry.instant(
                SpanCat::Service,
                &format!("admission-denied:{why}"),
                SpanId::NONE,
                track::SESSION,
                impress_telemetry::Stamp::virt(self.cluster.now()),
                &[("tenant_name_len", tenant.0.len() as i64)],
            );
        }
    }

    /// Preempt running tasks of every running campaign with a priority
    /// class strictly below `class`. Victim attempts requeue without
    /// consuming retry budget; their occupancy is booked as waste.
    fn preempt_below(&mut self, class: i32) {
        let victims: Vec<u32> = self
            .campaigns
            .iter()
            .filter(|c| c.status == CampaignStatus::Running && c.priority < class)
            .map(|c| c.lease)
            .collect();
        let mut evicted = 0u64;
        for lease in victims {
            for task in self.cluster.tasks_of(lease) {
                if self.cluster.preempt(lease, task) {
                    evicted += 1;
                }
            }
        }
        if evicted > 0 {
            self.telemetry.count("service_preemptions", evicted);
            self.telemetry.instant(
                SpanCat::Service,
                "preemption-sweep",
                SpanId::NONE,
                track::SESSION,
                impress_telemetry::Stamp::virt(self.cluster.now()),
                &[("evicted", evicted as i64), ("class", class as i64)],
            );
        }
    }

    /// A campaign's current status. Panics on a handle from another
    /// service (handles are dense indices).
    pub fn status(&self, handle: &CampaignHandle) -> CampaignStatus {
        self.campaigns[handle.id as usize].status
    }

    /// A campaign's submitted name.
    pub fn name(&self, handle: &CampaignHandle) -> &str {
        &self.campaigns[handle.id as usize].name
    }

    /// Registered tenants, in registration order.
    pub fn tenants(&self) -> impl Iterator<Item = &TenantId> {
        self.tenants.iter().map(|t| &t.id)
    }

    /// Cancel a running campaign: queued tasks are canceled, running tasks
    /// finish as waste (their completions are dropped), the lease is
    /// retired, and the tenant's slot is freed. Returns `false` if the
    /// campaign was already terminal.
    pub fn cancel(&mut self, handle: &CampaignHandle) -> bool {
        let cid = handle.id as usize;
        if self.campaigns[cid].status != CampaignStatus::Running {
            return false;
        }
        let coordinator = self.campaigns[cid]
            .coordinator
            .take()
            .expect("running campaign has a coordinator");
        let mut parts = coordinator.into_parts();
        for task in self.cluster.tasks_of(self.campaigns[cid].lease) {
            parts.session.cancel(task);
        }
        parts.session.backend_mut().retire();
        self.telemetry.count("campaigns_canceled", 1);
        self.finish_campaign(
            cid,
            CampaignStatus::Canceled,
            parts.outcomes,
            parts.aborts,
        );
        true
    }

    /// Take a finished campaign's result. `None` while it is still running
    /// or if the result was already taken.
    pub fn take_result(&mut self, handle: &CampaignHandle) -> Option<CampaignResult<O>> {
        self.campaigns[handle.id as usize].result.take()
    }

    /// Campaigns admitted so far (any status).
    pub fn campaigns_admitted(&self) -> usize {
        self.campaigns.len()
    }

    /// Campaigns that have reached a terminal status.
    pub fn campaigns_finished(&self) -> usize {
        self.finished
    }

    /// Current backend time.
    pub fn now(&self) -> SimTime {
        self.cluster.now()
    }

    /// Cluster-wide utilization.
    pub fn utilization(&self) -> UtilizationReport {
        self.cluster.utilization()
    }

    /// Push `tenant` into the stepping heap if it has ready campaigns and
    /// is not queued already.
    fn enqueue_tenant(&mut self, tenant: usize) {
        let t = &mut self.tenants[tenant];
        if !t.queued && !t.ready.is_empty() {
            t.queued = true;
            self.heap.push(HeapEntry {
                vclock: t.vclock,
                tenant,
            });
        }
    }

    /// Mark a campaign ready to step (no-op if it already is, or is not
    /// running).
    fn mark_ready(&mut self, cid: usize) {
        let c = &mut self.campaigns[cid];
        if c.status != CampaignStatus::Running || c.ready {
            return;
        }
        c.ready = true;
        let tenant = c.tenant;
        self.tenants[tenant].ready.push_back(cid);
        self.enqueue_tenant(tenant);
    }

    /// Re-evaluate a just-stepped campaign's readiness: pending pipeline
    /// starts, an inboxed completion, or nothing in flight (the
    /// idle/terminal transition is itself a no-wait step).
    fn refresh_ready(&mut self, cid: usize) {
        let c = &self.campaigns[cid];
        if c.status != CampaignStatus::Running {
            return;
        }
        let pending = c
            .coordinator
            .as_ref()
            .is_some_and(|co| co.has_pending_starts());
        if pending || self.cluster.lease_ready(c.lease) {
            self.mark_ready(cid);
        }
    }

    /// Pop the next campaign to step: a ready campaign of the
    /// lowest-vclock tenant. Lazily discards stale ready-queue entries
    /// (campaigns canceled since marking) and heap entries of tenants
    /// whose ready queues drained.
    fn pop_ready(&mut self) -> Option<(usize, usize)> {
        while let Some(HeapEntry { tenant, .. }) = self.heap.pop() {
            self.tenants[tenant].queued = false;
            while let Some(cid) = self.tenants[tenant].ready.pop_front() {
                let c = &mut self.campaigns[cid];
                let live = c.ready && c.status == CampaignStatus::Running;
                c.ready = false;
                if live {
                    return Some((tenant, cid));
                }
            }
        }
        None
    }

    /// Take a terminally-stepped campaign apart: retire its lease, book
    /// its usage, park its result.
    fn retire_terminal(&mut self, cid: usize) {
        let coordinator = self.campaigns[cid]
            .coordinator
            .take()
            .expect("running campaign has a coordinator");
        let drained = coordinator.drained();
        let mut parts = coordinator.into_parts();
        parts.session.backend_mut().retire();
        let status = if drained {
            CampaignStatus::Drained
        } else {
            CampaignStatus::Completed
        };
        self.telemetry.count("campaigns_completed", 1);
        self.finish_campaign(cid, status, parts.outcomes, parts.aborts);
    }

    /// Advance the service by one step: step the ready campaign of the
    /// lowest-vclock tenant, or — when no campaign can progress at the
    /// current instant — advance the shared clock by pumping one
    /// completion and deliver it to its owner. Returns `false` when no
    /// campaign is running.
    pub fn step(&mut self) -> bool {
        loop {
            if let Some((tenant, cid)) = self.pop_ready() {
                self.steps += 1;
                if self.steps % REBALANCE_EVERY == 0 {
                    self.rebalance_boosts();
                }
                // Weighted deficit: the tenant pays a full quantum scaled
                // down by its weight, then re-queues behind whoever is now
                // lowest.
                let weight = u64::from(self.tenants[tenant].quota.weight);
                self.tenants[tenant].vclock += QUANTUM / weight;
                let outcome = self.campaigns[cid]
                    .coordinator
                    .as_mut()
                    .expect("running campaign has a coordinator")
                    .try_step();
                match outcome {
                    TryStep::Progressed => {
                        self.refresh_ready(cid);
                        self.enqueue_tenant(tenant);
                        return true;
                    }
                    TryStep::Terminal => {
                        self.retire_terminal(cid);
                        self.enqueue_tenant(tenant);
                        return true;
                    }
                    // Readiness marking is precise, so this arm should be
                    // unreachable; treat it as a harmless no-op step.
                    TryStep::Blocked => {
                        self.enqueue_tenant(tenant);
                        continue;
                    }
                }
            }
            if self.finished == self.campaigns.len() {
                return false;
            }
            // Nobody can progress without the clock moving: pump exactly
            // one completion, which makes its owner ready.
            match self.cluster.pump_one() {
                Some(owner) => {
                    if let Some(&cid) = self.lease_index.get(&owner) {
                        self.mark_ready(cid);
                    }
                }
                None => {
                    // Campaigns are blocked but nothing is deliverable:
                    // the backend's walltime deadline is holding tasks.
                    // Let one blocked campaign observe the drain through
                    // its (now non-advancing) blocking step.
                    let cid = (0..self.campaigns.len())
                        .find(|&c| self.campaigns[c].status == CampaignStatus::Running)
                        .expect("unfinished campaigns exist");
                    let alive = self.campaigns[cid]
                        .coordinator
                        .as_mut()
                        .expect("running campaign has a coordinator")
                        .step();
                    if !alive {
                        self.retire_terminal(cid);
                    }
                    return true;
                }
            }
        }
    }

    /// Drive every admitted campaign to a terminal state.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Common terminal bookkeeping for completion, drain and cancel.
    fn finish_campaign(
        &mut self,
        cid: usize,
        status: CampaignStatus,
        outcomes: Vec<(PipelineId, O)>,
        aborts: Vec<(PipelineId, String)>,
    ) {
        let usage = self
            .cluster
            .usage_of(self.campaigns[cid].lease)
            .unwrap_or_default();
        let now = self.cluster.now();
        let tenant = self.campaigns[cid].tenant;
        {
            let t = &mut self.tenants[tenant];
            t.spent.core_seconds += usage.core_seconds;
            t.spent.gpu_seconds += usage.gpu_seconds;
            t.spent.completions += usage.completions;
            t.active.retain(|&c| c != cid);
        }
        self.lease_index.remove(&self.campaigns[cid].lease);
        let c = &mut self.campaigns[cid];
        c.ready = false;
        c.status = status;
        c.result = Some(CampaignResult {
            status,
            outcomes,
            aborts,
            usage,
            submitted_at: c.submitted_at,
            finished_at: now,
        });
        self.telemetry
            .end(c.span, impress_telemetry::Stamp::virt(now));
        self.finished += 1;
    }

    /// Map tenant usage ranks onto lease priority boosts: a tenant's boost
    /// is the number of tenants strictly ahead of it in delivered usage
    /// per unit weight. Under-served tenants enqueue future work at higher
    /// priority; with one tenant the boost is exactly 0 (pass-through).
    fn rebalance_boosts(&mut self) {
        let ratios: Vec<f64> = (0..self.tenants.len())
            .map(|at| {
                let u = self.tenant_usage_at(at);
                (u.core_seconds + u.gpu_seconds) / f64::from(self.tenants[at].quota.weight)
            })
            .collect();
        let mut swept = 0u64;
        for at in 0..self.tenants.len() {
            let boost = ratios
                .iter()
                .filter(|&&r| r > ratios[at])
                .count() as i32;
            for &cid in &self.tenants[at].active {
                self.cluster.set_boost(self.campaigns[cid].lease, boost);
                swept += 1;
            }
        }
        if swept > 0 {
            self.telemetry.count("fair_share_rebalances", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineLogic;
    use crate::stage::Step;
    use impress_pilot::backend::SimulatedBackend;
    use impress_pilot::{
        Completion, NodeSpec, PilotConfig, PlacementPolicy, ResourceRequest, TaskDescription,
    };
    use impress_sim::SimDuration;

    fn backend(cores: u32) -> SimulatedBackend {
        SimulatedBackend::new(PilotConfig {
            node: NodeSpec::new(cores, 2, 64),
            nodes: 1,
            policy: PlacementPolicy::Backfill,
            bootstrap: SimDuration::from_secs(5),
            exec_setup_per_task: SimDuration::from_secs(1),
            seed: 0,
        })
    }

    /// `stages` single-task stages, outcome = sum of task outputs.
    struct Counter {
        label: String,
        stages: u32,
        acc: u64,
    }

    impl PipelineLogic<u64> for Counter {
        fn name(&self) -> String {
            self.label.clone()
        }
        fn begin(&mut self) -> Step<u64> {
            self.next_stage()
        }
        fn stage_done(&mut self, completions: Vec<Completion>) -> Step<u64> {
            for c in completions {
                self.acc += c.output::<u64>();
            }
            self.next_stage()
        }
    }

    impl Counter {
        fn next_stage(&mut self) -> Step<u64> {
            if self.stages == 0 {
                return Step::Complete(self.acc);
            }
            self.stages -= 1;
            Step::run(
                TaskDescription::new(
                    format!("{}-stage", self.label),
                    ResourceRequest::cores(1),
                    SimDuration::from_secs(3),
                )
                .with_work(|| 1u64),
            )
        }
    }

    fn spec(name: &str, stages: u32) -> CampaignSpec<u64> {
        CampaignSpec::new(name).root(Box::new(Counter {
            label: name.into(),
            stages,
            acc: 0,
        }))
    }

    #[test]
    fn admission_enforces_registration_cap_and_budget() {
        let mut s: CampaignService<u64, _> = CampaignService::new(backend(4));
        let alice = TenantId::new("alice");
        // Unknown tenant refused.
        assert!(matches!(
            s.submit(&alice, spec("c", 1)),
            Err(AdmissionError::UnknownTenant(_))
        ));
        // In-flight cap enforced.
        s.register_tenant(alice.clone(), TenantQuota::unmetered(1));
        let h = s.submit(&alice, spec("c0", 1)).unwrap();
        assert!(matches!(
            s.submit(&alice, spec("c1", 1)),
            Err(AdmissionError::TooManyInFlight { limit: 1 })
        ));
        s.run();
        assert_eq!(s.status(&h), CampaignStatus::Completed);
        // Budget enforced: the finished campaign spent core-seconds, and a
        // 1e-6 budget is now exhausted.
        s.register_tenant(
            alice.clone(),
            TenantQuota::unmetered(8).with_budget(1e-6, f64::INFINITY),
        );
        match s.submit(&alice, spec("c2", 1)) {
            Err(AdmissionError::BudgetExhausted { resource, .. }) => {
                assert_eq!(resource, "core-seconds");
            }
            other => panic!("expected budget refusal, got {other:?}", other = other.map(|h| h.id())),
        }
    }

    #[test]
    fn many_campaigns_complete_with_correct_outcomes() {
        let mut s: CampaignService<u64, _> = CampaignService::new(backend(8));
        let t = TenantId::new("t");
        s.register_tenant(t.clone(), TenantQuota::unmetered(64));
        let handles: Vec<CampaignHandle> = (0..16)
            .map(|i| s.submit(&t, spec(&format!("c{i}"), 2 + (i % 3))).unwrap())
            .collect();
        s.run();
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(s.status(h), CampaignStatus::Completed);
            let r = s.take_result(h).expect("result waiting");
            assert_eq!(r.outcomes.len(), 1);
            assert_eq!(r.outcomes[0].1, u64::from(2 + (i as u32 % 3)));
            assert!(r.usage.core_seconds > 0.0);
            assert!(r.finished_at > r.submitted_at);
            assert!(s.take_result(h).is_none(), "result is taken once");
        }
        assert_eq!(s.campaigns_finished(), 16);
    }

    #[test]
    fn cancel_frees_the_tenants_slot_and_drops_completions() {
        let mut s: CampaignService<u64, _> = CampaignService::new(backend(2));
        let t = TenantId::new("t");
        s.register_tenant(t.clone(), TenantQuota::unmetered(1));
        let h = s.submit(&t, spec("doomed", 50)).unwrap();
        // A few steps in, cancel mid-campaign.
        for _ in 0..4 {
            s.step();
        }
        assert!(s.cancel(&h));
        assert!(!s.cancel(&h), "double cancel is a no-op");
        assert_eq!(s.status(&h), CampaignStatus::Canceled);
        // The slot is free again immediately.
        let h2 = s.submit(&t, spec("next", 1)).unwrap();
        s.run();
        assert_eq!(s.status(&h2), CampaignStatus::Completed);
        let r = s.take_result(&h).unwrap();
        assert_eq!(r.status, CampaignStatus::Canceled);
        assert!(r.outcomes.is_empty(), "canceled before any outcome");
    }

    #[test]
    fn weighted_tenants_get_more_slot_share_and_finish_sooner() {
        // Two tenants, weights 1 and 3, identical load on a 2-core
        // cluster. Stepping is demand-driven (a campaign is only stepped
        // when it can progress), so sustained weight enforcement comes
        // from the usage-rank boost layer: the heavy tenant's tasks jump
        // the shared queue until its delivered usage per unit weight
        // catches up, and its campaigns finish earlier on average.
        let mut s: CampaignService<u64, _> = CampaignService::new(backend(2));
        let light = TenantId::new("light");
        let heavy = TenantId::new("heavy");
        s.register_tenant(light.clone(), TenantQuota::unmetered(4).with_weight(1));
        s.register_tenant(heavy.clone(), TenantQuota::unmetered(4).with_weight(3));
        let mut light_handles = Vec::new();
        let mut heavy_handles = Vec::new();
        for i in 0..4 {
            light_handles.push(s.submit(&light, spec(&format!("l{i}"), 60)).unwrap());
            heavy_handles.push(s.submit(&heavy, spec(&format!("h{i}"), 60)).unwrap());
        }
        s.run();
        let mean_finish = |s: &mut CampaignService<u64, _>, handles: &[CampaignHandle]| {
            let sum: f64 = handles
                .iter()
                .map(|h| s.take_result(h).expect("completed").finished_at.as_secs_f64())
                .sum();
            sum / handles.len() as f64
        };
        let light_mean = mean_finish(&mut s, &light_handles);
        let heavy_mean = mean_finish(&mut s, &heavy_handles);
        assert!(
            heavy_mean < light_mean,
            "weight-3 tenant should finish sooner on average: heavy {heavy_mean} vs light {light_mean}"
        );
    }

    #[test]
    fn higher_priority_admission_preempts_lower_class_tasks() {
        let mut s: CampaignService<u64, _> = CampaignService::new(backend(1));
        let t = TenantId::new("t");
        s.register_tenant(t.clone(), TenantQuota::unmetered(8));
        let low = s.submit(&t, spec("low", 3)).unwrap();
        // Step until the low campaign has a task actually running.
        for _ in 0..2 {
            s.step();
        }
        let before = s.utilization().wasted_core_seconds;
        let high = s.submit(&t, spec("hi", 1).priority(10)).unwrap();
        let after = s.utilization().wasted_core_seconds;
        assert!(
            after >= before,
            "sweep may book waste, never unbook it"
        );
        s.run();
        // Both campaigns still complete: preemption delays, never kills.
        assert_eq!(s.status(&low), CampaignStatus::Completed);
        assert_eq!(s.status(&high), CampaignStatus::Completed);
        let r = s.take_result(&low).unwrap();
        assert_eq!(r.outcomes[0].1, 3);
    }

    #[test]
    fn single_tenant_boost_stays_zero() {
        let mut s: CampaignService<u64, _> = CampaignService::new(backend(4));
        let t = TenantId::new("solo");
        s.register_tenant(t.clone(), TenantQuota::unmetered(4));
        for i in 0..3 {
            s.submit(&t, spec(&format!("c{i}"), 4)).unwrap();
        }
        // Force a rebalance mid-run, then finish.
        while s.steps < REBALANCE_EVERY + 8 {
            if !s.step() {
                break;
            }
        }
        s.run();
        // With one tenant there is nobody strictly ahead: boost 0 for all.
        // (Indirect check: rebalance ran, and all campaigns completed with
        // correct outcomes — a nonzero boost would still complete, so the
        // real guarantee is the rank rule itself, unit-tested via ratios.)
        for cid in 0..s.campaigns_admitted() {
            let h = CampaignHandle {
                id: cid as u64,
                tenant: t.clone(),
            };
            assert_eq!(s.status(&h), CampaignStatus::Completed);
        }
    }
}
