//! The run report: the computational half of Table I.

use crate::registry::Registry;
use impress_pilot::{PhaseBreakdown, UtilizationReport};
use impress_json::json_struct;
use impress_sim::{SimDuration, SimTime};
use std::fmt;

/// Aggregate outcome of one coordinator run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Root pipelines submitted (Table I `# PL`).
    pub root_pipelines: usize,
    /// Sub-pipelines spawned by the decision engine (Table I `# Sub-PL`).
    pub sub_pipelines: usize,
    /// Pipelines that aborted.
    pub aborted_pipelines: usize,
    /// Tasks submitted across all pipelines.
    pub total_tasks: usize,
    /// Wall-clock (virtual) duration of the whole run.
    pub makespan: SimDuration,
    /// Mean CPU-core occupancy, 0–1 (Table I `CPU %`).
    pub cpu_utilization: f64,
    /// Mean GPU slot occupancy, 0–1 (Table I `GPUs %`, RP semantics).
    pub gpu_slot_utilization: f64,
    /// Mean GPU hardware-busy fraction, 0–1 (`nvidia-smi` semantics).
    pub gpu_hardware_utilization: f64,
    /// Task attempts the pilot resubmitted after a fault (0 on a clean run).
    pub task_retries: usize,
    /// Core-seconds spent on attempts that ultimately failed.
    pub wasted_core_seconds: f64,
    /// GPU-slot-seconds spent on attempts that ultimately failed.
    pub wasted_gpu_seconds: f64,
    /// Hedged duplicate attempts placed (0 when hedging is disabled).
    pub task_hedges: usize,
    /// Core-seconds burned by hedge-race losers (kept separate from
    /// `wasted_core_seconds`, which books only failed attempts).
    pub hedge_wasted_core_seconds: f64,
    /// GPU-slot-seconds burned by hedge-race losers.
    pub hedge_wasted_gpu_seconds: f64,
    /// Pilot phase breakdown (Fig. 5 annotations).
    pub phases: PhaseBreakdown,
}
json_struct!(RunReport {
    root_pipelines,
    sub_pipelines,
    aborted_pipelines,
    total_tasks,
    makespan,
    cpu_utilization,
    gpu_slot_utilization,
    gpu_hardware_utilization,
    task_retries,
    wasted_core_seconds,
    wasted_gpu_seconds,
    task_hedges,
    hedge_wasted_core_seconds,
    hedge_wasted_gpu_seconds,
    phases
});

impl RunReport {
    /// Assemble a report from the coordinator's ledgers.
    pub fn build(
        registry: &Registry,
        utilization: UtilizationReport,
        phases: PhaseBreakdown,
        now: SimTime,
        aborted: usize,
    ) -> RunReport {
        RunReport {
            root_pipelines: registry.root_count(),
            sub_pipelines: registry.sub_count(),
            aborted_pipelines: aborted,
            total_tasks: registry.total_tasks(),
            makespan: now.since(SimTime::ZERO),
            cpu_utilization: utilization.cpu,
            gpu_slot_utilization: utilization.gpu_slot,
            gpu_hardware_utilization: utilization.gpu_hardware,
            task_retries: utilization.retries,
            wasted_core_seconds: utilization.wasted_core_seconds,
            wasted_gpu_seconds: utilization.wasted_gpu_seconds,
            task_hedges: utilization.hedges,
            hedge_wasted_core_seconds: utilization.hedge_wasted_core_seconds,
            hedge_wasted_gpu_seconds: utilization.hedge_wasted_gpu_seconds,
            phases,
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipelines: {} root, {} sub, {} aborted; tasks: {}",
            self.root_pipelines, self.sub_pipelines, self.aborted_pipelines, self.total_tasks
        )?;
        writeln!(
            f,
            "makespan: {} | CPU {:.1}% | GPU {:.1}% (slot) / {:.1}% (hw)",
            self.makespan,
            self.cpu_utilization * 100.0,
            self.gpu_slot_utilization * 100.0,
            self.gpu_hardware_utilization * 100.0
        )?;
        // Only faulted runs print the resilience line, so clean-run report
        // text (PAPER_REPORT.md) is unchanged.
        if self.task_retries > 0 || self.wasted_core_seconds > 0.0 || self.wasted_gpu_seconds > 0.0
        {
            writeln!(
                f,
                "faults: {} retries | wasted {:.0} core-s / {:.0} GPU-s",
                self.task_retries, self.wasted_core_seconds, self.wasted_gpu_seconds
            )?;
        }
        // Likewise, only hedging runs print the hedge line.
        if self.task_hedges > 0 {
            writeln!(
                f,
                "hedges: {} placed | hedge waste {:.0} core-s / {:.0} GPU-s",
                self.task_hedges, self.hedge_wasted_core_seconds, self.hedge_wasted_gpu_seconds
            )?;
        }
        write!(
            f,
            "phases: bootstrap {} | exec setup {} | running {}",
            self.phases.bootstrap, self.phases.exec_setup_total, self.phases.running_total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_pulls_registry_counts() {
        let mut reg = Registry::new();
        let root = reg.register("r".into(), None, SimTime::ZERO);
        reg.register("s".into(), Some(root), SimTime::ZERO);
        reg.note_stage_submitted(root, 5);
        let report = RunReport::build(
            &reg,
            UtilizationReport {
                cpu: 0.5,
                gpu_slot: 0.25,
                gpu_hardware: 0.1,
                makespan: SimDuration::from_secs(10),
                tasks: 5,
                retries: 0,
                wasted_core_seconds: 0.0,
                wasted_gpu_seconds: 0.0,
                hedges: 0,
                hedge_wasted_core_seconds: 0.0,
                hedge_wasted_gpu_seconds: 0.0,
            },
            PhaseBreakdown::default(),
            SimTime::from_micros(10_000_000),
            1,
        );
        assert_eq!(report.root_pipelines, 1);
        assert_eq!(report.sub_pipelines, 1);
        assert_eq!(report.total_tasks, 5);
        assert_eq!(report.aborted_pipelines, 1);
        assert_eq!(report.makespan, SimDuration::from_secs(10));
        assert_eq!(report.task_retries, 0);
    }

    #[test]
    fn display_is_compact_and_percentaged() {
        let reg = Registry::new();
        let report = RunReport::build(
            &reg,
            UtilizationReport {
                cpu: 0.883,
                gpu_slot: 0.61,
                gpu_hardware: 0.2,
                makespan: SimDuration::from_hours(38),
                tasks: 0,
                retries: 0,
                wasted_core_seconds: 0.0,
                wasted_gpu_seconds: 0.0,
                hedges: 0,
                hedge_wasted_core_seconds: 0.0,
                hedge_wasted_gpu_seconds: 0.0,
            },
            PhaseBreakdown::default(),
            SimTime::ZERO + SimDuration::from_hours(38),
            0,
        );
        let s = report.to_string();
        assert!(s.contains("CPU 88.3%"), "{s}");
        assert!(s.contains("GPU 61.0% (slot)"), "{s}");
        assert!(s.contains("38.00h"), "{s}");
        assert!(!s.contains("faults:"), "clean runs omit the fault line: {s}");
    }

    #[test]
    fn faulted_runs_add_a_resilience_line() {
        let reg = Registry::new();
        let report = RunReport::build(
            &reg,
            UtilizationReport {
                cpu: 0.5,
                gpu_slot: 0.5,
                gpu_hardware: 0.3,
                makespan: SimDuration::from_hours(1),
                tasks: 10,
                retries: 3,
                wasted_core_seconds: 120.0,
                wasted_gpu_seconds: 60.0,
                hedges: 0,
                hedge_wasted_core_seconds: 0.0,
                hedge_wasted_gpu_seconds: 0.0,
            },
            PhaseBreakdown::default(),
            SimTime::ZERO + SimDuration::from_hours(1),
            0,
        );
        let s = report.to_string();
        assert!(s.contains("faults: 3 retries"), "{s}");
        assert!(s.contains("wasted 120 core-s / 60 GPU-s"), "{s}");
    }
}
