//! The step protocol between a pipeline and the coordinator, and the buffer
//! that collects a stage's in-flight task completions.

use impress_pilot::{Completion, TaskDescription, TaskId};

/// What a pipeline asks the coordinator to do next.
pub enum Step<O> {
    /// Submit these tasks as the next stage; call back when *all* complete.
    /// A stage is "a series of … one or more computing tasks" (§II-C).
    Submit(Vec<TaskDescription>),
    /// The pipeline is finished with this outcome.
    Complete(O),
    /// The pipeline terminated abnormally (e.g. retry budget exhausted with
    /// no viable candidate).
    Abort(String),
}

impl<O> Step<O> {
    /// Convenience: a single-task stage.
    pub fn run(task: TaskDescription) -> Self {
        Step::Submit(vec![task])
    }
}

impl<O> std::fmt::Debug for Step<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Step::Submit(tasks) => f
                .debug_struct("Step::Submit")
                .field("tasks", &tasks.len())
                .finish(),
            Step::Complete(_) => f.write_str("Step::Complete(..)"),
            Step::Abort(msg) => f.debug_tuple("Step::Abort").field(msg).finish(),
        }
    }
}

/// Collects completions for one in-flight stage until all of its tasks have
/// reported, preserving **submission order** regardless of completion order
/// (stages must see deterministic inputs even on the threaded backend).
pub struct StageBuffer {
    expected: Vec<TaskId>,
    received: Vec<Option<Completion>>,
}

impl StageBuffer {
    /// A buffer expecting completions for exactly `expected`.
    pub fn new(expected: Vec<TaskId>) -> Self {
        assert!(!expected.is_empty(), "a stage needs at least one task");
        let n = expected.len();
        StageBuffer {
            expected,
            received: (0..n).map(|_| None).collect(),
        }
    }

    /// Whether `id` belongs to this stage.
    pub fn expects(&self, id: TaskId) -> bool {
        self.expected.contains(&id)
    }

    /// Record a completion. Returns the full, submission-ordered batch once
    /// the last task reports; `None` while tasks are still outstanding.
    /// Panics on a completion for a task this stage never submitted, or on
    /// a duplicate.
    pub fn record(&mut self, c: Completion) -> Option<Vec<Completion>> {
        let idx = self
            .expected
            .iter()
            .position(|&t| t == c.task)
            .unwrap_or_else(|| panic!("{}: completion does not belong to this stage", c.task));
        assert!(
            self.received[idx].is_none(),
            "{}: duplicate completion",
            c.task
        );
        self.received[idx] = Some(c);
        if self.received.iter().all(Option::is_some) {
            Some(
                self.received
                    .drain(..)
                    .map(|o| o.expect("all present"))
                    .collect(),
            )
        } else {
            None
        }
    }

    /// Tasks still outstanding.
    pub fn outstanding(&self) -> usize {
        self.received.iter().filter(|o| o.is_none()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_sim::SimTime;

    fn completion(id: u64) -> Completion {
        Completion {
            task: TaskId(id),
            name: format!("t{id}"),
            tag: String::new(),
            result: Ok(None),
            started: SimTime::ZERO,
            finished: SimTime::ZERO,
            attempts: 0,
            hedged: false,
        }
    }

    #[test]
    fn batch_released_only_when_full_in_submission_order() {
        let mut b = StageBuffer::new(vec![TaskId(1), TaskId(2), TaskId(3)]);
        assert!(b.record(completion(3)).is_none());
        assert_eq!(b.outstanding(), 2);
        assert!(b.record(completion(1)).is_none());
        let batch = b.record(completion(2)).expect("complete");
        let ids: Vec<u64> = batch.iter().map(|c| c.task.0).collect();
        assert_eq!(ids, vec![1, 2, 3], "submission order, not completion order");
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn foreign_completion_panics() {
        let mut b = StageBuffer::new(vec![TaskId(1)]);
        let _ = b.record(completion(9));
    }

    #[test]
    #[should_panic(expected = "duplicate completion")]
    fn duplicate_completion_panics() {
        let mut b = StageBuffer::new(vec![TaskId(1), TaskId(2)]);
        let _ = b.record(completion(1));
        let _ = b.record(completion(1));
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_stage_rejected() {
        let _ = StageBuffer::new(vec![]);
    }

    #[test]
    fn expects_is_accurate() {
        let b = StageBuffer::new(vec![TaskId(5)]);
        assert!(b.expects(TaskId(5)));
        assert!(!b.expects(TaskId(6)));
    }
}
