//! A recursive-descent JSON parser over UTF-8 text.
//!
//! Accepts exactly RFC 8259 JSON (no comments, no trailing commas). Errors
//! carry the byte offset of the offending token. Nesting depth is capped so
//! adversarial input cannot overflow the stack.

use crate::value::{Json, JsonError, Number};

const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document. Trailing whitespace is allowed; any other
/// trailing content is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::at("trailing content after document", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::at(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at("nesting too deep", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(JsonError::at(
                format!("unexpected byte `{}`", c as char),
                self.pos,
            )),
            None => Err(JsonError::at("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(JsonError::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(JsonError::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(JsonError::at("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(JsonError::at("raw control character in string", self.pos));
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar (input is a &str, so slicing on
                    // a char boundary found via the leading byte is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .peek()
                        .map(|b| (b & 0xC0) == 0x80)
                        .unwrap_or(false)
                    {
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| JsonError::at("invalid UTF-8", start))?;
                    out.push_str(text);
                }
            }
        }
    }

    /// Parse the 4 hex digits after `\u` (the `u` is already consumed),
    /// combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(JsonError::at("invalid low surrogate", self.pos));
                }
                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(code)
                    .ok_or_else(|| JsonError::at("invalid surrogate pair", self.pos));
            }
            return Err(JsonError::at("unpaired high surrogate", self.pos));
        }
        if (0xDC00..0xE000).contains(&hi) {
            // A low surrogate can only legally follow a high surrogate (the
            // pair is consumed as a unit above). Reaching one here means the
            // input leads with the low half; name the defect instead of
            // falling through to `char::from_u32`, which would mask it as a
            // generic escape failure.
            return Err(JsonError::at("unpaired low surrogate", self.pos));
        }
        char::from_u32(hi).ok_or_else(|| JsonError::at("invalid \\u escape", self.pos))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(JsonError::at("expected 4 hex digits", self.pos)),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        let num = if is_float {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| JsonError::at("invalid number", start))?,
            )
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Negative integer; `-0` normalizes to U64(0).
            if stripped == "0" {
                Number::U64(0)
            } else {
                Number::I64(
                    text.parse::<i64>()
                        .map_err(|_| JsonError::at("integer out of range", start))?,
                )
            }
        } else {
            Number::U64(
                text.parse::<u64>()
                    .map_err(|_| JsonError::at("integer out of range", start))?,
            )
        };
        Ok(Json::Num(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode(doc: &str) -> Result<String, JsonError> {
        parse(doc).map(|v| match v {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        })
    }

    fn expect_error(doc: &str, needle: &str) {
        let err = decode(doc).expect_err(&format!("{doc:?} must not decode"));
        assert!(
            err.to_string().contains(needle),
            "{doc:?}: expected error containing `{needle}`, got `{err}`"
        );
    }

    #[test]
    fn simple_escapes_decode() {
        assert_eq!(
            decode("\"a\\\"b\\\\c\\/d\\ne\\tf\\rg\\bh\\fi\"").unwrap(),
            "a\"b\\c/d\ne\tf\rg\u{08}h\u{0c}i"
        );
    }

    #[test]
    fn bmp_unicode_escapes_decode() {
        let doc = "\"\\u0041\\u00e9\\u4e16\\u0000\\uFFFD\\uabCd\"";
        assert_eq!(
            decode(doc).unwrap(),
            "A\u{e9}\u{4e16}\u{0}\u{FFFD}\u{abcd}",
            "escapes for ASCII, Latin-1, CJK, NUL, the replacement char, and \
             mixed-case hex digits all decode"
        );
        // Raw (unescaped) multi-byte UTF-8 passes through untouched.
        assert_eq!(decode("\"A\u{e9}\u{4e16}\"").unwrap(), "A\u{e9}\u{4e16}");
    }

    #[test]
    fn surrogate_pairs_decode_to_supplementary_planes() {
        // U+10000 (lowest astral), U+1F600 (emoji), U+10FFFF (highest scalar).
        assert_eq!(decode("\"\\uD800\\uDC00\"").unwrap(), "\u{10000}");
        assert_eq!(decode("\"\\uD83D\\uDE00\"").unwrap(), "\u{1F600}");
        assert_eq!(decode("\"\\uDBFF\\uDFFF\"").unwrap(), "\u{10FFFF}");
    }

    #[test]
    fn unpaired_low_surrogate_is_a_typed_error() {
        // The full low-surrogate range, alone or surrounded by ordinary
        // text: never a panic, never garbage output, always the named error.
        for doc in [
            "\"\\uDC00\"",
            "\"\\uDFFF\"",
            "\"\\uDD41 tail\"",
            "\"lead \\uDE02\"",
        ] {
            expect_error(doc, "unpaired low surrogate");
        }
    }

    #[test]
    fn unpaired_high_surrogate_is_a_typed_error() {
        for doc in [
            "\"\\uD800\"",      // at end of string
            "\"\\uDBFF x\"",    // followed by ordinary text
            "\"\\uD800\\n\"", // followed by a non-\u escape
            "\"\\uD834\\t\"",
        ] {
            expect_error(doc, "unpaired high surrogate");
        }
    }

    #[test]
    fn low_surrogate_out_of_range_after_high_is_rejected() {
        // A second \u escape follows the high surrogate but encodes
        // something outside the low-surrogate range.
        for doc in [
            "\"\\uD800\\u0041\"", // ordinary BMP scalar in the low slot
            "\"\\uD800\\uD800\"", // a second high surrogate
            "\"\\uD800\\uE000\"", // first scalar past the low range
        ] {
            expect_error(doc, "invalid low surrogate");
        }
    }

    #[test]
    fn truncated_unicode_escapes_are_rejected() {
        for doc in [
            "\"\\u\"",           // no digits
            "\"\\u00\"",         // two digits
            "\"\\uD8\"",         // truncated high surrogate
            "\"\\uD800\\uDC\"", // truncated low half of a pair
            "\"\\uD800\\u\"",  // pair promised, no digits delivered
        ] {
            expect_error(doc, "expected 4 hex digits");
        }
    }

    #[test]
    fn non_hex_digits_in_escape_are_rejected() {
        for doc in ["\"\\uZZZZ\"", "\"\\u00G0\"", "\"\\u-123\""] {
            expect_error(doc, "expected 4 hex digits");
        }
    }

    #[test]
    fn unknown_escape_and_bare_backslash_are_rejected() {
        expect_error("\"\\x41\"", "invalid escape");
        expect_error("\"\\", "invalid escape");
    }

    #[test]
    fn surrogate_errors_surface_from_embedded_strings() {
        let doc = "{\"ok\": \"fine\", \"bad\": \"\\uDC00\"}";
        let err = parse(doc).expect_err("embedded unpaired low surrogate");
        assert!(err.to_string().contains("unpaired low surrogate"), "{err}");
    }

    #[test]
    fn decoded_surrogate_pairs_round_trip_through_serialization() {
        let parsed = parse("\"\\uD83D\\uDE00!\"").unwrap();
        assert_eq!(parsed, Json::Str("\u{1F600}!".into()));
        let text = crate::to_string(&parsed);
        assert_eq!(parse(&text).unwrap(), parsed);
    }
}
