//! Zero-allocation serialization fast path.
//!
//! [`ToJsonBuf`] writes a value's compact JSON text directly into a caller
//! supplied (and typically reused) `String`, skipping the intermediate
//! [`Json`] tree that [`ToJson`](crate::ToJson) builds. The bytes produced
//! are **identical** to `to_string(&value.to_json())` — both paths share
//! the number and string writers below — so checksums computed over either
//! representation agree. Hot paths that serialize per-record (the
//! write-ahead journal, trace exporters, study bins) use this to reach
//! zero heap allocations per record once the buffer is warm: integers and
//! floats are formatted through `core::fmt` (stack buffers, no heap), and
//! strings are escaped char-by-char into the existing capacity.

use crate::value::{Json, Number};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Serialize directly into a reused buffer, compactly.
///
/// Implementations must produce exactly the bytes of
/// `crate::to_string(&self.to_json())`; the [`json_struct!`](crate::json_struct)
/// and [`json_enum!`](crate::json_enum) macros generate conforming impls
/// alongside the tree-building ones.
pub trait ToJsonBuf {
    /// Append `self`'s compact JSON text to `out`.
    fn write_json(&self, out: &mut String);
}

/// Append `value`'s compact JSON text to `out` (the buffer-reusing analog
/// of [`to_string`](crate::to_string)).
pub fn write_json(out: &mut String, value: &impl ToJsonBuf) {
    value.write_json(out);
}

pub(crate) fn write_u64(out: &mut String, u: u64) {
    let _ = write!(out, "{u}");
}

pub(crate) fn write_i64(out: &mut String, i: i64) {
    let _ = write!(out, "{i}");
}

pub(crate) fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // serde_json's convention: non-finite floats become null.
        out.push_str("null");
        return;
    }
    // Rust's shortest round-trip formatting, with a `.0` re-attached for
    // integral values so the token stays float-typed on re-parse.
    let start = out.len();
    let _ = write!(out, "{f}");
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

pub(crate) fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(u) => write_u64(out, u),
        Number::I64(i) => write_i64(out, i),
        Number::F64(f) => write_f64(out, f),
    }
}

fn escape_char(out: &mut String, c: char) {
    match c {
        '"' => out.push_str("\\\""),
        '\\' => out.push_str("\\\\"),
        '\n' => out.push_str("\\n"),
        '\r' => out.push_str("\\r"),
        '\t' => out.push_str("\\t"),
        '\u{08}' => out.push_str("\\b"),
        '\u{0c}' => out.push_str("\\f"),
        c if (c as u32) < 0x20 => {
            let _ = write!(out, "\\u{:04x}", c as u32);
        }
        c => out.push(c),
    }
}

pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        escape_char(out, c);
    }
    out.push('"');
}

impl ToJsonBuf for Json {
    fn write_json(&self, out: &mut String) {
        crate::ser::write_value(out, self, None);
    }
}

impl<T: ToJsonBuf + ?Sized> ToJsonBuf for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJsonBuf + ?Sized> ToJsonBuf for Box<T> {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl ToJsonBuf for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJsonBuf for str {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

impl ToJsonBuf for String {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

impl ToJsonBuf for char {
    fn write_json(&self, out: &mut String) {
        out.push('"');
        escape_char(out, *self);
        out.push('"');
    }
}

macro_rules! impl_buf_uint {
    ($($ty:ty),+) => {$(
        impl ToJsonBuf for $ty {
            fn write_json(&self, out: &mut String) {
                write_u64(out, u64::from(*self));
            }
        }
    )+};
}
impl_buf_uint!(u8, u16, u32, u64);

macro_rules! impl_buf_int {
    ($($ty:ty),+) => {$(
        impl ToJsonBuf for $ty {
            fn write_json(&self, out: &mut String) {
                write_i64(out, i64::from(*self));
            }
        }
    )+};
}
impl_buf_int!(i8, i16, i32, i64);

impl ToJsonBuf for usize {
    fn write_json(&self, out: &mut String) {
        write_u64(out, *self as u64);
    }
}

impl ToJsonBuf for isize {
    fn write_json(&self, out: &mut String) {
        write_i64(out, *self as i64);
    }
}

impl ToJsonBuf for f64 {
    fn write_json(&self, out: &mut String) {
        write_f64(out, *self);
    }
}

impl ToJsonBuf for f32 {
    fn write_json(&self, out: &mut String) {
        // Widen first: shortest-round-trip text of the f64 value, exactly
        // like the tree path (`f32::to_json` stores an `f64`).
        write_f64(out, f64::from(*self));
    }
}

impl<T: ToJsonBuf> ToJsonBuf for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

fn write_seq<'a, T: ToJsonBuf + 'a>(out: &mut String, items: impl Iterator<Item = &'a T>) {
    out.push('[');
    let mut first = true;
    for item in items {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        item.write_json(out);
    }
    out.push(']');
}

impl<T: ToJsonBuf> ToJsonBuf for Vec<T> {
    fn write_json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: ToJsonBuf> ToJsonBuf for [T] {
    fn write_json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: ToJsonBuf, const N: usize> ToJsonBuf for [T; N] {
    fn write_json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<A: ToJsonBuf, B: ToJsonBuf> ToJsonBuf for (A, B) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

impl<V: ToJsonBuf> ToJsonBuf for BTreeMap<String, V> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        for (k, v) in self {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            write_escaped(out, k);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}

impl<V: ToJsonBuf> ToJsonBuf for HashMap<String, V> {
    fn write_json(&self, out: &mut String) {
        // Sort keys so HashMap iteration order cannot leak into the output
        // (matching the tree path). The key vector allocates; ordered maps
        // on hot paths should prefer `BTreeMap` or a struct.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        out.push('{');
        let mut first = true;
        for k in keys {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            write_escaped(out, k);
            out.push(':');
            self[k].write_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json_enum, json_struct, to_string, ToJson};

    /// The invariant everything rests on: fast-path bytes == tree-path
    /// bytes, for any value.
    fn assert_parity<T: ToJson + ToJsonBuf>(v: &T) {
        let tree = to_string(v);
        let mut buf = String::from("seed-prefix");
        v.write_json(&mut buf);
        assert_eq!(&buf["seed-prefix".len()..], tree, "fast path diverged");
    }

    #[test]
    fn scalars_match_the_tree_path_byte_for_byte() {
        assert_parity(&true);
        assert_parity(&false);
        assert_parity(&0u64);
        assert_parity(&u64::MAX);
        assert_parity(&-1i64);
        assert_parity(&i64::MIN);
        assert_parity(&42usize);
        assert_parity(&-9isize);
        assert_parity(&7u8);
        assert_parity(&-3i16);
    }

    #[test]
    fn floats_match_including_integral_shortest_roundtrip_and_nonfinite() {
        for f in [
            0.0f64,
            -0.0,
            3.0,
            0.1,
            0.1875,
            -2.5e-308,
            1e300,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            123456789.0,
        ] {
            assert_parity(&f);
        }
        assert_parity(&0.25f32);
        assert_parity(&3.0f32);
        assert_parity(&f32::NAN);
    }

    #[test]
    fn strings_match_across_the_whole_escape_set() {
        for s in [
            "",
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "newline\n tab\t return\r",
            "backspace\u{08} formfeed\u{0c}",
            "control\u{01}\u{1f}",
            "unicode: héllo ⚙ 日本語",
        ] {
            assert_parity(&s.to_string());
        }
        assert_parity(&'x');
        assert_parity(&'"');
        assert_parity(&'\u{02}');
    }

    #[test]
    fn containers_match_including_empties() {
        assert_parity(&Vec::<u64>::new());
        assert_parity(&vec![1u64, 2, 3]);
        assert_parity(&[0.5f64, 1.5]);
        assert_parity(&(Some(1u32), Option::<String>::None));
        assert_parity(&("k".to_string(), 2.0f64));
        let mut bt = std::collections::BTreeMap::new();
        bt.insert("b".to_string(), 1u64);
        bt.insert("a".to_string(), 2u64);
        assert_parity(&bt);
        let mut hm = std::collections::HashMap::new();
        hm.insert("z".to_string(), 0.5f64);
        hm.insert("a".to_string(), -1.0);
        assert_parity(&hm);
        assert_parity(&std::collections::HashMap::<String, bool>::new());
    }

    #[test]
    fn json_values_match_through_the_compact_writer() {
        let doc = Json::object()
            .field("nested", Json::array(vec![Json::Null, Json::Bool(true)]))
            .field("num", 0.1875)
            .field("text", "esc\"aped\n")
            .field("empty_obj", Json::object().build())
            .field("empty_arr", Json::array(Vec::<Json>::new()))
            .build();
        assert_parity(&doc);
    }

    struct Inner {
        label: String,
        weight: f64,
    }
    json_struct!(Inner { label, weight });

    struct Wrapper(u64);
    json_struct!(Wrapper(u64));

    enum Kind {
        Unit,
        Single(Inner),
        Pair(u64, String),
        Fields { id: u64, optional: Option<f64> },
    }
    json_enum!(Kind {
        Unit,
        Single(inner),
        Pair(a, b),
        Fields { id, optional }
    });

    #[test]
    fn macro_generated_impls_match_for_every_shape() {
        assert_parity(&Inner {
            label: "a \"quoted\" name".into(),
            weight: 3.0,
        });
        assert_parity(&Wrapper(99));
        assert_parity(&Kind::Unit);
        assert_parity(&Kind::Single(Inner {
            label: String::new(),
            weight: f64::NAN,
        }));
        assert_parity(&Kind::Pair(7, "x\ty".into()));
        assert_parity(&Kind::Fields {
            id: 0,
            optional: None,
        });
        assert_parity(&Kind::Fields {
            id: u64::MAX,
            optional: Some(0.5),
        });
        assert_parity(&vec![Kind::Unit, Kind::Pair(1, "s".into())]);
    }
}
