//! # impress-json
//!
//! A zero-dependency JSON library for the IMPRESS reproduction's hermetic
//! build. The workspace must compile and test on machines with **no package
//! registry access** (leadership-class HPC login nodes, air-gapped CI), so
//! `serde`/`serde_json` are replaced by this small, fully in-repo stack:
//!
//! * [`Json`] — a tagged value enum; objects preserve insertion order, so
//!   serialization is byte-stable across runs.
//! * [`Number`] — exact `u64`/`i64` integers plus `f64`, mirroring
//!   `serde_json`'s arithmetic model so existing artifacts round-trip.
//! * [`parse`] — a recursive-descent parser with precise error offsets.
//! * [`to_string`] / [`to_string_pretty`] — compact and 2-space-indented
//!   serializers.
//! * [`ToJson`] / [`FromJson`] — conversion traits; the [`json_struct!`] and
//!   [`json_enum!`] macros generate the short hand-written impls that replace
//!   `#[derive(Serialize, Deserialize)]`.
//! * [`ToJsonBuf`] / [`write_json`] — the zero-alloc fast path: serialize
//!   straight into a reused buffer, skipping the `Json` tree, with bytes
//!   identical to `to_string(&value.to_json())` (the macros generate these
//!   impls too).
//!
//! Enum representation matches serde's externally-tagged default:
//! unit variants are strings (`"Fifo"`), newtype variants are
//! `{"Variant": value}`, tuple variants are `{"Variant": [..]}` and struct
//! variants are `{"Variant": {..}}` — so JSON written by earlier builds of
//! this workspace parses unchanged.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod buf;
mod convert;
mod de;
mod ser;
mod value;

#[macro_use]
mod macros;

pub use buf::{write_json, ToJsonBuf};
pub use convert::{from_field, from_str, FromJson, ToJson};
pub use de::parse;
pub use ser::{to_string, to_string_pretty};
pub use value::{Json, JsonError, Number, ObjBuilder};
