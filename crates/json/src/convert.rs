//! `ToJson` / `FromJson` conversion traits and impls for std types.

use crate::value::{Json, JsonError, Number};
use std::collections::{BTreeMap, HashMap};

/// Conversion into a [`Json`] tree (the replacement for `serde::Serialize`).
pub trait ToJson {
    /// Build the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion out of a [`Json`] tree (the replacement for
/// `serde::Deserialize`).
pub trait FromJson: Sized {
    /// Extract `Self`, reporting a descriptive error on shape mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Parse text and convert in one step (the `serde_json::from_str` analog).
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&crate::parse(text)?)
}

/// Extract a typed field from an object node. Missing keys read as `null`,
/// which lets `Option<T>` fields default to `None`.
pub fn from_field<T: FromJson>(v: &Json, key: &str) -> Result<T, JsonError> {
    match v {
        Json::Object(_) => {
            T::from_json(v.get(key).unwrap_or(&Json::Null)).map_err(|e| e.in_field(key))
        }
        other => Err(JsonError::msg(format!(
            "expected object with field `{key}`, got {}",
            other.type_name()
        ))),
    }
}

fn type_err<T>(expected: &str, got: &Json) -> Result<T, JsonError> {
    Err(JsonError::msg(format!(
        "expected {expected}, got {}",
        got.type_name()
    )))
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().map_or_else(|| type_err("bool", v), Ok)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map_or_else(|| type_err("string", v), |s| Ok(s.to_string()))
    }
}

impl ToJson for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for char {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => type_err("single-character string", v),
        }
    }
}

macro_rules! impl_json_uint {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Num(Number::U64(u64::from(*self)))
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v.as_u64().map(<$ty>::try_from) {
                    Some(Ok(n)) => Ok(n),
                    _ => type_err(concat!(stringify!($ty), " integer"), v),
                }
            }
        }
    )+};
}
impl_json_uint!(u8, u16, u32, u64);

macro_rules! impl_json_int {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                let i = i64::from(*self);
                if i >= 0 {
                    Json::Num(Number::U64(i as u64))
                } else {
                    Json::Num(Number::I64(i))
                }
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v {
                    Json::Num(n) => match n.as_i64().map(<$ty>::try_from) {
                        Some(Ok(x)) => Ok(x),
                        _ => type_err(concat!(stringify!($ty), " integer"), v),
                    },
                    _ => type_err("integer", v),
                }
            }
        }
    )+};
}
impl_json_int!(i8, i16, i32, i64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Num(Number::U64(*self as u64))
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_u64().map(usize::try_from) {
            Some(Ok(n)) => Ok(n),
            _ => type_err("usize integer", v),
        }
    }
}

impl ToJson for isize {
    fn to_json(&self) -> Json {
        (*self as i64).to_json()
    }
}

impl FromJson for isize {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        i64::from_json(v).and_then(|i| {
            isize::try_from(i).map_err(|_| JsonError::msg("isize out of range"))
        })
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(Number::F64(*self))
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().map_or_else(|| type_err("number", v), Ok)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(Number::F64(f64::from(*self)))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_array() {
            Some(items) => items.iter().map(T::from_json).collect(),
            None => type_err("array", v),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(|v| v.to_json()).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}

impl<T: FromJson + std::fmt::Debug, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = Vec::<T>::from_json(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| JsonError::msg(format!("expected array of length {N}, got {n}")))
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => type_err("2-element array", v),
        }
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_object() {
            Some(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v).map_err(|e| e.in_field(k))?)))
                .collect(),
            None => type_err("object", v),
        }
    }
}

impl<V: ToJson> ToJson for HashMap<String, V> {
    fn to_json(&self) -> Json {
        // Sort keys so HashMap iteration order cannot leak into the output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Json::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_json()))
                .collect(),
        )
    }
}

impl<V: FromJson> FromJson for HashMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_object() {
            Some(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v).map_err(|e| e.in_field(k))?)))
                .collect(),
            None => type_err("object", v),
        }
    }
}
