//! The JSON value model.

use std::fmt;

/// A JSON number.
///
/// Integers are kept exact (`u64`/`i64`) rather than coerced to `f64`, so
/// values like `SimTime::MAX.as_micros()` survive a round trip. Equality is
/// *numeric*: `Number::U64(1) == Number::F64(1.0)`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (parsers only produce this for values < 0).
    I64(i64),
    /// A floating-point number. Never NaN/inf (those serialize as `null`).
    F64(f64),
}

impl Number {
    /// The value as an `f64` (lossy for very large integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(u) => u as f64,
            Number::I64(i) => i as f64,
            Number::F64(f) => f,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(u) => Some(u),
            Number::I64(i) => u64::try_from(i).ok(),
            Number::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as an `i64`, if it fits.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U64(u) => i64::try_from(u).ok(),
            Number::I64(i) => Some(i),
            Number::F64(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self, other) {
            (Number::U64(a), Number::U64(b)) => a == b,
            (Number::I64(a), Number::I64(b)) => a == b,
            (Number::U64(a), Number::I64(b)) | (Number::I64(b), Number::U64(a)) => {
                u64::try_from(*b).map(|b| *a == b).unwrap_or(false)
            }
            // At least one side is a float: compare numerically.
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// A JSON document node.
///
/// Objects are ordered `(key, value)` pairs: serialization preserves the
/// order keys were inserted in, which keeps emitted artifacts byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with stable (insertion) key order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Start building an object with [`ObjBuilder`].
    pub fn object() -> ObjBuilder {
        ObjBuilder(Vec::new())
    }

    /// Build an array by converting each item with [`crate::ToJson`].
    pub fn array<T: crate::ToJson>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Array(items.into_iter().map(|v| v.to_json()).collect())
    }

    /// Object field lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup (`None` for non-arrays / out of range).
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// A short name for the node's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::ser::json_to_string(self))
    }
}

/// Fluent object construction: `Json::object().field("k", 1).build()`.
#[derive(Debug, Default)]
pub struct ObjBuilder(pub(crate) Vec<(String, Json)>);

impl ObjBuilder {
    /// Append a field, converting the value with [`crate::ToJson`].
    pub fn field(mut self, key: &str, value: impl crate::ToJson) -> Self {
        self.0.push((key.to_string(), value.to_json()));
        self
    }

    /// Finish into a [`Json::Object`].
    pub fn build(self) -> Json {
        Json::Object(self.0)
    }
}

impl From<ObjBuilder> for Json {
    fn from(b: ObjBuilder) -> Json {
        b.build()
    }
}

/// Error produced by parsing or typed extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// Byte offset in the source text, when the error came from the parser.
    offset: Option<usize>,
}

impl JsonError {
    /// A free-form conversion/extraction error.
    pub fn msg(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }

    /// A parse error at a byte offset.
    pub fn at(message: impl Into<String>, offset: usize) -> JsonError {
        JsonError {
            message: message.into(),
            offset: Some(offset),
        }
    }

    /// Wrap this error with the field it occurred in.
    pub fn in_field(self, key: &str) -> JsonError {
        JsonError {
            message: format!("field `{key}`: {}", self.message),
            offset: self.offset,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} (at byte {off})", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for JsonError {}
