//! Declarative replacements for `#[derive(Serialize, Deserialize)]`.
//!
//! Each former derive site becomes a one-line macro invocation listing the
//! fields (or variants) next to the type definition:
//!
//! ```
//! use impress_json::{json_enum, json_struct};
//!
//! pub struct Summary { pub n: usize, pub mean: f64 }
//! json_struct!(Summary { n, mean });
//!
//! pub struct Micros(u64);
//! json_struct!(Micros(u64));
//!
//! pub enum Policy { Fifo, Backfill }
//! json_enum!(Policy { Fifo, Backfill });
//! ```
//!
//! The generated representation matches what serde's default derive produced
//! for the same types, so artifacts written by pre-hermetic builds still
//! parse: structs are objects keyed by field name (declaration order),
//! newtype structs are transparent, and enums are externally tagged.

/// Implement [`ToJson`](crate::ToJson), [`FromJson`](crate::FromJson) and
/// the zero-alloc [`ToJsonBuf`](crate::ToJsonBuf) fast path for a struct
/// with named fields, or transparently for a newtype struct.
///
/// Missing keys on input read as `null`, so `Option<T>` fields tolerate
/// older artifacts that omitted them.
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Object(vec![
                    $( (stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)) ),+
                ])
            }
        }
        impl $crate::ToJsonBuf for $ty {
            fn write_json(&self, out: &mut ::std::string::String) {
                out.push('{');
                let mut _first = true;
                $(
                    if !::std::mem::take(&mut _first) {
                        out.push(',');
                    }
                    out.push_str(concat!("\"", stringify!($field), "\":"));
                    $crate::ToJsonBuf::write_json(&self.$field, out);
                )+
                out.push('}');
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok($ty {
                    $( $field: $crate::from_field(v, stringify!($field))? ),+
                })
            }
        }
    };
    ($ty:ident ( $inner:ty )) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::ToJson::to_json(&self.0)
            }
        }
        impl $crate::ToJsonBuf for $ty {
            fn write_json(&self, out: &mut ::std::string::String) {
                $crate::ToJsonBuf::write_json(&self.0, out);
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok($ty(<$inner as $crate::FromJson>::from_json(v)?))
            }
        }
    };
}

/// Implement [`ToJson`](crate::ToJson), [`FromJson`](crate::FromJson) and
/// the zero-alloc [`ToJsonBuf`](crate::ToJsonBuf) fast path for an enum,
/// using serde's externally-tagged representation.
///
/// Unit variants serialize as `"Name"`; newtype variants as
/// `{"Name": value}`; tuple variants as `{"Name": [..]}`; struct variants as
/// `{"Name": {..}}`. Variant shapes may be mixed freely in one invocation.
#[macro_export]
macro_rules! json_enum {
    ($ty:ident { $( $var:ident $( ( $($tf:ident),+ ) )? $( { $($sf:ident),+ } )? ),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                match self {
                    $( $crate::json_enum!(@pat $ty $var $(( $($tf),+ ))? $({ $($sf),+ })?) =>
                        $crate::json_enum!(@to $var $(( $($tf),+ ))? $({ $($sf),+ })?), )+
                }
            }
        }
        impl $crate::ToJsonBuf for $ty {
            fn write_json(&self, out: &mut ::std::string::String) {
                match self {
                    $( $crate::json_enum!(@pat $ty $var $(( $($tf),+ ))? $({ $($sf),+ })?) =>
                        { $crate::json_enum!(@tobuf out $var $(( $($tf),+ ))? $({ $($sf),+ })?); } )+
                }
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                $( $crate::json_enum!(@from $ty v $var $(( $($tf),+ ))? $({ $($sf),+ })?); )+
                Err($crate::JsonError::msg(format!(
                    concat!("no variant of ", stringify!($ty), " matches this {}"),
                    v.type_name()
                )))
            }
        }
    };

    (@pat $ty:ident $var:ident) => { $ty::$var };
    (@pat $ty:ident $var:ident ( $($tf:ident),+ )) => { $ty::$var( $($tf),+ ) };
    (@pat $ty:ident $var:ident { $($sf:ident),+ }) => { $ty::$var { $($sf),+ } };

    (@to $var:ident) => { $crate::Json::Str(stringify!($var).to_string()) };
    (@to $var:ident ( $single:ident )) => {
        $crate::Json::Object(vec![(
            stringify!($var).to_string(),
            $crate::ToJson::to_json($single),
        )])
    };
    (@to $var:ident ( $($tf:ident),+ )) => {
        $crate::Json::Object(vec![(
            stringify!($var).to_string(),
            $crate::Json::Array(vec![ $( $crate::ToJson::to_json($tf) ),+ ]),
        )])
    };
    (@to $var:ident { $($sf:ident),+ }) => {
        $crate::Json::Object(vec![(
            stringify!($var).to_string(),
            $crate::Json::Object(vec![
                $( (stringify!($sf).to_string(), $crate::ToJson::to_json($sf)) ),+
            ]),
        )])
    };

    (@tobuf $out:ident $var:ident) => {
        $out.push_str(concat!("\"", stringify!($var), "\""))
    };
    (@tobuf $out:ident $var:ident ( $single:ident )) => {{
        $out.push_str(concat!("{\"", stringify!($var), "\":"));
        $crate::ToJsonBuf::write_json($single, $out);
        $out.push('}');
    }};
    (@tobuf $out:ident $var:ident ( $($tf:ident),+ )) => {{
        $out.push_str(concat!("{\"", stringify!($var), "\":["));
        let mut _first = true;
        $(
            if !::std::mem::take(&mut _first) {
                $out.push(',');
            }
            $crate::ToJsonBuf::write_json($tf, $out);
        )+
        $out.push_str("]}");
    }};
    (@tobuf $out:ident $var:ident { $($sf:ident),+ }) => {{
        $out.push_str(concat!("{\"", stringify!($var), "\":{"));
        let mut _first = true;
        $(
            if !::std::mem::take(&mut _first) {
                $out.push(',');
            }
            $out.push_str(concat!("\"", stringify!($sf), "\":"));
            $crate::ToJsonBuf::write_json($sf, $out);
        )+
        $out.push_str("}}");
    }};

    (@from $ty:ident $v:ident $var:ident) => {
        if $v.as_str() == Some(stringify!($var)) {
            return Ok($ty::$var);
        }
    };
    (@from $ty:ident $v:ident $var:ident ( $single:ident )) => {
        if let Some(inner) = $v.get(stringify!($var)) {
            return Ok($ty::$var($crate::FromJson::from_json(inner)
                .map_err(|e| e.in_field(stringify!($var)))?));
        }
    };
    (@from $ty:ident $v:ident $var:ident ( $($tf:ident),+ )) => {
        if let Some(inner) = $v.get(stringify!($var)) {
            let items = inner.as_array().ok_or_else(|| {
                $crate::JsonError::msg(concat!(
                    "expected array payload for tuple variant ",
                    stringify!($var)
                ))
            })?;
            let mut it = items.iter();
            $( let $tf = $crate::FromJson::from_json(it.next().ok_or_else(|| {
                $crate::JsonError::msg(concat!(
                    "tuple variant ", stringify!($var), " payload too short"
                ))
            })?).map_err(|e| e.in_field(stringify!($var)))?; )+
            return Ok($ty::$var( $($tf),+ ));
        }
    };
    (@from $ty:ident $v:ident $var:ident { $($sf:ident),+ }) => {
        if let Some(inner) = $v.get(stringify!($var)) {
            return Ok($ty::$var {
                $( $sf: $crate::from_field(inner, stringify!($sf))? ),+
            });
        }
    };
}
