//! Serialization: compact and pretty (2-space indent, `serde_json` style).
//!
//! The number and string writers live in [`crate::buf`] and are shared
//! with the [`ToJsonBuf`](crate::ToJsonBuf) fast path, so the two paths
//! produce identical bytes by construction.

use crate::buf::{write_escaped, write_number};
use crate::value::Json;
use crate::ToJson;

/// Serialize compactly: `{"k":1,"v":[true,null]}`.
pub fn to_string(value: &impl ToJson) -> String {
    json_to_string(&value.to_json())
}

/// Serialize with 2-space indentation, matching the layout of the
/// checked-in `fig*.json` / `table1.json` artifacts.
pub fn to_string_pretty(value: &impl ToJson) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), Some(0));
    out
}

pub(crate) fn json_to_string(value: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None);
    out
}

/// `indent = None` → compact; `Some(depth)` → pretty at that nesting depth.
pub(crate) fn write_value(out: &mut String, value: &Json, indent: Option<usize>) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_number(out, *n),
        Json::Str(s) => write_escaped(out, s),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                open_line(out, indent);
                write_value(out, item, indent.map(|d| d + 1));
            }
            close_line(out, indent);
            out.push(']');
        }
        Json::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                open_line(out, indent);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent.map(|d| d + 1));
            }
            close_line(out, indent);
            out.push('}');
        }
    }
}

fn open_line(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..=depth {
            out.push_str("  ");
        }
    }
}

fn close_line(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

