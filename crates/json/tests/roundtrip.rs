//! Round-trip and representation tests for the in-repo JSON stack.

use impress_json::{
    from_str, json_enum, json_struct, parse, to_string, to_string_pretty, Json, Number, ToJson,
};

/// Deterministic xorshift64* generator, local to this test so the json crate
/// stays dependency-free (the workspace-wide `props!` harness lives in
/// `impress-sim`, which depends on this crate).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Build a random JSON tree of bounded depth.
fn arb_json(rng: &mut XorShift, depth: usize) -> Json {
    match if depth == 0 { rng.below(4) } else { rng.below(6) } {
        0 => Json::Null,
        1 => Json::Bool(rng.below(2) == 0),
        2 => match rng.below(3) {
            0 => Json::Num(Number::U64(rng.next())),
            1 => Json::Num(Number::I64(-((rng.next() >> 1) as i64))),
            _ => {
                // A finite float built from a ratio, avoiding NaN/inf.
                let num = (rng.next() % 2_000_000) as f64 - 1_000_000.0;
                let den = (1 + rng.below(9999)) as f64;
                Json::Num(Number::F64(num / den))
            }
        },
        3 => {
            let len = rng.below(12);
            let s: String = (0..len)
                .map(|_| {
                    // Mix ASCII, escapes and multibyte characters.
                    const POOL: &[char] = &['a', 'Z', '"', '\\', '\n', '\t', 'µ', '日', '𝄞', ' '];
                    POOL[rng.below(POOL.len() as u64) as usize]
                })
                .collect();
            Json::Str(s)
        }
        4 => {
            let len = rng.below(5) as usize;
            Json::Array((0..len).map(|_| arb_json(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.below(5) as usize;
            Json::Object(
                (0..len)
                    .map(|i| (format!("k{i}"), arb_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

#[test]
fn parse_after_serialize_is_identity_compact_and_pretty() {
    let mut rng = XorShift(0x5EED_CAFE_F00D_1234);
    for case in 0..500u32 {
        let value = arb_json(&mut rng, 3);
        let compact = to_string(&value);
        let pretty = to_string_pretty(&value);
        let back_compact = parse(&compact)
            .unwrap_or_else(|e| panic!("case {case}: compact reparse failed: {e}\n{compact}"));
        let back_pretty = parse(&pretty)
            .unwrap_or_else(|e| panic!("case {case}: pretty reparse failed: {e}\n{pretty}"));
        assert_eq!(back_compact, value, "case {case} compact:\n{compact}");
        assert_eq!(back_pretty, value, "case {case} pretty:\n{pretty}");
    }
}

#[test]
fn numbers_keep_integer_precision() {
    let v = Json::Num(Number::U64(u64::MAX));
    let text = to_string(&v);
    assert_eq!(text, u64::MAX.to_string());
    assert_eq!(parse(&text).unwrap().as_u64(), Some(u64::MAX));

    let neg = parse("-9223372036854775808").unwrap();
    assert_eq!(neg, Json::Num(Number::I64(i64::MIN)));
}

#[test]
fn floats_round_trip_shortest_repr() {
    for f in [0.1, 1.0, -2.5, 18.725267822409716, 1e-12, 3.6e9] {
        let text = to_string(&f);
        let back: f64 = from_str(&text).expect("reparse");
        assert_eq!(back, f, "{text}");
    }
    // Integral floats keep a float token so the round trip stays float-typed.
    assert_eq!(to_string(&1.0f64), "1.0");
    // Non-finite floats degrade to null, serde_json-style.
    assert_eq!(to_string(&f64::NAN), "null");
    assert_eq!(to_string(&f64::INFINITY), "null");
}

/// The journal's resume-parity invariant leans on this: every finite f64
/// must survive serialize → parse → serialize *bit*-exactly (not just
/// approximately), including subnormals, extremes, and negative zero's
/// sign bit — and the text itself must be a fixed point.
#[test]
fn floats_round_trip_bit_exactly() {
    let mut rng = XorShift(0x5eed_f00d);
    let mut cases = vec![
        f64::MIN,
        f64::MAX,
        f64::MIN_POSITIVE,          // smallest normal
        f64::MIN_POSITIVE / 1e10,   // subnormal
        5e-324,                     // smallest subnormal
        -0.0,
        0.1 + 0.2,                  // classic non-representable sum
        1.0 / 3.0,
        std::f64::consts::PI,
        2f64.powi(53) - 1.0,        // largest exact integer
        2f64.powi(53) + 2.0,
        6.02214076e23,
        1.616255e-35,
    ];
    for _ in 0..500 {
        let bits = rng.next();
        let f = f64::from_bits(bits);
        if f.is_finite() {
            cases.push(f);
        }
    }
    for f in cases {
        let text = to_string(&f);
        let back: f64 = from_str(&text).expect(&text);
        assert_eq!(back.to_bits(), f.to_bits(), "{f:?} via {text:?}");
        assert_eq!(to_string(&back), text, "serialization must be a fixed point");
    }
}

#[test]
fn string_escapes_round_trip() {
    let tricky = "quote\" slash\\ nl\n tab\t unicode µ日𝄞 ctl\u{01}";
    let text = to_string(&tricky.to_string());
    let back: String = from_str(&text).expect("reparse");
    assert_eq!(back, tricky);
    // Escaped surrogate pairs decode.
    assert_eq!(
        parse(r#""𝄞""#).unwrap().as_str(),
        Some("\u{1D11E}")
    );
}

#[test]
fn parser_rejects_malformed_documents() {
    for bad in [
        "",
        "{",
        "[1,]",
        "{\"a\":}",
        "tru",
        "\"unterminated",
        "1 2",
        "{\"a\" 1}",
        "nul",
        "[1 2]",
        r#""\ud834""#,
    ] {
        assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
    }
}

#[test]
fn object_builder_preserves_insertion_order() {
    let v = Json::object()
        .field("z", 1u32)
        .field("a", "text")
        .field("m", vec![1.5f64, 2.5])
        .build();
    assert_eq!(to_string(&v), r#"{"z":1,"a":"text","m":[1.5,2.5]}"#);
}

#[test]
fn pretty_layout_matches_serde_json_style() {
    let v = Json::object()
        .field("n", 1u32)
        .field("xs", vec![1u32, 2])
        .field("empty", Json::Array(vec![]))
        .build();
    assert_eq!(
        to_string_pretty(&v),
        "{\n  \"n\": 1,\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}"
    );
}

// --- macro-generated impls ------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
struct Inner {
    label: String,
    weight: f64,
}
json_struct!(Inner { label, weight });

#[derive(Debug, Clone, PartialEq)]
struct Outer {
    id: u64,
    inner: Inner,
    tags: Vec<String>,
    maybe: Option<u32>,
}
json_struct!(Outer {
    id,
    inner,
    tags,
    maybe
});

#[derive(Debug, Clone, Copy, PartialEq)]
struct Micros(u64);
json_struct!(Micros(u64));

#[derive(Debug, Clone, PartialEq)]
enum Shape {
    Unit,
    Newtype(u32),
    Pair(u32, u32),
    Fields { x: f64, y: f64 },
}
json_enum!(Shape {
    Unit,
    Newtype(a),
    Pair(a, b),
    Fields { x, y }
});

#[test]
fn struct_macro_round_trips_nested_types() {
    let outer = Outer {
        id: 7,
        inner: Inner {
            label: "pdz".into(),
            weight: 0.25,
        },
        tags: vec!["a".into(), "b".into()],
        maybe: None,
    };
    let text = to_string_pretty(&outer);
    let back: Outer = from_str(&text).expect("reparse");
    assert_eq!(back, outer);
    // None serializes as null, and a missing key also reads back as None.
    assert!(text.contains("\"maybe\": null"));
    let trimmed: Outer =
        from_str(r#"{"id":7,"inner":{"label":"pdz","weight":0.25},"tags":["a","b"]}"#)
            .expect("missing Option field defaults to None");
    assert_eq!(trimmed, outer);
}

#[test]
fn newtype_macro_is_transparent() {
    let m = Micros(123_456);
    assert_eq!(to_string(&m), "123456");
    let back: Micros = from_str("123456").expect("reparse");
    assert_eq!(back, m);
}

#[test]
fn enum_macro_uses_serde_external_tagging() {
    assert_eq!(to_string(&Shape::Unit), r#""Unit""#);
    assert_eq!(to_string(&Shape::Newtype(3)), r#"{"Newtype":3}"#);
    assert_eq!(to_string(&Shape::Pair(1, 2)), r#"{"Pair":[1,2]}"#);
    assert_eq!(
        to_string(&Shape::Fields { x: 1.5, y: -2.0 }),
        r#"{"Fields":{"x":1.5,"y":-2.0}}"#
    );
    for shape in [
        Shape::Unit,
        Shape::Newtype(9),
        Shape::Pair(4, 5),
        Shape::Fields { x: 0.5, y: 0.0 },
    ] {
        let back: Shape = from_str(&to_string(&shape)).expect("reparse");
        assert_eq!(back, shape);
    }
    assert!(from_str::<Shape>(r#""NoSuchVariant""#).is_err());
}

#[test]
fn error_messages_name_the_failing_field() {
    let err = from_str::<Outer>(r#"{"id":"not a number"}"#).unwrap_err();
    assert!(err.to_string().contains("id"), "{err}");
}

#[test]
fn to_json_reference_blanket_impl_works() {
    let s = Inner {
        label: "x".into(),
        weight: 1.0,
    };
    let by_ref: Json = (&s).to_json();
    assert_eq!(by_ref, s.to_json());
}
