//! The parser must accept every JSON artifact checked into the repository
//! (emitted by the fig*/table1/scaling/resilience bench binaries), and
//! re-serializing
//! the parsed tree must be a fixed point of parsing.

use impress_json::{parse, to_string_pretty, Json};
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

const ARTIFACTS: &[&str] = &[
    "fig2.json",
    "fig3.json",
    "fig4.json",
    "fig5.json",
    "table1.json",
    "scaling.json",
    "resilience.json",
    "BENCH_coord.json",
];

#[test]
fn checked_in_artifacts_parse_and_round_trip() {
    for name in ARTIFACTS {
        let path = repo_root().join(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let value = parse(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"));
        assert!(
            matches!(value, Json::Object(_)),
            "{name} should be a JSON object"
        );
        let rendered = to_string_pretty(&value);
        let reparsed = parse(&rendered).unwrap_or_else(|e| panic!("reparse {name}: {e}"));
        assert_eq!(reparsed, value, "{name} must round-trip through our writer");
    }
}

#[test]
fn artifacts_expose_expected_top_level_keys() {
    let checks: &[(&str, &[&str])] = &[
        ("fig2.json", &["seed", "cont_v", "imrp"]),
        ("fig3.json", &["seed", "series"]),
        ("table1.json", &["seed", "cont_v", "imrp", "improvement_pct"]),
        ("scaling.json", &["seed", "rows"]),
        ("resilience.json", &["seed", "task_failure_rate", "rows"]),
    ];
    for (name, keys) in checks {
        let text = std::fs::read_to_string(repo_root().join(name)).expect("artifact exists");
        let value = parse(&text).expect("artifact parses");
        for key in *keys {
            assert!(value.get(key).is_some(), "{name} missing key {key}");
        }
    }
}
