//! Sim-engine scaling study: wall time of large virtual campaigns on the
//! sequential engine vs the sharded parallel-DES engine, written to
//! `BENCH_sim.json` by the `sim_bench` binary.
//!
//! The study documents its own *before* shape: [`baseline`] pins the wall
//! times measured on the pre-sharding engine (boxed-closure events,
//! `Rc<RefCell>` shared state, one monolithic event heap) so the
//! checked-in artifact always carries the comparison point. The headline
//! cell — 10,000 nodes, 1,000,000 tasks — was not measurable on that
//! engine at all (it extrapolates to tens of minutes); its baseline is
//! `null` and the sharded engine's single-digit-second wall time *is* the
//! result.
//!
//! The logic lives in the library (not the binary) so `tests/hermetic.rs`
//! can run a tiny smoke iteration under `cargo test` — bench code cannot
//! bit-rot between releases.

use impress_json::Json;
use impress_pilot::{
    ExecutionBackend, PilotConfig, ResourceRequest, RuntimeConfig, TaskDescription,
};
use impress_sim::{SimDuration, SimRng};

/// Bumped whenever the JSON document layout changes; `tests/hermetic.rs`
/// checks the checked-in artifact against this.
pub const SIM_BENCH_FORMAT_VERSION: u32 = 1;

/// Pre-sharding measurements, taken at commit `d571314` on the same
/// machine that produced the checked-in `BENCH_sim.json`.
///
/// Each cell is the wall time of one [`run_campaign`] drain (seed 42) on
/// the sequential [`SimulatedBackend`](impress_pilot::backend::SimulatedBackend).
pub mod baseline {
    /// Commit the baseline was measured at.
    pub const COMMIT: &str = "d571314";
    /// What that engine looked like.
    pub const DESCRIPTION: &str = "sequential engine: boxed-closure events, Rc<RefCell> \
         shared state, one monolithic event heap, per-device utilization trackers";
    /// `(nodes, tasks, wall ms)`; `None` = not measurable in reasonable
    /// time on the old engine (the 10k-node / 1M-task headline cell
    /// extrapolates to roughly half an hour).
    pub const CELLS_MS: &[(u32, usize, Option<f64>)] = &[
        (16, 5_000, Some(17.0)),
        (100, 20_000, Some(142.0)),
        (1_000, 100_000, Some(14_023.0)),
        (10_000, 50_000, Some(102_309.0)),
        (10_000, 1_000_000, None),
    ];
}

/// Pilot sizing for one campaign cell: `nodes` Amarel-shaped nodes, a
/// 60 s bootstrap, 5 s per-task exec setup.
pub fn campaign_config(nodes: u32, seed: u64) -> PilotConfig {
    PilotConfig {
        nodes,
        bootstrap: SimDuration::from_secs(60),
        exec_setup_per_task: SimDuration::from_secs(5),
        ..PilotConfig::with_seed(seed)
    }
}

/// Submit and drain the standard heterogeneous campaign: 70% small CPU
/// tasks (1–4 cores), 20% GPU pairs (2 cores + 1 GPU), 10% half-node
/// CPU jobs (14 cores), durations 100–3000 s, priorities −2..=2. Returns
/// `(completed tasks, virtual makespan hours)`.
pub fn run_campaign(
    backend: &mut dyn ExecutionBackend,
    seed: u64,
    tasks: usize,
) -> (usize, f64) {
    let mut rng = SimRng::from_seed(seed).fork("sim-campaign");
    for _ in 0..tasks {
        let class = rng.below(100);
        let request = if class < 70 {
            ResourceRequest::cores(1 + rng.below(4) as u32)
        } else if class < 90 {
            ResourceRequest::with_gpus(2, 1)
        } else {
            ResourceRequest::cores(14)
        };
        let duration = SimDuration::from_secs((100 + rng.below(2900)) as u64);
        let priority = rng.below(5) as i32 - 2;
        backend.submit(TaskDescription::new("t", request, duration).with_priority(priority));
    }
    let mut completed = 0usize;
    while backend.next_completion().is_some() {
        completed += 1;
    }
    (completed, backend.now().as_secs_f64() / 3600.0)
}

/// Which engine a study row measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The sequential `SimulatedBackend` (the reference oracle).
    Sequential,
    /// The `ShardedBackend`, in-process or worker-thread drive.
    Sharded {
        /// Event-queue shard count.
        shards: usize,
        /// Worker-thread drive mode.
        parallel: bool,
    },
}

impl EngineKind {
    fn label(self) -> String {
        match self {
            EngineKind::Sequential => "sequential".to_string(),
            EngineKind::Sharded {
                shards,
                parallel: false,
            } => format!("sharded/{shards}"),
            EngineKind::Sharded {
                shards,
                parallel: true,
            } => format!("sharded-parallel/{shards}"),
        }
    }
}

/// Run one campaign cell once; returns `(wall ms, completed, makespan h)`.
pub fn run_cell(kind: EngineKind, nodes: u32, tasks: usize, seed: u64) -> (f64, usize, f64) {
    let config = campaign_config(nodes, seed);
    let mut backend: Box<dyn ExecutionBackend> = match kind {
        EngineKind::Sequential => Box::new(RuntimeConfig::new(config).simulated()),
        EngineKind::Sharded { shards, parallel } => Box::new(
            RuntimeConfig::new(config)
                .shards(shards)
                .parallel_shards(parallel)
                .sharded(),
        ),
    };
    let start = std::time::Instant::now();
    let (completed, makespan_h) = run_campaign(backend.as_mut(), seed, tasks);
    (start.elapsed().as_secs_f64() * 1e3, completed, makespan_h)
}

/// Knobs for one study run; [`StudyParams::full`] is what the study uses,
/// [`StudyParams::smoke`] is the tiny `cargo test` iteration.
pub struct StudyParams {
    /// `(nodes, tasks)` campaign cells.
    pub cells: Vec<(u32, usize)>,
    /// Shard count for the sharded-engine rows.
    pub shards: usize,
    /// Wall-time samples per row (median is reported); overridable via
    /// `IMPRESS_BENCH_SAMPLES`.
    pub samples: usize,
    /// Skip sequential-engine reruns of cells whose embedded baseline
    /// exceeds this many seconds (the 10k-node cells take minutes on the
    /// old engine); overridable via `IMPRESS_BENCH_MAX_SECS`.
    pub max_sequential_secs: f64,
    /// Also measure the worker-thread drive mode.
    pub parallel_drive: bool,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

impl StudyParams {
    /// The full study regenerating `BENCH_sim.json`: every baseline cell
    /// up to the 10k-node / 1M-task headline.
    pub fn full() -> Self {
        StudyParams {
            cells: baseline::CELLS_MS.iter().map(|&(n, t, _)| (n, t)).collect(),
            shards: 8,
            samples: env_usize("IMPRESS_BENCH_SAMPLES", 3),
            max_sequential_secs: env_f64("IMPRESS_BENCH_MAX_SECS", 30.0),
            parallel_drive: true,
        }
    }

    /// A seconds-scale iteration exercising every code path (all three
    /// engines on one small cell).
    pub fn smoke() -> Self {
        StudyParams {
            cells: vec![(4, 200)],
            shards: 2,
            samples: 1,
            max_sequential_secs: 5.0,
            parallel_drive: true,
        }
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Run the study and build the `BENCH_sim.json` document.
pub fn run_study(params: &StudyParams, seed: u64) -> Json {
    let mut results: Vec<Json> = Vec::new();
    let mut speedups: Vec<Json> = Vec::new();
    let mut headline: Option<(u64, Json)> = None;

    for &(nodes, tasks) in &params.cells {
        let known = baseline::CELLS_MS
            .iter()
            .find(|&&(n, t, _)| n == nodes && t == tasks);
        // The sequential engine reruns only where the embedded baseline
        // says it finishes quickly (or the cell is an unlisted smoke
        // cell); the minutes-scale cells keep their pinned numbers.
        let run_sequential = match known {
            Some(&(_, _, Some(ms))) => ms <= params.max_sequential_secs * 1e3,
            Some(&(_, _, None)) => false,
            None => true,
        };
        let mut kinds = Vec::new();
        if run_sequential {
            kinds.push(EngineKind::Sequential);
        }
        kinds.push(EngineKind::Sharded {
            shards: params.shards,
            parallel: false,
        });
        if params.parallel_drive {
            kinds.push(EngineKind::Sharded {
                shards: params.shards,
                parallel: true,
            });
        }

        for kind in kinds {
            let mut walls = Vec::new();
            let mut completed = 0usize;
            let mut makespan_h = 0.0;
            for _ in 0..params.samples.max(1) {
                let (wall, done, h) = run_cell(kind, nodes, tasks, seed);
                walls.push(wall);
                completed = done;
                makespan_h = h;
            }
            assert_eq!(completed, tasks, "campaign must drain every task");
            let wall_ms = median(walls);
            eprintln!(
                "  {:>7} nodes x {:>9} tasks  {:<22} {:>12.1} ms  (makespan {:.1} h)",
                nodes,
                tasks,
                kind.label(),
                wall_ms,
                makespan_h
            );
            let row = Json::object()
                .field("nodes", nodes as u64)
                .field("tasks", tasks as u64)
                .field("engine", kind.label())
                .field("samples", params.samples.max(1) as u64)
                .field("wall_ms", wall_ms)
                .field("makespan_hours", makespan_h)
                .field("completed", completed as u64)
                .build();
            let serial_sharded = kind
                == EngineKind::Sharded {
                    shards: params.shards,
                    parallel: false,
                };
            if serial_sharded {
                if let Some(&(_, _, Some(before_ms))) = known {
                    speedups.push(
                        Json::object()
                            .field("nodes", nodes as u64)
                            .field("tasks", tasks as u64)
                            .field("baseline_ms", before_ms)
                            .field("sharded_ms", wall_ms)
                            .field("speedup", before_ms / wall_ms.max(1e-9))
                            .build(),
                    );
                }
                let size = nodes as u64 * tasks as u64;
                if headline.as_ref().is_none_or(|&(s, _)| size > s) {
                    headline = Some((
                        size,
                        Json::object()
                            .field("nodes", nodes as u64)
                            .field("tasks", tasks as u64)
                            .field("wall_ms", wall_ms)
                            .field("single_digit_seconds", wall_ms < 10_000.0)
                            .build(),
                    ));
                }
            }
            results.push(row);
        }
    }

    Json::object()
        .field("format_version", SIM_BENCH_FORMAT_VERSION)
        .field("suite", "sim_bench")
        .field("seed", seed)
        .field("shards", params.shards as u64)
        .field(
            "baseline",
            Json::object()
                .field("commit", baseline::COMMIT)
                .field("description", baseline::DESCRIPTION)
                .field(
                    "cells",
                    Json::array(
                        baseline::CELLS_MS
                            .iter()
                            .map(|&(n, t, ms)| {
                                Json::object()
                                    .field("nodes", n as u64)
                                    .field("tasks", t as u64)
                                    .field("wall_ms", ms)
                                    .build()
                            })
                            .collect::<Vec<_>>(),
                    ),
                )
                .build(),
        )
        .field("results", Json::array(results))
        .field("speedups", Json::array(speedups))
        .field(
            "headline",
            headline.map(|(_, h)| h).expect("study has at least one cell"),
        )
        .build()
}
