//! The partition study (beyond the paper, "Fig. 8"): control-plane
//! resilience under message-layer faults.
//!
//! The straggler and resilience studies stress compute faults — crashes,
//! slowdowns, poisoned lineages. This harness stresses the *message layer*
//! between the coordinator and the nodes: dropped, duplicated and delayed
//! control traffic, plus scripted coordinator↔node-group partitions. It
//! sweeps loss rate (drop + duplication) × partition duration × heartbeat
//! timeout on the simulated backend and certifies two claims as measured
//! numbers:
//!
//! 1. **Exactly-once effects.** At every swept drop/duplication rate, the
//!    at-least-once control plane plus idempotent dedup keeps effects
//!    exactly-once end to end: every task settles exactly once at the
//!    backend, every pipeline reaches exactly one terminal journal record,
//!    and the decision engine observes each pipeline terminal exactly once.
//! 2. **Detection recovers the partition tail.** A healed 60 s partition
//!    with the heartbeat failure detector on recovers ≥ 90 % of the
//!    makespan lost relative to detection disabled: suspected nodes are
//!    evicted, their leases expire, and the trapped work reruns on
//!    reachable nodes instead of waiting for the heal.

use impress_json::Json;
use impress_pilot::{
    ExecutionBackend, FaultConfig, FaultPlan, NodeSpec, PilotConfig, PlacementPolicy,
    ResourceRequest, RetryPolicy, RuntimeConfig, ScriptedPartition, TaskDescription,
};
use impress_sim::{SimDuration, SimTime};
use impress_workflow::decision::Spawn;
use impress_workflow::{
    load_plan, Coordinator, CoordinatorView, DecisionEngine, Journal, LinearPipeline,
    MemoryJournal, PipelineId,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Format version stamped into `partition.json`; the hermetic guard pins
/// it so a schema change without regeneration fails `cargo test`.
pub const PARTITION_FORMAT_VERSION: u32 = 1;

/// Loss axis: symmetric per-message drop and duplication rates.
const LOSSES: [(&str, f64); 3] = [("lossless", 0.0), ("lossy", 0.15), ("brutal", 0.3)];

/// Partition-duration axis, seconds (0 = no partition).
const DURATIONS: [(&str, u64); 4] = [("none", 0), ("20s", 20), ("60s", 60), ("120s", 120)];

/// Failure-detector axis: `(heartbeat interval, suspicion timeout)` in
/// seconds, or off.
const TIMEOUTS: [(&str, Option<(f64, f64)>); 3] =
    [("off", None), ("t2", Some((0.5, 2.0))), ("t6", Some((1.5, 6.0)))];

/// Knobs of one study run; [`StudyParams::paper`] is the checked-in
/// artifact, [`StudyParams::smoke`] a milliseconds-scale tier-1 variant.
#[derive(Debug, Clone)]
pub struct StudyParams {
    /// Cluster width.
    pub nodes: u32,
    /// Cores per node (CPU-only study).
    pub cores_per_node: u32,
    /// Single-core design tasks in the recovery grid.
    pub tasks: usize,
    /// Modeled task runtime, seconds.
    pub task_secs: u64,
    /// First node (inclusive) on the far side of the partition.
    pub partition_first_node: u32,
    /// Last node (inclusive) on the far side of the partition.
    pub partition_last_node: u32,
    /// When the partition opens, seconds (mid first wave).
    pub partition_at_secs: u64,
    /// Pilot bootstrap, seconds.
    pub bootstrap_secs: u64,
    /// Per-task execution setup, seconds.
    pub exec_setup_secs: u64,
    /// Root pipelines in the delivery (exactly-once) campaign.
    pub pipelines: usize,
    /// Sequential stages per delivery pipeline.
    pub stages_per_pipeline: usize,
}

impl StudyParams {
    /// The checked-in artifact's shape: 6 × 4-core nodes, the first wave
    /// loads nodes 0–3, the partition severs nodes 2–3, nodes 4–5 stay
    /// free as rerun capacity.
    pub fn paper() -> Self {
        StudyParams {
            nodes: 6,
            cores_per_node: 4,
            tasks: 16,
            task_secs: 5,
            partition_first_node: 2,
            partition_last_node: 3,
            partition_at_secs: 12,
            bootstrap_secs: 10,
            exec_setup_secs: 1,
            pipelines: 6,
            stages_per_pipeline: 3,
        }
    }

    /// A smaller variant exercising every code path under `cargo test`.
    pub fn smoke() -> Self {
        StudyParams {
            nodes: 4,
            cores_per_node: 4,
            tasks: 8,
            task_secs: 5,
            partition_first_node: 1,
            partition_last_node: 1,
            partition_at_secs: 12,
            bootstrap_secs: 10,
            exec_setup_secs: 1,
            pipelines: 3,
            stages_per_pipeline: 2,
        }
    }

    fn pilot(&self, seed: u64) -> PilotConfig {
        PilotConfig {
            node: NodeSpec::new(self.cores_per_node, 0, 64),
            nodes: self.nodes,
            policy: PlacementPolicy::Backfill,
            bootstrap: SimDuration::from_secs(self.bootstrap_secs),
            exec_setup_per_task: SimDuration::from_secs(self.exec_setup_secs),
            seed,
        }
    }

    /// Link config shared by every cell: small base delay, 1 s sender
    /// retransmission, loss and detector knobs per the cell's axes.
    fn link(&self, drop: f64, duration_secs: u64, hb: Option<(f64, f64)>) -> FaultConfig {
        let mut fc = FaultConfig::none();
        fc.link.drop_rate = drop;
        fc.link.duplicate_rate = drop;
        fc.link.delay = SimDuration::from_micros(100_000);
        fc.link.retransmit_timeout = SimDuration::from_secs(1);
        if duration_secs > 0 {
            fc.link.partitions = vec![ScriptedPartition {
                first_node: self.partition_first_node,
                last_node: self.partition_last_node,
                at: SimTime::from_micros(self.partition_at_secs * 1_000_000),
                duration: SimDuration::from_secs(duration_secs),
            }];
        }
        if let Some((interval, timeout)) = hb {
            fc.link.heartbeat_interval = Some(SimDuration::from_micros((interval * 1e6) as u64));
            fc.link.heartbeat_timeout = Some(SimDuration::from_micros((timeout * 1e6) as u64));
        }
        fc
    }

    /// Retry budget for lease-expired reruns: immediate requeue (no
    /// backoff) so the recovery measurement isolates detection latency.
    fn retry(&self) -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            backoff_base: SimDuration::ZERO,
            backoff_multiplier: 2.0,
            backoff_cap: SimDuration::ZERO,
            jitter: 0.0,
        }
    }
}

/// Measured outcome of one recovery-grid cell.
struct CellResult {
    loss: &'static str,
    drop_rate: f64,
    duration: &'static str,
    duration_secs: u64,
    detector: &'static str,
    makespan_secs: f64,
    completed: usize,
    duplicate_completions: usize,
    suspicions: u64,
    lease_expiries: u64,
    fenced_completions: u64,
    resyncs: u64,
    dedup_hits: u64,
    retransmits: u64,
}

fn run_cell(
    p: &StudyParams,
    loss: (&'static str, f64),
    duration: (&'static str, u64),
    detector: (&'static str, Option<(f64, f64)>),
    seed: u64,
) -> CellResult {
    let fc = p.link(loss.1, duration.1, detector.1);
    let mut backend = RuntimeConfig::new(p.pilot(seed))
        .faults(FaultPlan::new(fc, seed ^ 0x9A27), p.retry())
        .simulated();
    for i in 0..p.tasks {
        backend.submit(TaskDescription::new(
            format!("design-{i}"),
            ResourceRequest::cores(1),
            SimDuration::from_secs(p.task_secs),
        ));
    }
    let mut done = std::collections::HashSet::new();
    let (mut completed, mut duplicate_completions) = (0usize, 0usize);
    while let Some(c) = backend.next_completion() {
        assert!(
            c.result.is_ok(),
            "unexpected failure in the partition study: {:?}",
            c.result
        );
        if done.insert(c.task) {
            completed += 1;
        } else {
            duplicate_completions += 1;
        }
    }
    let st = backend.control_stats();
    CellResult {
        loss: loss.0,
        drop_rate: loss.1,
        duration: duration.0,
        duration_secs: duration.1,
        detector: detector.0,
        makespan_secs: backend.now().as_secs_f64(),
        completed,
        duplicate_completions,
        suspicions: st.suspicions,
        lease_expiries: st.lease_expiries,
        fenced_completions: st.fenced_completions,
        resyncs: st.resyncs,
        dedup_hits: st.dedup_hits,
        retransmits: st.retransmits,
    }
}

/// Records how often each pipeline's terminal events reach the decision
/// engine — the "DecisionEngine effects" half of the exactly-once claim.
#[derive(Default)]
struct EffectCounts {
    completes: HashMap<u64, u32>,
    aborts: HashMap<u64, u32>,
}

struct CountingDecisions {
    counts: Rc<RefCell<EffectCounts>>,
}

impl DecisionEngine<u64> for CountingDecisions {
    fn on_pipeline_complete(
        &mut self,
        id: PipelineId,
        _outcome: &u64,
        _view: &CoordinatorView<'_>,
    ) -> Vec<Spawn<u64>> {
        *self.counts.borrow_mut().completes.entry(id.0).or_insert(0) += 1;
        Vec::new()
    }

    fn on_pipeline_aborted(
        &mut self,
        id: PipelineId,
        _reason: &str,
        _view: &CoordinatorView<'_>,
    ) -> Vec<Spawn<u64>> {
        *self.counts.borrow_mut().aborts.entry(id.0).or_insert(0) += 1;
        Vec::new()
    }
}

/// Measured outcome of one delivery (exactly-once) campaign.
struct DeliveryResult {
    loss: &'static str,
    drop_rate: f64,
    pipelines_completed: usize,
    duplicate_decision_effects: u32,
    duplicate_journal_effects: usize,
    journal_tail_dropped: usize,
    coordinator_dedup_hits: u64,
    backend_dedup_hits: u64,
    backend_duplicates: u64,
    retransmits: u64,
}

/// Drive a journaled coordinator campaign under the given loss rate and
/// measure duplicate effects at the journal and decision-engine boundaries.
fn run_delivery(p: &StudyParams, loss: (&'static str, f64), seed: u64) -> DeliveryResult {
    let fc = p.link(loss.1, 0, None);
    let backend = RuntimeConfig::new(p.pilot(seed))
        .faults(FaultPlan::new(fc, seed ^ 0x9A27), p.retry())
        .simulated();
    let store = MemoryJournal::new();
    let journal = Journal::new(Box::new(store.clone()), "partition-study", seed)
        .expect("fresh journal");
    let counts = Rc::new(RefCell::new(EffectCounts::default()));
    let mut c = Coordinator::new(
        backend,
        CountingDecisions {
            counts: counts.clone(),
        },
    )
    .with_journal(journal);
    let (task_secs, setup) = (p.task_secs, p.stages_per_pipeline);
    for i in 0..p.pipelines {
        let mut builder = LinearPipeline::named(format!("p{i}"));
        for s in 0..setup {
            builder = builder.stage(move |_prev| {
                vec![TaskDescription::new(
                    format!("p{i}s{s}"),
                    ResourceRequest::cores(1),
                    SimDuration::from_secs(task_secs),
                )
                .with_work(|| 1u64)]
            });
        }
        c.add_pipeline(Box::new(builder.finish(|prev| prev.len() as u64)));
    }
    c.run();
    let st = c.session().control_stats();
    let coordinator_dedup_hits = c.dedup_hits();
    let pipelines_completed = c.outcomes().len();
    let loaded = load_plan(&store).expect("journal replays");
    // A duplicated journal effect would be a pipeline with more than one
    // terminal record; `ReplayPlan::apply` rejects the second one, which
    // surfaces as a dropped tail — so a fully consistent journal with one
    // terminal per pipeline proves zero duplicate journal effects.
    let duplicate_journal_effects = loaded
        .plan
        .pipelines
        .iter()
        .filter(|s| s.terminal.is_none())
        .count()
        + loaded.duplicates;
    let counts = counts.borrow();
    let duplicate_decision_effects: u32 = counts
        .completes
        .values()
        .chain(counts.aborts.values())
        .map(|&n| n.saturating_sub(1))
        .sum();
    DeliveryResult {
        loss: loss.0,
        drop_rate: loss.1,
        pipelines_completed,
        duplicate_decision_effects,
        duplicate_journal_effects,
        journal_tail_dropped: loaded.dropped,
        coordinator_dedup_hits,
        backend_dedup_hits: st.dedup_hits,
        backend_duplicates: st.duplicates,
        retransmits: st.retransmits,
    }
}

fn cell<'a>(rows: &'a [CellResult], l: &str, d: &str, t: &str) -> &'a CellResult {
    rows.iter()
        .find(|r| r.loss == l && r.duration == d && r.detector == t)
        .expect("grid cell present")
}

/// Run the full sweep and assemble the `partition.json` document.
pub fn run_study(p: &StudyParams, seed: u64) -> Json {
    let mut grid = Vec::new();
    for loss in LOSSES {
        for duration in DURATIONS {
            for detector in TIMEOUTS {
                grid.push(run_cell(p, loss, duration, detector, seed));
            }
        }
    }
    let delivery: Vec<DeliveryResult> =
        LOSSES.iter().map(|&l| run_delivery(p, l, seed)).collect();

    // Claim 1 — exactly-once effects at every swept loss rate: no task
    // settles twice anywhere in the grid, and the journaled coordinator
    // campaigns record each pipeline terminal exactly once at both the
    // journal and the decision-engine boundary.
    let grid_duplicates: usize = grid.iter().map(|r| r.duplicate_completions).sum();
    let all_completed = grid.iter().all(|r| r.completed == p.tasks);
    let delivery_duplicates: u32 = delivery
        .iter()
        .map(|d| d.duplicate_decision_effects + d.duplicate_journal_effects as u32)
        .sum();
    let delivery_complete = delivery
        .iter()
        .all(|d| d.pipelines_completed == p.pipelines && d.journal_tail_dropped == 0);
    let exactly_once =
        grid_duplicates == 0 && all_completed && delivery_duplicates == 0 && delivery_complete;

    // Claim 2 — detection recovers the 60 s partition tail, measured on
    // the lossless row so detection latency is the only variable.
    let clean = cell(&grid, "lossless", "none", "off").makespan_secs;
    let undetected = cell(&grid, "lossless", "60s", "off").makespan_secs;
    let detected = cell(&grid, "lossless", "60s", "t2").makespan_secs;
    let lost = undetected - clean;
    let recovered = if lost > 0.0 { (undetected - detected) / lost } else { 0.0 };

    let acceptance = Json::object()
        .field("grid_duplicate_completions", grid_duplicates as u64)
        .field("delivery_duplicate_effects", delivery_duplicates as u64)
        .field("exactly_once_at_every_rate", exactly_once)
        .field("makespan_clean_secs", clean)
        .field("makespan_60s_undetected_secs", undetected)
        .field("makespan_60s_detected_secs", detected)
        .field("partition_loss_secs", lost)
        .field("detection_recovered_fraction", recovered)
        .field("detection_recovers_90pct", recovered >= 0.9)
        .build();

    let grid_rows: Vec<Json> = grid
        .iter()
        .map(|r| {
            Json::object()
                .field("loss", r.loss)
                .field("drop_rate", r.drop_rate)
                .field("partition", r.duration)
                .field("partition_secs", r.duration_secs)
                .field("detector", r.detector)
                .field("makespan_secs", r.makespan_secs)
                .field("completed", r.completed)
                .field("duplicate_completions", r.duplicate_completions)
                .field("suspicions", r.suspicions)
                .field("lease_expiries", r.lease_expiries)
                .field("fenced_completions", r.fenced_completions)
                .field("resyncs", r.resyncs)
                .field("dedup_hits", r.dedup_hits)
                .field("retransmits", r.retransmits)
                .build()
        })
        .collect();
    let delivery_rows: Vec<Json> = delivery
        .iter()
        .map(|d| {
            Json::object()
                .field("loss", d.loss)
                .field("drop_rate", d.drop_rate)
                .field("pipelines_completed", d.pipelines_completed)
                .field("duplicate_decision_effects", d.duplicate_decision_effects)
                .field("duplicate_journal_effects", d.duplicate_journal_effects as u64)
                .field("journal_tail_dropped", d.journal_tail_dropped as u64)
                .field("coordinator_dedup_hits", d.coordinator_dedup_hits)
                .field("backend_dedup_hits", d.backend_dedup_hits)
                .field("backend_duplicates", d.backend_duplicates)
                .field("retransmits", d.retransmits)
                .build()
        })
        .collect();

    Json::object()
        .field("format_version", PARTITION_FORMAT_VERSION)
        .field("seed", seed)
        .field("nodes", p.nodes)
        .field("cores_per_node", p.cores_per_node)
        .field("tasks", p.tasks)
        .field("task_secs", p.task_secs)
        .field("partition_first_node", p.partition_first_node)
        .field("partition_last_node", p.partition_last_node)
        .field("partition_at_secs", p.partition_at_secs)
        .field("pipelines", p.pipelines)
        .field("stages_per_pipeline", p.stages_per_pipeline)
        .field("acceptance", acceptance)
        .field("grid", Json::array(grid_rows))
        .field("delivery", Json::array(delivery_rows))
        .build()
}
