//! In-repo wall-clock benchmark harness (the Criterion replacement for the
//! hermetic build).
//!
//! The workspace must build and bench with zero registry access, so the
//! Criterion benches are rewritten on this small timer: each benchmark runs
//! a calibrated number of iterations per sample and reports the **median**
//! (plus min/max) nanoseconds per iteration across samples. Median-of-N is
//! robust to the occasional scheduler hiccup without Criterion's outlier
//! machinery.
//!
//! Results print as an aligned table and are written as a JSON sidecar
//! (`bench-<suite>.json` in the working directory) that `impress_json`
//! round-trips, so downstream tooling keeps a machine-readable record.
//!
//! Environment overrides:
//!
//! * `IMPRESS_BENCH_SAMPLES` — samples per benchmark (default 11, min 3).
//! * `IMPRESS_BENCH_MAX_SECS` — soft per-benchmark time budget in seconds
//!   (default 2.0). Slow bodies fall back to 3 samples of 1 iteration.

pub use std::hint::black_box;

use impress_json::{json_struct, Json};
use std::time::{Duration, Instant};

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Benchmark identifier (`suite/case/param`).
    pub id: String,
    /// Median ns/iteration across samples.
    pub median_ns: u64,
    /// Fastest sample's ns/iteration.
    pub min_ns: u64,
    /// Slowest sample's ns/iteration.
    pub max_ns: u64,
    /// Iterations per timed sample (calibrated from a warm-up call).
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
}
json_struct!(BenchResult {
    id,
    median_ns,
    min_ns,
    max_ns,
    iters_per_sample,
    samples
});

impl BenchResult {
    /// Median seconds per iteration.
    pub fn median_secs(&self) -> f64 {
        self.median_ns as f64 / 1e9
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Human-friendly rendering of a ns/iteration figure.
pub fn format_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.2} µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

/// A named collection of benchmarks; create one per bench binary.
pub struct Suite {
    name: String,
    results: Vec<BenchResult>,
    samples: usize,
    max_budget: Duration,
}

impl Suite {
    /// Start a suite. `name` becomes the JSON sidecar's stem.
    pub fn new(name: impl Into<String>) -> Suite {
        let name = name.into();
        eprintln!("benchmark suite `{name}` (in-repo timing harness)");
        Suite {
            name,
            results: Vec::new(),
            samples: env_u64("IMPRESS_BENCH_SAMPLES", 11).max(3) as usize,
            max_budget: Duration::from_secs_f64(env_f64("IMPRESS_BENCH_MAX_SECS", 2.0).max(0.1)),
        }
    }

    /// Time `f`, recording median-of-N ns/iteration under `id`. The result
    /// of each call is passed through [`black_box`] so the optimizer cannot
    /// delete the measured work.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) {
        // Warm-up call doubles as the calibration probe.
        let warm_start = Instant::now();
        black_box(f());
        let warm = warm_start.elapsed().max(Duration::from_nanos(1));

        // Calibrate: fast bodies get batched into ~10 ms samples; bodies too
        // slow for the budget fall back to 3 samples of 1 iteration.
        let (iters, samples) = if warm * 3 > self.max_budget {
            (1u64, 3usize)
        } else {
            let target = (self.max_budget / self.samples as u32).min(Duration::from_millis(10));
            let iters = (target.as_nanos() / warm.as_nanos()).clamp(1, 1_000_000) as u64;
            let per_sample = warm * iters as u32;
            let affordable = (self.max_budget.as_nanos() / per_sample.as_nanos().max(1)) as usize;
            (iters, affordable.clamp(3, self.samples))
        };

        let mut per_iter_ns: Vec<u64> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                (start.elapsed().as_nanos() as u64) / iters
            })
            .collect();
        per_iter_ns.sort_unstable();

        let result = BenchResult {
            id: id.to_string(),
            median_ns: per_iter_ns[per_iter_ns.len() / 2],
            min_ns: per_iter_ns[0],
            max_ns: *per_iter_ns.last().expect("at least 3 samples"),
            iters_per_sample: iters,
            samples,
        };
        eprintln!(
            "  {:<44} {:>12}/iter  (min {}, max {}, {}×{} iters)",
            result.id,
            format_ns(result.median_ns),
            format_ns(result.min_ns),
            format_ns(result.max_ns),
            result.samples,
            result.iters_per_sample,
        );
        self.results.push(result);
    }

    /// Results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print the summary table and write the JSON sidecar.
    pub fn finish(self) {
        println!("\nsuite `{}` — median ns/iteration", self.name);
        for r in &self.results {
            println!("  {:<44} {:>12}", r.id, format_ns(r.median_ns));
        }
        let json = Json::object()
            .field("suite", self.name.as_str())
            .field("results", &self.results)
            .build();
        let path = format!("bench-{}.json", self.name);
        match std::fs::write(&path, impress_json::to_string_pretty(&json)) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_sane_timings() {
        std::env::set_var("IMPRESS_BENCH_MAX_SECS", "0.2");
        let mut suite = Suite::new("timing-selftest");
        suite.bench("sum_1k", || (0..1000u64).sum::<u64>());
        let r = &suite.results()[0];
        assert_eq!(r.id, "sum_1k");
        assert!(r.median_ns > 0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.samples >= 3);
    }

    #[test]
    fn results_round_trip_json() {
        let r = BenchResult {
            id: "x/y/8".into(),
            median_ns: 1234,
            min_ns: 1000,
            max_ns: 2000,
            iters_per_sample: 64,
            samples: 11,
        };
        let text = impress_json::to_string(&r);
        let back: BenchResult = impress_json::from_str(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn format_ns_picks_units() {
        assert_eq!(format_ns(500), "500 ns");
        assert_eq!(format_ns(25_000), "25.00 µs");
        assert_eq!(format_ns(25_000_000), "25.00 ms");
        assert_eq!(format_ns(12_000_000_000), "12.00 s");
    }
}
