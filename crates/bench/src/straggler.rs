//! The straggler study (beyond the paper, "Fig. 7"): gray-failure
//! mitigation on a degraded cluster.
//!
//! The resilience study stresses *binary* faults — crashes, outages,
//! transient task failures. Shared allocations more often degrade than
//! die: a node keeps accepting work but runs everything it hosts several
//! times slower, and a poisoned lineage fails deterministically no matter
//! where it lands. This harness sweeps slowdown severity (healthy / 4x /
//! 10x / 20x on two of eight nodes) × hedging policy (off / k=2 / k=3) ×
//! poison-task quarantine (off / on) on the simulated backend, and reports
//! makespan, utilization, retry waste, hedge waste, and lineage verdicts
//! per cell.
//!
//! Poison tasks are modeled as walltime-doomed lineages: their modeled
//! span exceeds their walltime limit, so every attempt on every node is
//! killed at the limit — the deterministic-failure analogue the
//! quarantine policy exists to catch.

use impress_json::Json;
use impress_pilot::{
    ExecutionBackend, FaultConfig, FaultPlan, HedgePolicy, NodeSpec, PilotConfig, PlacementPolicy,
    QuarantinePolicy, ResourceRequest, RetryPolicy, RuntimeConfig, ScriptedSlowdown,
    TaskDescription, TaskError,
};
use impress_sim::{SimDuration, SimTime};

/// Format version stamped into `straggler.json`; the hermetic guard pins
/// it so a schema change without regeneration fails `cargo test`.
pub const STRAGGLER_FORMAT_VERSION: u32 = 1;

/// Slowdown severity axis: runtime multiplier on the degraded nodes
/// (1.0 = healthy, no windows injected).
const SEVERITIES: [(&str, f64); 4] = [("healthy", 1.0), ("4x", 4.0), ("10x", 10.0), ("20x", 20.0)];

/// Hedging axis: straggler threshold `k`, or off.
const HEDGES: [(&str, Option<f64>); 3] = [("off", None), ("k2", Some(2.0)), ("k3", Some(3.0))];

/// Quarantine axis: off, or poisoned after 2 distinct-node failures with
/// the per-shape breaker tripping once half the poison cohort is proven.
const QUARANTINES: [(&str, bool); 2] = [("off", false), ("on", true)];

/// Knobs of one study run; [`StudyParams::paper`] is the checked-in
/// artifact, [`StudyParams::smoke`] a seconds-scale tier-1 variant.
#[derive(Debug, Clone)]
pub struct StudyParams {
    /// Cluster width.
    pub nodes: u32,
    /// Cores per node (CPU-only study).
    pub cores_per_node: u32,
    /// Nodes 0..slow_nodes carry the slowdown windows.
    pub slow_nodes: u32,
    /// Healthy single-core design tasks.
    pub design_tasks: usize,
    /// Walltime-doomed two-core poison lineages.
    pub poison_tasks: usize,
    /// Shortest design-task modeled runtime, seconds.
    pub task_secs_base: u64,
    /// Design-task runtimes spread deterministically over
    /// `[base, base + spread)`.
    pub task_secs_spread: u64,
    /// Walltime limit on poison tasks (their modeled span is 4× this, so
    /// every attempt expires).
    pub poison_walltime_secs: u64,
    /// Retry budget burnt by unquarantined poison lineages.
    pub retry_budget: u32,
    /// Poisoned lineages of the poison shape before the breaker sheds it.
    pub shape_trip: u32,
    /// Pilot bootstrap, seconds.
    pub bootstrap_secs: u64,
    /// Per-task execution setup, seconds.
    pub exec_setup_secs: u64,
}

impl StudyParams {
    /// The checked-in artifact's shape: 8 × 8-core nodes, two of them
    /// degraded, 200 design tasks and 6 poison lineages.
    pub fn paper() -> Self {
        StudyParams {
            nodes: 8,
            cores_per_node: 8,
            slow_nodes: 2,
            design_tasks: 200,
            poison_tasks: 6,
            task_secs_base: 480,
            task_secs_spread: 241,
            poison_walltime_secs: 300,
            retry_budget: 6,
            shape_trip: 3,
            bootstrap_secs: 120,
            exec_setup_secs: 10,
        }
    }

    /// A seconds-scale variant exercising every code path under
    /// `cargo test`.
    pub fn smoke() -> Self {
        StudyParams {
            nodes: 4,
            cores_per_node: 4,
            slow_nodes: 1,
            design_tasks: 24,
            poison_tasks: 2,
            task_secs_base: 480,
            task_secs_spread: 241,
            poison_walltime_secs: 300,
            retry_budget: 4,
            shape_trip: 1,
            bootstrap_secs: 120,
            exec_setup_secs: 10,
        }
    }

    /// Core-seconds one poison attempt burns: two cores held for exec
    /// setup plus the walltime limit.
    fn poison_attempt_core_seconds(&self) -> f64 {
        2.0 * (self.exec_setup_secs + self.poison_walltime_secs) as f64
    }
}

/// Measured outcome of one grid cell.
struct CellResult {
    severity: &'static str,
    factor: f64,
    hedge: &'static str,
    quarantine: &'static str,
    makespan_secs: f64,
    cpu: f64,
    completed: usize,
    retries: usize,
    wasted_core_seconds: f64,
    hedges: usize,
    hedge_wasted_core_seconds: f64,
    poisoned: usize,
    shed: usize,
    timed_out: usize,
}

fn run_cell(
    p: &StudyParams,
    severity: (&'static str, f64),
    hedge: (&'static str, Option<f64>),
    quarantine: (&'static str, bool),
    seed: u64,
) -> CellResult {
    let config = PilotConfig {
        node: NodeSpec::new(p.cores_per_node, 0, 64),
        nodes: p.nodes,
        policy: PlacementPolicy::Backfill,
        bootstrap: SimDuration::from_secs(p.bootstrap_secs),
        exec_setup_per_task: SimDuration::from_secs(p.exec_setup_secs),
        seed,
    };
    let mut fc = FaultConfig::none();
    if severity.1 > 1.0 {
        // Persistently degraded nodes: one window per slow node covering
        // the whole campaign.
        for node in 0..p.slow_nodes {
            fc.scripted_slowdowns.push(ScriptedSlowdown {
                node,
                at: SimTime::ZERO,
                duration: SimDuration::from_hours(48),
                factor: severity.1,
            });
        }
    }
    let mut rt = RuntimeConfig::new(config).faults(
        FaultPlan::new(fc, seed ^ 0x57A6),
        RetryPolicy::retries(p.retry_budget),
    );
    if let Some(k) = hedge.1 {
        rt = rt.hedge(HedgePolicy::k(k));
    }
    if quarantine.1 {
        rt = rt.quarantine(QuarantinePolicy::distinct(2).with_shape_trip(p.shape_trip));
    }
    let mut backend = rt.simulated();
    for i in 0..p.design_tasks {
        let secs = p.task_secs_base + (i as u64 * 37) % p.task_secs_spread;
        backend.submit(TaskDescription::new(
            format!("design-{i}"),
            ResourceRequest::cores(1),
            SimDuration::from_secs(secs),
        ));
    }
    for i in 0..p.poison_tasks {
        backend.submit(
            TaskDescription::new(
                format!("poison-{i}"),
                ResourceRequest::cores(2),
                SimDuration::from_secs(4 * p.poison_walltime_secs),
            )
            .with_walltime(SimDuration::from_secs(p.poison_walltime_secs)),
        );
    }
    let (mut completed, mut poisoned, mut shed, mut timed_out) = (0, 0, 0, 0);
    while let Some(done) = backend.next_completion() {
        match done.failure() {
            None => completed += 1,
            Some(TaskError::Poisoned { .. }) => poisoned += 1,
            Some(TaskError::ShapeCircuitOpen { .. }) => shed += 1,
            Some(TaskError::TimedOut { .. }) => timed_out += 1,
            // Spelled out (no catch-all) so a new error variant forces a
            // decision here instead of silently panicking a bench run.
            Some(
                e @ (TaskError::Canceled
                | TaskError::Injected
                | TaskError::NodeCrashed { .. }
                | TaskError::LeaseExpired { .. }
                | TaskError::WorkPanicked(_)),
            ) => panic!("unexpected failure in the straggler study: {e}"),
        }
    }
    let u = backend.utilization();
    CellResult {
        severity: severity.0,
        factor: severity.1,
        hedge: hedge.0,
        quarantine: quarantine.0,
        makespan_secs: u.makespan.as_secs_f64(),
        cpu: u.cpu,
        completed,
        retries: u.retries,
        wasted_core_seconds: u.wasted_core_seconds,
        hedges: u.hedges,
        hedge_wasted_core_seconds: u.hedge_wasted_core_seconds,
        poisoned,
        shed,
        timed_out,
    }
}

fn cell<'a>(rows: &'a [CellResult], s: &str, h: &str, q: &str) -> &'a CellResult {
    rows.iter()
        .find(|r| r.severity == s && r.hedge == h && r.quarantine == q)
        .expect("grid cell present")
}

/// Run the full grid and assemble the `straggler.json` document.
///
/// The `acceptance` section restates the study's two claims as measured
/// numbers: hedging at k=2 recovers the majority of the makespan a
/// 10x-slowdown tail costs, and quarantine bounds the core-seconds a
/// poisoned lineage can burn to `distinct_nodes × attempt cost`.
pub fn run_study(p: &StudyParams, seed: u64) -> Json {
    let mut rows = Vec::new();
    for severity in SEVERITIES {
        for hedge in HEDGES {
            for quarantine in QUARANTINES {
                rows.push(run_cell(p, severity, hedge, quarantine, seed));
            }
        }
    }

    // Tail-recovery claim, measured with quarantine on in every arm so the
    // poison cohort's retry ladder does not mask the straggler tail.
    let healthy = cell(&rows, "healthy", "off", "on").makespan_secs;
    let tail = cell(&rows, "10x", "off", "on").makespan_secs;
    let hedged = cell(&rows, "10x", "k2", "on").makespan_secs;
    let lost = tail - healthy;
    let recovered = if lost > 0.0 { (tail - hedged) / lost } else { 0.0 };

    // Poison-waste claim: with quarantine on, every cell's retry waste —
    // design tasks never fail, so it is all poison waste — stays under
    // `lineages × distinct_nodes × attempt cost`.
    let waste_bound = p.poison_tasks as f64 * 2.0 * p.poison_attempt_core_seconds();
    let quarantined_waste = cell(&rows, "healthy", "off", "on").wasted_core_seconds;
    let unquarantined_waste = cell(&rows, "healthy", "off", "off").wasted_core_seconds;
    let bounded_everywhere = rows
        .iter()
        .filter(|r| r.quarantine == "on")
        .all(|r| r.wasted_core_seconds <= waste_bound + 1e-6);

    let acceptance = Json::object()
        .field("makespan_healthy_secs", healthy)
        .field("makespan_10x_unhedged_secs", tail)
        .field("makespan_10x_k2_secs", hedged)
        .field("tail_loss_secs", lost)
        .field("k2_recovered_fraction", recovered)
        .field("k2_recovers_majority", recovered >= 0.5)
        .field("poison_waste_bound_core_seconds", waste_bound)
        .field("quarantined_waste_core_seconds", quarantined_waste)
        .field("unquarantined_waste_core_seconds", unquarantined_waste)
        .field("quarantine_bounds_poison_waste", bounded_everywhere)
        .build();

    let json_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::object()
                .field("severity", r.severity)
                .field("factor", r.factor)
                .field("hedge", r.hedge)
                .field("quarantine", r.quarantine)
                .field("makespan_secs", r.makespan_secs)
                .field("cpu", r.cpu)
                .field("completed", r.completed)
                .field("retries", r.retries)
                .field("wasted_core_seconds", r.wasted_core_seconds)
                .field("hedges", r.hedges)
                .field("hedge_wasted_core_seconds", r.hedge_wasted_core_seconds)
                .field("poisoned", r.poisoned)
                .field("shed", r.shed)
                .field("timed_out", r.timed_out)
                .build()
        })
        .collect();

    Json::object()
        .field("format_version", STRAGGLER_FORMAT_VERSION)
        .field("seed", seed)
        .field("nodes", p.nodes)
        .field("cores_per_node", p.cores_per_node)
        .field("slow_nodes", p.slow_nodes)
        .field("design_tasks", p.design_tasks)
        .field("poison_tasks", p.poison_tasks)
        .field("poison_walltime_secs", p.poison_walltime_secs)
        .field("retry_budget", p.retry_budget)
        .field("acceptance", acceptance)
        .field("rows", Json::array(json_rows))
        .build()
}
