//! Shared experiment setup for the table/figure binaries.

use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::{run_cont_v_experiment, run_imrp, ExperimentResult};
use impress_core::{ProtocolConfig, Table1Row};
use impress_proteins::datasets::{mined_pdz_complexes, named_pdz_domains};
use impress_proteins::MetricKind;

/// Master seed used by all paper harnesses; override with the
/// `IMPRESS_SEED` environment variable.
pub fn master_seed() -> u64 {
    std::env::var("IMPRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2025)
}

/// Both arms of the paper's primary (4-domain) experiment.
pub struct PaperExperiment {
    /// The sequential control arm.
    pub cont_v: ExperimentResult,
    /// The adaptive arm.
    pub imrp: ExperimentResult,
    /// Number of design targets.
    pub structures: usize,
}

/// Run the primary experiment: 4 named PDZ domains × α-synuclein 10-mer,
/// 4 design cycles, CONT-V vs IM-RP, on the simulated Amarel node.
pub fn paper_experiment(seed: u64) -> PaperExperiment {
    let targets = named_pdz_domains(seed);
    let cont_v = run_cont_v_experiment(&targets, ProtocolConfig::cont_v(seed));
    let imrp = run_imrp(
        &targets,
        ProtocolConfig::imrp(seed),
        AdaptivePolicy::default(),
    );
    PaperExperiment {
        cont_v,
        imrp,
        structures: targets.len(),
    }
}

impl PaperExperiment {
    /// Table I rows (CONT-V first, like the paper).
    pub fn table1(&self) -> (Table1Row, Table1Row) {
        (
            Table1Row::from_result(&self.cont_v, self.structures),
            Table1Row::from_result(&self.imrp, self.structures),
        )
    }
}

/// Run the expanded experiment (Fig. 3): `n` mined PDZ–peptide complexes ×
/// α-synuclein 4-mer, adaptivity *not* enforced in the final cycle.
pub fn expanded_experiment(seed: u64, n: usize) -> ExperimentResult {
    let targets = mined_pdz_complexes(seed, n);
    let mut config = ProtocolConfig::imrp(seed);
    config.adaptive_final_cycle = false;
    run_imrp(
        &targets,
        config,
        AdaptivePolicy {
            // The paper's expanded run spawned 96 sub-pipelines over 70
            // complexes; scale the budget with the target count.
            sub_budget: n * 96 / 70,
            ..AdaptivePolicy::default()
        },
    )
}

/// Print one Fig. 2/3-style panel: per-iteration median ± σ/2 for a metric.
pub fn print_metric_panel(result: &ExperimentResult, metric: MetricKind) {
    let series = result.series(metric);
    println!(
        "  {:<6} {}",
        metric.label(),
        if metric.higher_is_better() {
            "(higher is better)"
        } else {
            "(lower is better)"
        }
    );
    for ((it, summary), half) in series
        .iterations
        .iter()
        .zip(&series.summaries)
        .zip(series.half_stds())
    {
        println!(
            "    iter {it}: median {:>8.3}  ± {:>6.3} (σ/2)   [n={}]",
            summary.median, half, summary.n
        );
    }
}

/// Render a Fig. 2/3-style grouped bar panel: one bar per iteration, bar
/// height = median, whisker = ± half σ, scaled into `height` text rows.
/// `groups` pairs a label with (medians, half_stds) series.
pub fn bar_panel(
    metric: impress_proteins::MetricKind,
    iterations: &[u32],
    groups: &[(&str, Vec<f64>, Vec<f64>)],
    height: usize,
) -> String {
    assert!(height >= 4, "panel too short");
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, meds, errs) in groups {
        for (m, e) in meds.iter().zip(errs) {
            lo = lo.min(m - e);
            hi = hi.max(m + e);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return format!("{metric}: (no data)\n");
    }
    let pad = ((hi - lo) * 0.15).max(1e-9);
    let (lo, hi) = (lo - pad, hi + pad);
    let row_of =
        |v: f64| -> usize { (((v - lo) / (hi - lo)) * (height - 1) as f64).round() as usize };
    // Columns: per iteration, one bar per group plus a spacer.
    let ncols = iterations.len() * (groups.len() + 1);
    let mut grid = vec![vec![' '; ncols]; height];
    for (it_idx, _) in iterations.iter().enumerate() {
        for (g_idx, (_, meds, errs)) in groups.iter().enumerate() {
            let Some(&median) = meds.get(it_idx) else {
                continue;
            };
            let err = errs.get(it_idx).copied().unwrap_or(0.0);
            let col = it_idx * (groups.len() + 1) + g_idx;
            let bar_top = row_of(median);
            for row in grid.iter_mut().take(bar_top + 1) {
                row[col] = if g_idx == 0 { '█' } else { '▓' };
            }
            let (w_lo, w_hi) = (row_of(median - err), row_of(median + err));
            for row in grid.iter_mut().take(w_hi + 1).skip(w_lo) {
                if row[col] == ' ' {
                    row[col] = '|';
                }
            }
        }
    }
    let mut out = format!(
        "{} ({})\n",
        metric.label(),
        if metric.higher_is_better() {
            "higher is better"
        } else {
            "lower is better"
        }
    );
    for r in (0..height).rev() {
        let val = lo + (hi - lo) * r as f64 / (height - 1) as f64;
        out.push_str(&format!(
            "{val:>8.2} {}\n",
            grid[r].iter().collect::<String>()
        ));
    }
    out.push_str("         ");
    for it in iterations {
        out.push_str(&format!("i{it:<width$}", width = groups.len()));
    }
    out.push('\n');
    let legend: Vec<String> = groups
        .iter()
        .enumerate()
        .map(|(i, (label, _, _))| format!("{} {label}", if i == 0 { '█' } else { '▓' }))
        .collect();
    out.push_str(&format!("         {}\n", legend.join("   ")));
    out
}

/// Render a utilization series as a compact ASCII sparkline (one char per
/// bin, 0–100% mapped onto nine levels).
pub fn sparkline(series: &[f64]) -> String {
    const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    series
        .iter()
        .map(|v| LEVELS[((v.clamp(0.0, 1.0)) * 8.0).round() as usize])
        .collect()
}

/// Downsample a series to at most `max` points by bin-averaging, so long
/// runs still fit a terminal line.
pub fn downsample(series: &[f64], max: usize) -> Vec<f64> {
    if series.len() <= max || max == 0 {
        return series.to_vec();
    }
    let chunk = series.len().div_ceil(max);
    series
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_maps_levels() {
        assert_eq!(sparkline(&[0.0, 0.5, 1.0]), " ▄█");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn bar_panel_renders_bars_whiskers_and_legend() {
        let text = bar_panel(
            impress_proteins::MetricKind::Plddt,
            &[1, 2],
            &[
                ("A", vec![60.0, 70.0], vec![2.0, 1.0]),
                ("B", vec![65.0, 75.0], vec![1.0, 1.0]),
            ],
            8,
        );
        assert!(text.contains('█'), "{text}");
        assert!(text.contains('▓'), "{text}");
        assert!(text.contains('|'), "whiskers: {text}");
        assert!(text.contains("A") && text.contains("B"));
        assert!(text.contains("i1") && text.contains("i2"));
        // Taller series must produce a taller bar: count ▓ in the top row.
        let top_row = text.lines().nth(1).unwrap();
        assert!(!top_row.contains('█'), "A (60/70) must not reach the top");
    }

    #[test]
    fn bar_panel_handles_empty_series() {
        let text = bar_panel(
            impress_proteins::MetricKind::Ptm,
            &[],
            &[("A", vec![], vec![])],
            8,
        );
        assert!(text.contains("no data"));
    }

    #[test]
    fn downsample_preserves_mean() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ds = downsample(&series, 10);
        assert_eq!(ds.len(), 10);
        let mean_orig: f64 = series.iter().sum::<f64>() / 100.0;
        let mean_ds: f64 = ds.iter().sum::<f64>() / 10.0;
        assert!((mean_orig - mean_ds).abs() < 1e-9);
        assert_eq!(downsample(&series, 200).len(), 100);
    }
}
