//! Multi-tenant campaign-service study: 1k–10k concurrent campaigns on a
//! simulated 1,000-node cluster behind [`CampaignService`], written to
//! `BENCH_serve.json` by the `serve_bench` binary.
//!
//! Three quantities per grid cell:
//!
//! * **Campaign latency** — virtual seconds from submission to terminal
//!   state, p50/p99 across the fleet. All campaigns are submitted at
//!   `t = 0`, so latency is the service's end-to-end sojourn time under
//!   full contention.
//! * **Jain fairness** — `J = (Σx)² / (n·Σx²)` over per-tenant delivered
//!   core-seconds, equal weights and equal submitted load; `J = 1` is
//!   perfect fairness, and the artifact guard requires `J ≥ 0.9`.
//! * **Scheduler overhead** — wall time of the service cell divided by the
//!   wall time of the same campaigns driven as independent round-robin
//!   coordinators (the pre-service shape from `BENCH_coord.json`). This
//!   isolates what the service layer itself — admission, shared-cluster
//!   routing, weighted-fair stepping, boost rebalancing — costs on top of
//!   raw coordinator multiplexing.
//!
//! A separate **weighted cell** runs two tenants at weights 1 vs 4 on a
//! deliberately small cluster and reports their mean campaign latencies:
//! the weight-4 tenant must not finish later than the weight-1 tenant.
//!
//! The logic lives in the library (not the binary) so `tests/hermetic.rs`
//! can run a tiny smoke iteration under `cargo test`.

use impress_json::Json;
use impress_pilot::backend::SimulatedBackend;
use impress_pilot::{
    Completion, NodeSpec, PilotConfig, PlacementPolicy, ResourceRequest, TaskDescription,
};
use impress_sim::SimDuration;
use impress_workflow::service::{CampaignService, CampaignSpec, TenantId, TenantQuota};
use impress_workflow::{Coordinator, NoDecisions, PipelineLogic, Step};

/// Bumped whenever the JSON document layout changes; `tests/hermetic.rs`
/// checks the checked-in artifact against this.
pub const SERVE_BENCH_FORMAT_VERSION: u32 = 1;

/// A campaign pipeline: `stages` sequential single-core tasks whose
/// durations are a pure function of the campaign/pipeline identity, so the
/// fleet has a realistic latency spread without any nondeterminism.
struct ServePipeline {
    campaign: u64,
    pipeline: u64,
    stages: u32,
}

impl ServePipeline {
    fn next(&mut self) -> Step<u64> {
        if self.stages == 0 {
            return Step::Complete(self.campaign);
        }
        self.stages -= 1;
        let secs = 30 + (self.campaign * 13 + self.pipeline * 5 + u64::from(self.stages) * 7) % 90;
        Step::run(
            TaskDescription::new(
                "serve",
                ResourceRequest::cores(1),
                SimDuration::from_secs(secs),
            )
            .with_work(|| 0u64),
        )
    }
}

impl PipelineLogic<u64> for ServePipeline {
    fn name(&self) -> String {
        format!("serve-{}-{}", self.campaign, self.pipeline)
    }
    fn begin(&mut self) -> Step<u64> {
        self.next()
    }
    fn stage_done(&mut self, _: Vec<Completion>) -> Step<u64> {
        self.next()
    }
}

fn cluster_config(nodes: u32, cores_per_node: u32, seed: u64) -> PilotConfig {
    PilotConfig {
        node: NodeSpec::new(cores_per_node, 0, 16),
        nodes,
        policy: PlacementPolicy::Backfill,
        bootstrap: SimDuration::from_secs(60),
        exec_setup_per_task: SimDuration::from_secs(1),
        seed,
    }
}

fn campaign_spec(campaign: u64, pipelines: usize, stages: u32) -> CampaignSpec<u64> {
    let mut spec = CampaignSpec::new(format!("c{campaign}"));
    for p in 0..pipelines as u64 {
        spec = spec.root(Box::new(ServePipeline {
            campaign,
            pipeline: p,
            stages,
        }));
    }
    spec
}

fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = std::time::Instant::now();
    let r = f();
    (start.elapsed().as_secs_f64() * 1e3, r)
}

/// Jain's fairness index over per-tenant allocations: `(Σx)² / (n·Σx²)`,
/// 1.0 = perfectly fair. Empty or all-zero inputs are defined as 1.0 (a
/// service that delivered nothing delivered it evenly).
pub fn jain_index(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if n == 0.0 || sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n * sq)
}

/// One measured service grid cell.
pub struct ServeCell {
    /// Concurrent campaigns submitted.
    pub campaigns: usize,
    /// Tenants they were spread across (equal weights, round-robin).
    pub tenants: usize,
    /// Total tasks executed.
    pub tasks: u64,
    /// Wall ms to drain the whole service.
    pub wall_ms: f64,
    /// Virtual makespan (seconds) of the shared cluster.
    pub makespan_s: f64,
    /// p50 of campaign sojourn latency, virtual seconds.
    pub p50_latency_s: f64,
    /// p99 of campaign sojourn latency, virtual seconds.
    pub p99_latency_s: f64,
    /// Jain fairness index over per-tenant delivered core-seconds.
    pub jain: f64,
    /// Wall ms for the same campaigns as independent round-robin
    /// coordinators (no service layer).
    pub baseline_wall_ms: f64,
    /// `wall_ms / baseline_wall_ms` — the service layer's overhead factor.
    pub overhead_ratio: f64,
    /// Whether every campaign completed.
    pub all_completed: bool,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Run one equal-weights service cell: `campaigns` campaigns spread
/// round-robin over `tenants` equal-weight tenants on one shared
/// `nodes`-node cluster.
pub fn run_service_cell(
    campaigns: usize,
    tenants: usize,
    nodes: u32,
    cores_per_node: u32,
    pipelines: usize,
    stages: u32,
    seed: u64,
) -> ServeCell {
    let backend = SimulatedBackend::new(cluster_config(nodes, cores_per_node, seed));
    let mut service: CampaignService<u64, _> = CampaignService::new(backend);
    let ids: Vec<TenantId> = (0..tenants)
        .map(|t| {
            let id = TenantId::new(format!("tenant-{t}"));
            service.register_tenant(id.clone(), TenantQuota::unmetered(campaigns));
            id
        })
        .collect();
    let handles: Vec<_> = (0..campaigns)
        .map(|c| {
            service
                .submit(
                    &ids[c % tenants],
                    campaign_spec(c as u64, pipelines, stages),
                )
                .expect("admission under unmetered quota")
        })
        .collect();
    let (wall_ms, ()) = timed(|| service.run());

    let mut latencies: Vec<f64> = Vec::with_capacity(campaigns);
    let mut completed = 0usize;
    for h in &handles {
        let r = service.take_result(h).expect("campaign result");
        if r.status == impress_workflow::service::CampaignStatus::Completed {
            completed += 1;
        }
        latencies.push((r.finished_at - r.submitted_at).as_secs_f64());
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let per_tenant: Vec<f64> = ids
        .iter()
        .map(|id| service.tenant_usage(id).expect("registered").core_seconds)
        .collect();
    let util = service.utilization();

    // Baseline: identical campaigns as independent coordinators, each on
    // its own proportional slice of the cluster, driven round-robin on one
    // thread — the pre-service multiplexing shape.
    let slice_nodes = (u64::from(nodes) * u64::from(cores_per_node) / campaigns as u64).max(1);
    let (baseline_wall_ms, ()) = timed(|| {
        let mut fleet: Vec<_> = (0..campaigns)
            .map(|c| {
                let cfg = cluster_config(slice_nodes as u32, cores_per_node, seed ^ c as u64);
                let mut coordinator = Coordinator::new(SimulatedBackend::new(cfg), NoDecisions);
                for p in 0..pipelines as u64 {
                    coordinator.add_pipeline(Box::new(ServePipeline {
                        campaign: c as u64,
                        pipeline: p,
                        stages,
                    }));
                }
                coordinator
            })
            .collect();
        let mut alive: Vec<usize> = (0..fleet.len()).collect();
        while !alive.is_empty() {
            alive.retain(|&i| fleet[i].step());
        }
    });

    ServeCell {
        campaigns,
        tenants,
        tasks: util.tasks as u64,
        wall_ms,
        makespan_s: service.now().as_secs_f64(),
        p50_latency_s: percentile(&latencies, 0.50),
        p99_latency_s: percentile(&latencies, 0.99),
        jain: jain_index(&per_tenant),
        baseline_wall_ms,
        overhead_ratio: if baseline_wall_ms > 0.0 {
            wall_ms / baseline_wall_ms
        } else {
            1.0
        },
        all_completed: completed == campaigns,
    }
}

/// The weighted-fairness cell result: two tenants, weights 1 vs 4, equal
/// submitted load, on a deliberately contended cluster.
pub struct WeightedCell {
    /// Campaigns per tenant.
    pub campaigns_per_tenant: usize,
    /// Mean campaign latency of the weight-1 tenant, virtual seconds.
    pub light_mean_latency_s: f64,
    /// Mean campaign latency of the weight-4 tenant, virtual seconds.
    pub heavy_mean_latency_s: f64,
}

impl WeightedCell {
    /// `light / heavy` mean-latency ratio — ≥ 1 means the weighted tenant
    /// was served at least as well.
    pub fn latency_ratio(&self) -> f64 {
        if self.heavy_mean_latency_s > 0.0 {
            self.light_mean_latency_s / self.heavy_mean_latency_s
        } else {
            1.0
        }
    }
}

/// Run the weighted cell: `campaigns_per_tenant` identical campaigns for a
/// weight-1 and a weight-4 tenant on a small shared cluster.
pub fn run_weighted_cell(
    campaigns_per_tenant: usize,
    nodes: u32,
    cores_per_node: u32,
    pipelines: usize,
    stages: u32,
    seed: u64,
) -> WeightedCell {
    let backend = SimulatedBackend::new(cluster_config(nodes, cores_per_node, seed));
    let mut service: CampaignService<u64, _> = CampaignService::new(backend);
    let light = TenantId::new("light");
    let heavy = TenantId::new("heavy");
    service.register_tenant(
        light.clone(),
        TenantQuota::unmetered(campaigns_per_tenant).with_weight(1),
    );
    service.register_tenant(
        heavy.clone(),
        TenantQuota::unmetered(campaigns_per_tenant).with_weight(4),
    );
    let mut light_handles = Vec::new();
    let mut heavy_handles = Vec::new();
    for c in 0..campaigns_per_tenant as u64 {
        // Identical campaign shapes for both tenants: only the weight
        // differs, so any latency gap is the fair-share layer at work.
        light_handles.push(
            service
                .submit(&light, campaign_spec(c, pipelines, stages))
                .expect("admitted"),
        );
        heavy_handles.push(
            service
                .submit(&heavy, campaign_spec(c, pipelines, stages))
                .expect("admitted"),
        );
    }
    service.run();
    let mean = |handles: &[impress_workflow::service::CampaignHandle],
                service: &mut CampaignService<u64, SimulatedBackend>| {
        let mut sum = 0.0;
        for h in handles {
            let r = service.take_result(h).expect("result");
            sum += (r.finished_at - r.submitted_at).as_secs_f64();
        }
        sum / handles.len().max(1) as f64
    };
    let light_mean = mean(&light_handles, &mut service);
    let heavy_mean = mean(&heavy_handles, &mut service);
    WeightedCell {
        campaigns_per_tenant,
        light_mean_latency_s: light_mean,
        heavy_mean_latency_s: heavy_mean,
    }
}

/// Knobs for one study run; [`StudyParams::full`] is what the study uses,
/// [`StudyParams::smoke`] is the tiny `cargo test` iteration.
pub struct StudyParams {
    /// Concurrent-campaign counts to sweep (the ROADMAP's 1k–10k axis).
    pub campaign_grid: Vec<usize>,
    /// Equal-weight tenants per cell.
    pub tenants: usize,
    /// Cluster nodes.
    pub nodes: u32,
    /// Cores per node.
    pub cores_per_node: u32,
    /// Root pipelines per campaign.
    pub pipelines: usize,
    /// Stages per pipeline.
    pub stages: u32,
    /// Campaigns per tenant in the weighted cell.
    pub weighted_campaigns: usize,
    /// Cluster nodes for the weighted cell (small, so weights matter).
    pub weighted_nodes: u32,
}

impl StudyParams {
    /// The full study grid — what `serve_bench` runs and checks in:
    /// 1k/4k/10k concurrent campaigns on a simulated 1,000-node cluster.
    pub fn full() -> Self {
        StudyParams {
            campaign_grid: vec![1_000, 4_000, 10_000],
            tenants: 25,
            nodes: 1_000,
            cores_per_node: 4,
            pipelines: 2,
            stages: 3,
            weighted_campaigns: 200,
            weighted_nodes: 25,
        }
    }

    /// A seconds-scale iteration for `cargo test`.
    pub fn smoke() -> Self {
        StudyParams {
            campaign_grid: vec![24],
            tenants: 4,
            nodes: 4,
            cores_per_node: 2,
            pipelines: 1,
            stages: 2,
            weighted_campaigns: 8,
            weighted_nodes: 2,
        }
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Run the study and build the `BENCH_serve.json` document.
pub fn run_study(params: &StudyParams, seed: u64) -> Json {
    let mut results = Vec::new();
    let mut max_campaigns = 0usize;
    let mut min_jain = f64::INFINITY;
    let mut headline_cell: Option<&ServeCell> = None;
    let mut cells = Vec::new();
    for &campaigns in &params.campaign_grid {
        let cell = run_service_cell(
            campaigns,
            params.tenants,
            params.nodes,
            params.cores_per_node,
            params.pipelines,
            params.stages,
            seed,
        );
        eprintln!(
            "  {:>6} campaigns / {:>3} tenants: wall {:>9.2} ms  p50 {:>8.0} s  p99 {:>8.0} s  jain {:.4}  overhead {:.2}x",
            cell.campaigns, cell.tenants, cell.wall_ms, cell.p50_latency_s, cell.p99_latency_s,
            cell.jain, cell.overhead_ratio
        );
        assert!(cell.all_completed, "every campaign must complete");
        max_campaigns = max_campaigns.max(campaigns);
        min_jain = min_jain.min(cell.jain);
        results.push(
            Json::object()
                .field("campaigns", cell.campaigns)
                .field("tenants", cell.tenants)
                .field("tasks", cell.tasks)
                .field("wall_ms", round2(cell.wall_ms))
                .field("virtual_makespan_s", round2(cell.makespan_s))
                .field("p50_latency_s", round2(cell.p50_latency_s))
                .field("p99_latency_s", round2(cell.p99_latency_s))
                .field("jain_fairness", (cell.jain * 1e4).round() / 1e4)
                .field("baseline_wall_ms", round2(cell.baseline_wall_ms))
                .field("overhead_ratio", round2(cell.overhead_ratio))
                .field("all_completed", cell.all_completed)
                .build(),
        );
        cells.push(cell);
    }
    if let Some(last) = cells.last() {
        headline_cell = Some(last);
    }
    let weighted = run_weighted_cell(
        params.weighted_campaigns,
        params.weighted_nodes,
        params.cores_per_node,
        params.pipelines,
        params.stages,
        seed,
    );
    eprintln!(
        "  weighted 1-vs-4: light mean {:.0} s  heavy mean {:.0} s  ratio {:.2}",
        weighted.light_mean_latency_s,
        weighted.heavy_mean_latency_s,
        weighted.latency_ratio()
    );
    let headline = headline_cell.expect("non-empty campaign grid");
    Json::object()
        .field("format_version", SERVE_BENCH_FORMAT_VERSION)
        .field("suite", "serve_bench")
        .field("seed", seed)
        .field(
            "cluster",
            Json::object()
                .field("nodes", params.nodes)
                .field("cores_per_node", params.cores_per_node)
                .build(),
        )
        .field("results", results)
        .field(
            "weighted",
            Json::object()
                .field("campaigns_per_tenant", weighted.campaigns_per_tenant)
                .field("light_weight", 1u64)
                .field("heavy_weight", 4u64)
                .field("light_mean_latency_s", round2(weighted.light_mean_latency_s))
                .field("heavy_mean_latency_s", round2(weighted.heavy_mean_latency_s))
                .field("latency_ratio", round2(weighted.latency_ratio()))
                .field("heavy_not_worse", weighted.latency_ratio() >= 1.0)
                .build(),
        )
        .field(
            "headline",
            Json::object()
                .field("max_concurrent_campaigns", max_campaigns)
                .field("p50_latency_s", round2(headline.p50_latency_s))
                .field("p99_latency_s", round2(headline.p99_latency_s))
                .field("min_jain_fairness", (min_jain * 1e4).round() / 1e4)
                .field("overhead_ratio", round2(headline.overhead_ratio))
                .field("fair_at_equal_weights", min_jain >= 0.9)
                .field("thousand_plus_campaigns", max_campaigns >= 1_000)
                .build(),
        )
        .build()
}
