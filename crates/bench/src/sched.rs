//! Scheduler-performance study: placement throughput micro-benchmarks plus
//! an end-to-end simulated IM-RP campaign timing, written to
//! `BENCH_scheduler.json` by the `sched_bench` binary.
//!
//! The study documents its own *before* shape: [`baseline`] pins the
//! numbers measured on the pre-optimization scheduler (BTreeSet slot
//! pools, linear-scan priority inserts, `Vec::remove`-shifting backfill,
//! one full placement rescan per simulation event) so the checked-in
//! artifact always carries the comparison point, even though that code now
//! survives only as the `#[cfg(test)]` reference oracle.
//!
//! The logic lives in the library (not the binary) so `tests/hermetic.rs`
//! can run a tiny smoke iteration under `cargo test` — bench code cannot
//! bit-rot between releases.

use crate::timing::{black_box, BenchResult, Suite};
use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::{run_imrp_on, run_imrp_traced};
use impress_core::ProtocolConfig;
use impress_json::Json;
use impress_pilot::{
    ClusterSpec, NodeSpec, PilotConfig, PlacementPolicy, ResourceRequest, Scheduler, TaskId,
};
use impress_proteins::datasets::mined_pdz_complexes;
use impress_telemetry::{NullSink, Telemetry};
use std::sync::Arc;

/// Bumped whenever the JSON document layout changes; `tests/hermetic.rs`
/// checks the checked-in artifact against this.
/// * v2 added the `telemetry_overhead` section (instrumented-but-null-sink
///   campaign wall time vs the telemetry-off baseline).
pub const SCHED_BENCH_FORMAT_VERSION: u32 = 2;

/// Pre-optimization measurements, taken at commit `e10e361` on the same
/// machine that produced the checked-in `BENCH_scheduler.json`.
///
/// Micro numbers are median ns per full enqueue→place→release cycle of the
/// standard [`task_stream`] (same ids as the live suite); the campaign
/// number is the median wall time of the 24-complex single-node IM-RP run.
pub mod baseline {
    /// Commit the baseline was measured at.
    pub const COMMIT: &str = "e10e361";
    /// What that scheduler looked like.
    pub const DESCRIPTION: &str = "BTreeSet slot pools, linear-scan priority insert, \
         Vec::remove backfill shifts, full placement rescan per event";
    /// `(bench id, median ns/iter)` for every case the old code was measured on.
    pub const MICRO_NS: &[(&str, u64)] = &[
        ("place_release_cycle/Fifo/64", 16_240),
        ("place_release_cycle/Backfill/64", 27_890),
        ("place_release_cycle/Fifo/256", 77_040),
        ("place_release_cycle/Backfill/256", 218_280),
        ("place_release_cycle/Fifo/1024", 358_330),
        ("place_release_cycle/Backfill/1024", 2_570_720),
        ("place_release_cycle/Fifo/8192", 15_950_000),
        ("place_release_cycle/Backfill/8192", 235_760_000),
        ("place_release_cycle_cluster/8x/2048", 69_000_000),
        ("place_release_cycle_cluster/32x/8192", 3_159_410_000),
    ];
    /// Median wall milliseconds of the 24-complex IM-RP campaign (5 samples).
    pub const IMRP_CAMPAIGN_WALL_MS: f64 = 118.5;
}

/// The deterministic heterogeneous task stream shaped like the protocol's
/// workload (6-core MSAs, 1-GPU inference/MPNN pairs, 1-core bookkeeping).
pub fn task_stream(n: usize) -> Vec<ResourceRequest> {
    (0..n)
        .map(|i| match i % 5 {
            0 => ResourceRequest::cores(6),        // MSA
            1 => ResourceRequest::with_gpus(2, 1), // inference
            2 => ResourceRequest::with_gpus(2, 1), // MPNN
            _ => ResourceRequest::cores(1),        // bookkeeping
        })
        .collect()
}

/// One full scheduler cycle: enqueue `stream`, then alternate placement
/// rounds with single releases until everything has run. Returns the task
/// count (for [`black_box`]ing). This is the placement-throughput kernel
/// shared by `benches/scheduler.rs` and the `sched_bench` study.
pub fn placement_cycle(policy: PlacementPolicy, nodes: u32, stream: &[ResourceRequest]) -> usize {
    let cluster = ClusterSpec::homogeneous(NodeSpec::amarel(), nodes);
    let mut s = Scheduler::new_cluster(cluster, policy);
    for (i, req) in stream.iter().enumerate() {
        s.enqueue(TaskId(i as u64), *req);
    }
    let mut running = Vec::new();
    let mut done = 0usize;
    while done < stream.len() {
        for pair in s.place_ready() {
            running.push(pair);
        }
        if let Some((_, alloc)) = running.pop() {
            done += 1;
            s.release(&alloc);
        }
    }
    done
}

/// Run one simulated IM-RP campaign (the scaling study's single-node row)
/// and return `(wall seconds, virtual makespan hours)`.
pub fn imrp_campaign(seed: u64, complexes: usize) -> (f64, f64) {
    let targets = mined_pdz_complexes(seed, complexes);
    let start = std::time::Instant::now();
    let result = run_imrp_on(
        &targets,
        ProtocolConfig::imrp(seed),
        AdaptivePolicy {
            sub_budget: complexes / 3,
            ..AdaptivePolicy::default()
        },
        PilotConfig::with_seed(seed),
    );
    (
        start.elapsed().as_secs_f64(),
        result.run.makespan.as_hours_f64(),
    )
}

/// Run the same campaign as [`imrp_campaign`] but with telemetry enabled
/// on a [`NullSink`] (every instrumentation point fires, nothing is
/// retained) and return wall seconds. The gap against the telemetry-off
/// run is the whole-subsystem overhead the "telemetry_overhead" section
/// of `BENCH_scheduler.json` documents.
pub fn imrp_campaign_null_sink(seed: u64, complexes: usize) -> f64 {
    let targets = mined_pdz_complexes(seed, complexes);
    let start = std::time::Instant::now();
    black_box(run_imrp_traced(
        &targets,
        ProtocolConfig::imrp(seed),
        AdaptivePolicy {
            sub_budget: complexes / 3,
            ..AdaptivePolicy::default()
        },
        PilotConfig::with_seed(seed),
        Telemetry::with_sink(Arc::new(NullSink)),
    ));
    start.elapsed().as_secs_f64()
}

/// Knobs for one study run; [`StudyParams::full`] is what the study uses,
/// [`StudyParams::smoke`] is the tiny `cargo test` iteration.
pub struct StudyParams {
    /// Single-node queue depths (each run under both policies).
    pub depths: Vec<usize>,
    /// `(nodes, tasks)` multi-node backfill cases.
    pub cluster_cases: Vec<(u32, usize)>,
    /// Cohort size for the end-to-end IM-RP campaign.
    pub campaign_complexes: usize,
    /// Wall-time samples of the campaign (median is reported).
    pub campaign_samples: usize,
}

impl StudyParams {
    /// The full study regenerating `BENCH_scheduler.json`.
    pub fn full() -> Self {
        StudyParams {
            depths: vec![64, 256, 1024, 8192],
            cluster_cases: vec![(8, 2048), (32, 8192)],
            campaign_complexes: 24,
            campaign_samples: 5,
        }
    }

    /// A seconds-scale iteration exercising every code path.
    pub fn smoke() -> Self {
        StudyParams {
            depths: vec![32],
            cluster_cases: vec![(2, 32)],
            campaign_complexes: 2,
            campaign_samples: 1,
        }
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

/// Run the study and build the `BENCH_scheduler.json` document.
pub fn run_study(params: &StudyParams, seed: u64) -> Json {
    let mut suite = Suite::new("sched_bench");
    for &n in &params.depths {
        for policy in [PlacementPolicy::Fifo, PlacementPolicy::Backfill] {
            let stream = task_stream(n);
            suite.bench(&format!("place_release_cycle/{policy:?}/{n}"), || {
                black_box(placement_cycle(policy, 1, &stream))
            });
        }
    }
    for &(nodes, n) in &params.cluster_cases {
        let stream = task_stream(n);
        suite.bench(&format!("place_release_cycle_cluster/{nodes}x/{n}"), || {
            black_box(placement_cycle(PlacementPolicy::Backfill, nodes, &stream))
        });
    }
    let results: Vec<BenchResult> = suite.results().to_vec();

    eprintln!(
        "end-to-end IM-RP campaign ({} complexes, {} samples)...",
        params.campaign_complexes, params.campaign_samples
    );
    let mut walls = Vec::new();
    let mut makespan_h = 0.0;
    for _ in 0..params.campaign_samples.max(1) {
        let (wall, h) = imrp_campaign(seed, params.campaign_complexes);
        walls.push(wall * 1e3);
        makespan_h = h;
    }
    let campaign_ms = median(walls);
    eprintln!("  campaign wall time: {campaign_ms:.1} ms (makespan {makespan_h:.2} h virtual)");

    eprintln!("same campaign, telemetry enabled on a null sink...");
    let mut null_walls = Vec::new();
    for _ in 0..params.campaign_samples.max(1) {
        null_walls.push(imrp_campaign_null_sink(seed, params.campaign_complexes) * 1e3);
    }
    let null_sink_ms = median(null_walls);
    let overhead_ratio = null_sink_ms / campaign_ms.max(1e-9);
    eprintln!("  null-sink wall time: {null_sink_ms:.1} ms ({overhead_ratio:.3}x baseline)");

    // Speedups against every baseline id the live suite also measured.
    let mut speedups = Vec::new();
    for &(id, before_ns) in baseline::MICRO_NS {
        if let Some(r) = results.iter().find(|r| r.id == id) {
            speedups.push(
                Json::object()
                    .field("id", id)
                    .field("before_ns", before_ns)
                    .field("after_ns", r.median_ns)
                    .field("speedup", before_ns as f64 / r.median_ns.max(1) as f64)
                    .build(),
            );
        }
    }

    Json::object()
        .field("format_version", SCHED_BENCH_FORMAT_VERSION)
        .field("suite", "sched_bench")
        .field("seed", seed)
        .field(
            "baseline",
            Json::object()
                .field("commit", baseline::COMMIT)
                .field("description", baseline::DESCRIPTION)
                .field(
                    "micro",
                    Json::array(
                        baseline::MICRO_NS
                            .iter()
                            .map(|&(id, ns)| {
                                Json::object()
                                    .field("id", id)
                                    .field("median_ns", ns)
                                    .build()
                            })
                            .collect::<Vec<_>>(),
                    ),
                )
                .field("imrp_campaign_wall_ms", baseline::IMRP_CAMPAIGN_WALL_MS)
                .build(),
        )
        .field("results", &results)
        .field(
            "imrp_campaign",
            Json::object()
                .field("complexes", params.campaign_complexes as u64)
                .field("samples", params.campaign_samples as u64)
                .field("wall_ms", campaign_ms)
                .field("makespan_hours", makespan_h)
                .field(
                    "speedup_vs_baseline",
                    baseline::IMRP_CAMPAIGN_WALL_MS / campaign_ms.max(1e-9),
                )
                .build(),
        )
        .field("speedups", Json::array(speedups))
        .field(
            "telemetry_overhead",
            Json::object()
                .field("off_wall_ms", campaign_ms)
                .field("null_sink_wall_ms", null_sink_ms)
                .field("overhead_ratio", overhead_ratio)
                .build(),
        )
        .build()
}
