//! Telemetry trace study: record a full IM-RP campaign through the
//! unified telemetry subsystem and document what the trace contains,
//! written to `trace_summary.json` by the `trace_study` binary.
//!
//! The study pins the subsystem's three contracts:
//!
//! 1. **Zero perturbation** — the traced campaign's `ExperimentResult`
//!    is byte-identical to the telemetry-off run (telemetry never draws
//!    from the simulation RNG or schedules engine events).
//! 2. **Well-formed traces** — the recorded stream passes
//!    [`check_nesting`] and the Chrome export round-trips through
//!    `impress-json` byte-for-byte.
//! 3. **Backend parity** — a serialized workload replayed on the
//!    simulated and threaded backends exports byte-identical
//!    virtual-clock traces (scheduler mechanics filtered out; see
//!    [`parity_trace`]).
//!
//! Every number in the summary document is deterministic (event counts,
//! span counts, metric counters — no wall-clock readings), so
//! regenerating the artifact on any machine reproduces it byte-for-byte.
//!
//! The logic lives in the library (not the binary) so `tests/hermetic.rs`
//! can run a tiny smoke iteration under `cargo test`.

use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::{run_imrp_on, run_imrp_traced};
use impress_core::ProtocolConfig;
use impress_json::{Json, ToJson};
use impress_pilot::{
    ExecutionBackend, PilotConfig, ResourceRequest, RuntimeConfig, TaskDescription,
};
use impress_proteins::datasets::mined_pdz_complexes;
use impress_sim::SimDuration;
use impress_telemetry::{
    check_nesting, write_chrome_trace, write_chrome_trace_filtered, SpanCat, Telemetry,
    TelemetryEvent, TraceClock,
};
use std::sync::{Arc, Condvar, Mutex};

/// Bumped whenever the JSON document layout changes; `tests/hermetic.rs`
/// checks the checked-in artifact against this.
/// * v2 extended the parity replay to three engines (simulated, threaded,
///   sharded) and records which engines were compared.
pub const TRACE_FORMAT_VERSION: u32 = 2;

/// Knobs for one study run; [`TraceParams::full`] is what the binary
/// uses, [`TraceParams::smoke`] is the tiny `cargo test` iteration.
pub struct TraceParams {
    /// Cohort size for the recorded IM-RP campaign.
    pub complexes: usize,
    /// Ring capacity for the trace recorder (the study asserts nothing
    /// was dropped, so this bounds the campaign it can record).
    pub ring_capacity: usize,
    /// Serialized task count for the cross-backend parity replay.
    pub parity_tasks: usize,
}

impl TraceParams {
    /// The full study regenerating `trace_summary.json`.
    pub fn full() -> Self {
        TraceParams {
            complexes: 24,
            ring_capacity: 1 << 21,
            parity_tasks: 8,
        }
    }

    /// A seconds-scale iteration exercising every code path.
    pub fn smoke() -> Self {
        TraceParams {
            complexes: 2,
            ring_capacity: 1 << 16,
            parity_tasks: 3,
        }
    }
}

/// Record a serialized workload on one backend and export its
/// virtual-clock Chrome trace as a canonical string.
///
/// The workload is the parity shape: full-node tasks (execution
/// serializes, so placement order is the scheduler's decision order) with
/// a max-priority gate task that — on the threaded backend — blocks the
/// node until every submission is enqueued. No completion can be
/// delivered while the gate holds the node, so every submission observes
/// virtual time zero on both backends and the modeled virtual clock
/// evolves exactly like the simulated one. Scheduler placement-round
/// spans are filtered out of the export: how many rounds the backend
/// polls is backend mechanics, not workload causality.
pub fn parity_trace(threaded: bool, seed: u64, tasks: usize) -> String {
    parity_trace_on(
        if threaded {
            ParityBackend::Threaded
        } else {
            ParityBackend::Simulated
        },
        seed,
        tasks,
    )
}

/// Which engine [`parity_trace_on`] replays the serialized workload on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParityBackend {
    /// The sequential virtual-time engine.
    Simulated,
    /// The sharded parallel-DES engine (default shard count).
    Sharded,
    /// Real threads with a virtual model clock.
    Threaded,
}

impl ParityBackend {
    /// Stable label for JSON documents.
    pub fn label(self) -> &'static str {
        match self {
            ParityBackend::Simulated => "simulated",
            ParityBackend::Sharded => "sharded",
            ParityBackend::Threaded => "threaded",
        }
    }
}

/// [`parity_trace`] generalized to any engine — see there for the
/// workload's construction and why the gate task makes the three virtual
/// clocks comparable.
pub fn parity_trace_on(which: ParityBackend, seed: u64, tasks: usize) -> String {
    let config = PilotConfig {
        bootstrap: SimDuration::from_secs(1),
        exec_setup_per_task: SimDuration::from_secs(2),
        ..PilotConfig::with_seed(seed)
    };
    let node = config.node;
    let full = ResourceRequest::with_gpus(node.cores, node.gpus);
    let (telemetry, recorder) = Telemetry::recording(1 << 16);
    let runtime = RuntimeConfig::new(config).telemetry(telemetry);
    let threaded = which == ParityBackend::Threaded;
    let mut backend: Box<dyn ExecutionBackend> = match which {
        ParityBackend::Simulated => Box::new(runtime.simulated()),
        ParityBackend::Sharded => Box::new(runtime.sharded()),
        ParityBackend::Threaded => Box::new(runtime.threaded()),
    };
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    {
        let gate = gate.clone();
        backend.submit(
            TaskDescription::new("gate", full, SimDuration::from_secs(1))
                .with_priority(i32::MAX)
                .with_work(move || {
                    if threaded {
                        let (lock, cv) = &*gate;
                        let mut open = lock.lock().expect("gate lock");
                        while !*open {
                            open = cv.wait(open).expect("gate wait");
                        }
                    }
                }),
        );
    }
    for i in 0..tasks {
        backend.submit(TaskDescription::new(
            format!("p{i}"),
            full,
            SimDuration::from_secs(5 + 3 * i as u64),
        ));
    }
    {
        let (lock, cv) = &*gate;
        *lock.lock().expect("gate lock") = true;
        cv.notify_all();
    }
    while backend.next_completion().is_some() {}
    let mut trace = String::new();
    write_chrome_trace_filtered(&mut trace, &recorder.events(), TraceClock::Virtual, |cat| {
        cat != SpanCat::Scheduler
    });
    trace
}

/// Count `Begin` events per span category, as sorted `(label, count)`
/// JSON rows.
fn span_counts(events: &[TelemetryEvent]) -> Json {
    let mut counts: std::collections::BTreeMap<&'static str, u64> = std::collections::BTreeMap::new();
    for ev in events {
        if let TelemetryEvent::Begin { cat, .. } = ev {
            *counts.entry(cat.as_str()).or_insert(0) += 1;
        }
    }
    let mut doc = Json::object();
    for (label, n) in counts {
        doc = doc.field(label, n);
    }
    doc.build()
}

/// Run the study and build the `trace_summary.json` document.
pub fn run_study(params: &TraceParams, seed: u64) -> Json {
    let targets = mined_pdz_complexes(seed, params.complexes);
    let config = ProtocolConfig::imrp(seed);
    let policy = AdaptivePolicy {
        sub_budget: params.complexes / 3,
        ..AdaptivePolicy::default()
    };
    let pilot = PilotConfig::with_seed(seed);

    eprintln!(
        "recording IM-RP campaign ({} complexes) with telemetry off, then on...",
        params.complexes
    );
    let baseline = run_imrp_on(&targets, config.clone(), policy.clone(), pilot.clone());
    let (telemetry, recorder) = Telemetry::recording(params.ring_capacity);
    let traced = run_imrp_traced(&targets, config, policy, pilot, telemetry.clone());
    let perturbation_free =
        impress_json::to_string(&baseline.to_json()) == impress_json::to_string(&traced.to_json());

    let events = recorder.events();
    let dropped = recorder.dropped();
    let nesting = check_nesting(&events);
    // Streaming fast path (no intermediate Json tree); the round-trip
    // check below re-parses it, so a parity break would fail loudly here
    // as well as in the exporter's own tests.
    let mut chrome_text = String::new();
    write_chrome_trace(&mut chrome_text, &events, TraceClock::Virtual);
    let round_trip_ok = impress_json::from_str::<Json>(&chrome_text)
        .map(|parsed| impress_json::to_string(&parsed) == chrome_text)
        .unwrap_or(false);
    let snapshot = telemetry.snapshot();
    eprintln!(
        "  {} events recorded ({} dropped), chrome export {} bytes",
        events.len(),
        dropped,
        chrome_text.len()
    );

    eprintln!(
        "cross-backend parity replay ({} serialized tasks)...",
        params.parity_tasks
    );
    let engines = [
        ParityBackend::Simulated,
        ParityBackend::Sharded,
        ParityBackend::Threaded,
    ];
    let traces: Vec<String> = engines
        .iter()
        .map(|&b| parity_trace_on(b, seed ^ 0x7ace, params.parity_tasks))
        .collect();
    let sim_trace = &traces[0];
    let backends_agree = traces.iter().all(|t| t == sim_trace);
    eprintln!(
        "  virtual-clock traces {} across {} engines ({} bytes)",
        if backends_agree { "agree" } else { "DIVERGE" },
        engines.len(),
        sim_trace.len()
    );

    let mut counters = Json::object();
    for c in &snapshot.counters {
        counters = counters.field(&c.name, c.value);
    }

    Json::object()
        .field("format_version", TRACE_FORMAT_VERSION)
        .field("suite", "trace_study")
        .field("seed", seed)
        .field(
            "campaign",
            Json::object()
                .field("complexes", params.complexes as u64)
                .field("makespan_hours", traced.run.makespan.as_hours_f64())
                .field("events", events.len() as u64)
                .field("events_dropped", dropped)
                .field("chrome_trace_bytes", chrome_text.len() as u64)
                .field("spans", span_counts(&events))
                .field("counters", counters.build())
                .build(),
        )
        .field("perturbation_free", perturbation_free)
        .field("nesting_ok", nesting.is_ok())
        .field(
            "nesting_error",
            nesting.err().map(|e| e.to_json()).unwrap_or(Json::Null),
        )
        .field("chrome_round_trip_ok", round_trip_ok)
        .field(
            "parity",
            Json::object()
                .field("tasks", params.parity_tasks as u64)
                .field("trace_bytes", sim_trace.len() as u64)
                .field(
                    "engines",
                    Json::array(
                        engines
                            .iter()
                            .map(|b| b.label().to_json())
                            .collect::<Vec<_>>(),
                    ),
                )
                .field("backends_agree", backends_agree)
                .build(),
        )
        .build()
}
