//! # impress-bench
//!
//! Harnesses that regenerate every table and figure of the IMPRESS paper's
//! evaluation section, plus micro/meso benchmarks on the in-repo `timing`
//! harness.
//!
//! Binaries (each prints the paper artifact's rows/series and writes a JSON
//! sidecar next to stdout output):
//!
//! * `table1` — CONT-V vs IM-RP on the 4 named PDZ domains (Table I).
//! * `fig2`   — per-iteration pLDDT/pTM/ipAE medians ± σ/2, both arms.
//! * `fig3`   — the expanded 70-complex IM-RP run with adaptivity disabled
//!   in the final cycle (the iteration-4 dip).
//! * `fig4`   — CONT-V utilization timeline + makespan.
//! * `fig5`   — IM-RP utilization timeline + bootstrap/exec-setup/running
//!   breakdown.
//!
//! Run e.g. `cargo run --release -p impress-bench --bin table1`.

pub mod coord;
pub mod harness;
pub mod partition;
pub mod sched;
pub mod serve;
pub mod sim;
pub mod straggler;
pub mod timing;
pub mod trace;

pub use harness::{paper_experiment, PaperExperiment};
pub use timing::{black_box, BenchResult, Suite};
