//! Scaling study (beyond the paper): the paper's future work promises "a
//! scalable and generalized computational platform". This harness runs the
//! expanded IM-RP cohort on 1, 2, 4 and 8 Amarel-shaped nodes and reports
//! strong-scaling makespan and efficiency.
//!
//! Usage: `cargo run --release -p impress-bench --bin scaling [n_complexes]`
//! (default 24).

use impress_bench::harness::master_seed;
use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::run_imrp_on;
use impress_core::ProtocolConfig;
use impress_pilot::PilotConfig;
use impress_proteins::datasets::mined_pdz_complexes;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let seed = master_seed();
    let targets = mined_pdz_complexes(seed, n);
    println!(
        "strong scaling: {n} PDZ complexes, adaptive IM-RP, 1..8 Amarel nodes (seed {seed})\n"
    );
    println!(
        "{:>6} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "nodes", "makespan(h)", "speedup", "efficiency", "CPU %", "GPU % (slot)"
    );

    let mut baseline_h = None;
    let mut rows = Vec::new();
    for nodes in [1u32, 2, 4, 8] {
        let pilot = PilotConfig {
            nodes,
            ..PilotConfig::with_seed(seed)
        };
        let result = run_imrp_on(
            &targets,
            ProtocolConfig::imrp(seed),
            AdaptivePolicy {
                sub_budget: n / 3,
                ..AdaptivePolicy::default()
            },
            pilot,
        );
        let h = result.run.makespan.as_hours_f64();
        let base = *baseline_h.get_or_insert(h);
        let speedup = base / h;
        let efficiency = speedup / nodes as f64;
        println!(
            "{nodes:>6} {h:>12.2} {speedup:>10.2} {efficiency:>10.2} {:>11.1}% {:>11.1}%",
            result.run.cpu_utilization * 100.0,
            result.run.gpu_slot_utilization * 100.0
        );
        rows.push(
            impress_json::Json::object()
                .field("nodes", nodes)
                .field("makespan_hours", h)
                .field("speedup", speedup)
                .field("efficiency", efficiency)
                .field("cpu", result.run.cpu_utilization)
                .field("gpu_slot", result.run.gpu_slot_utilization)
                .field("trajectories", result.trajectories)
                .build(),
        );
    }
    println!(
        "\nEfficiency falls off once per-node concurrency (pipelines / nodes) \
         drops below the ~5-lineage saturation point — the adaptive workload \
         scales out as long as the cohort keeps all nodes fed."
    );
    let json = impress_json::Json::object()
        .field("seed", seed)
        .field("complexes", n)
        .field("rows", impress_json::Json::array(rows))
        .build();
    std::fs::write("scaling.json", impress_json::to_string_pretty(&json))
        .expect("write scaling.json");
    eprintln!("wrote scaling.json");
}
