//! Scaling study (beyond the paper): the paper's future work promises "a
//! scalable and generalized computational platform". This harness runs the
//! expanded IM-RP cohort on 1..32 Amarel-shaped nodes and reports
//! strong-scaling makespan and efficiency, then pushes a 10 000-task
//! synthetic stream through a 16-node pilot to exercise the scheduler at
//! queue depths the protocol itself never reaches. Every reported number
//! is virtual-time (deterministic per seed) — wall-clock throughput lives
//! in `BENCH_scheduler.json`, which is regenerated per machine.
//!
//! Usage: `cargo run --release -p impress-bench --bin scaling [n_complexes]`
//! (default 24).

use impress_bench::harness::master_seed;
use impress_bench::sched::task_stream;
use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::run_imrp_on;
use impress_core::ProtocolConfig;
use impress_pilot::backend::SimulatedBackend;
use impress_pilot::{ExecutionBackend, PilotConfig, TaskDescription};
use impress_proteins::datasets::mined_pdz_complexes;
use impress_sim::SimDuration;

/// Drive `n` synthetic tasks (the standard heterogeneous request stream,
/// deterministic pseudo-varied durations) through a `nodes`-node simulated
/// pilot and report virtual-time quantities only.
fn task_stream_section(seed: u64, nodes: u32, n: usize) -> impress_json::Json {
    let mut backend = SimulatedBackend::new(PilotConfig {
        nodes,
        ..PilotConfig::with_seed(seed)
    });
    for (i, req) in task_stream(n).into_iter().enumerate() {
        let secs = 60 + (i as u64 * 37) % 600;
        backend.submit(TaskDescription::new(
            &format!("s{i}"),
            req,
            SimDuration::from_secs(secs),
        ));
    }
    let mut completed = 0u64;
    while let Some(c) = backend.next_completion() {
        assert!(c.result.is_ok());
        completed += 1;
    }
    let makespan_h = backend.now().as_secs_f64() / 3600.0;
    let util = backend.utilization();
    println!(
        "\n{n}-task stream on {nodes} nodes: makespan {makespan_h:.2} h virtual, \
         CPU {:.1}%, {:.0} tasks/virtual-hour",
        util.cpu * 100.0,
        completed as f64 / makespan_h
    );
    impress_json::Json::object()
        .field("nodes", nodes)
        .field("tasks", completed)
        .field("makespan_hours", makespan_h)
        .field("cpu", util.cpu)
        .field("gpu_slot", util.gpu_slot)
        .field("tasks_per_virtual_hour", completed as f64 / makespan_h)
        .build()
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let seed = master_seed();
    let targets = mined_pdz_complexes(seed, n);
    println!(
        "strong scaling: {n} PDZ complexes, adaptive IM-RP, 1..32 Amarel nodes (seed {seed})\n"
    );
    println!(
        "{:>6} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "nodes", "makespan(h)", "speedup", "efficiency", "CPU %", "GPU % (slot)"
    );

    let mut baseline_h = None;
    let mut rows = Vec::new();
    for nodes in [1u32, 2, 4, 8, 16, 32] {
        let pilot = PilotConfig {
            nodes,
            ..PilotConfig::with_seed(seed)
        };
        let result = run_imrp_on(
            &targets,
            ProtocolConfig::imrp(seed),
            AdaptivePolicy {
                sub_budget: n / 3,
                ..AdaptivePolicy::default()
            },
            pilot,
        );
        let h = result.run.makespan.as_hours_f64();
        let base = *baseline_h.get_or_insert(h);
        let speedup = base / h;
        let efficiency = speedup / nodes as f64;
        println!(
            "{nodes:>6} {h:>12.2} {speedup:>10.2} {efficiency:>10.2} {:>11.1}% {:>11.1}%",
            result.run.cpu_utilization * 100.0,
            result.run.gpu_slot_utilization * 100.0
        );
        rows.push(
            impress_json::Json::object()
                .field("nodes", nodes)
                .field("makespan_hours", h)
                .field("speedup", speedup)
                .field("efficiency", efficiency)
                .field("cpu", result.run.cpu_utilization)
                .field("gpu_slot", result.run.gpu_slot_utilization)
                .field("trajectories", result.trajectories)
                .build(),
        );
    }
    println!(
        "\nEfficiency falls off once per-node concurrency (pipelines / nodes) \
         drops below the ~5-lineage saturation point — the adaptive workload \
         scales out as long as the cohort keeps all nodes fed."
    );
    let stream = task_stream_section(seed, 16, 10_000);
    let json = impress_json::Json::object()
        .field("seed", seed)
        .field("complexes", n)
        .field("rows", impress_json::Json::array(rows))
        .field("task_stream", stream)
        .build();
    std::fs::write("scaling.json", impress_json::to_string_pretty(&json))
        .expect("write scaling.json");
    eprintln!("wrote scaling.json");
}
