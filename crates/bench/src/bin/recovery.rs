//! Recovery study: the cost of crashing. An IM-RP campaign runs with a
//! write-ahead journal; this harness kills it at a swept fraction of its
//! journal records (0.25 / 0.5 / 0.9), across snapshot-compaction
//! intervals (never / every 32 / every 128 records), then resumes from the
//! surviving journal and measures what the crash cost: journal replay
//! time, tasks that had to be re-executed versus replayed as recorded
//! ghosts, journal size at the kill point, and makespan overhead relative
//! to an uninterrupted baseline.
//!
//! Every resumed run is asserted byte-identical to the baseline before its
//! row is reported — the study doubles as an end-to-end check of the
//! resume-parity invariant. Because resume re-simulates completed work as
//! zero-cost ghosts on the same virtual timeline, makespan overhead is
//! structurally zero; the real crash cost shows up as re-executed tasks
//! and replay wall time.
//!
//! Usage: `cargo run --release -p impress-bench --bin recovery`.
//! Writes `recovery.json`; deterministic for a fixed `IMPRESS_SEED`
//! (replay wall-clock milliseconds are the only machine-dependent field).

use impress_bench::harness::master_seed;
use impress_core::adaptive::AdaptivePolicy;
use impress_core::{imrp_journal, resume_imrp, run_imrp_journaled};
use impress_pilot::PilotConfig;
use impress_proteins::datasets::named_pdz_domains;
use impress_workflow::journal::{load_plan, MemoryJournal, JOURNAL_FORMAT_VERSION};

fn main() {
    let seed = master_seed();
    let targets = named_pdz_domains(seed);
    let config = impress_core::ProtocolConfig::imrp(seed);
    let policy = AdaptivePolicy::default();
    let pilot = PilotConfig::with_seed(seed);

    // Uninterrupted baseline: same campaign, journaled end to end.
    let base_store = MemoryJournal::new();
    let baseline = run_imrp_journaled(
        &targets,
        config.clone(),
        policy.clone(),
        pilot.clone(),
        imrp_journal(Box::new(base_store.clone()), &config).expect("baseline journal"),
        None,
    );
    let baseline_json = impress_json::to_string(&baseline.result);
    let total_records = baseline.records;
    let total_tasks = baseline.result.run.total_tasks;
    println!(
        "recovery: 4 PDZ domains, IM-RP with write-ahead journal \
         ({total_records} records, {total_tasks} tasks, seed {seed})\n"
    );
    println!(
        "{:>6} {:>9} {:>8} {:>7} {:>9} {:>7} {:>8} {:>10} {:>9}",
        "kill", "snapshot", "records", "lines", "bytes", "ghosts", "re-exec", "replay(ms)", "overhead"
    );

    // The kill switch panics inside the coordinator; silence the default
    // hook so the sweep's expected crashes do not spray backtraces.
    std::panic::set_hook(Box::new(|_| {}));
    let mut rows = Vec::new();
    for snapshot_interval in [None, Some(32usize), Some(128)] {
        for kill_frac in [0.25f64, 0.5, 0.9] {
            let kill_after = ((total_records as f64) * kill_frac).round().max(1.0) as u64;
            let store = MemoryJournal::new();
            let mut journal = imrp_journal(Box::new(store.clone()), &config)
                .expect("sweep journal")
                .with_kill_after(kill_after);
            if let Some(i) = snapshot_interval {
                journal = journal.with_snapshot_interval(i);
            }
            let (targets_c, config_c, policy_c, pilot_c) =
                (targets.clone(), config.clone(), policy.clone(), pilot.clone());
            let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                run_imrp_journaled(&targets_c, config_c, policy_c, pilot_c, journal, None)
            }));
            assert!(crashed.is_err(), "kill switch must fire mid-campaign");

            let lines = store.line_count();
            let bytes = store.bytes();
            let replay_start = std::time::Instant::now();
            let loaded = load_plan(&store).expect("surviving journal must load");
            let resumed = resume_imrp(
                &targets,
                config.clone(),
                policy.clone(),
                pilot.clone(),
                &loaded.plan,
            )
            .expect("resume from surviving journal");
            let replay_ms = replay_start.elapsed().as_secs_f64() * 1e3;
            let resumed_json = impress_json::to_string(&resumed);
            assert_eq!(
                baseline_json, resumed_json,
                "resume must regenerate the baseline byte-identically \
                 (kill {kill_frac}, snapshot {snapshot_interval:?})"
            );

            let ghosts = loaded.plan.ghost_tasks();
            let reexecuted = total_tasks - ghosts;
            let overhead =
                resumed.run.makespan.as_secs_f64() - baseline.result.run.makespan.as_secs_f64();
            let snap_label = snapshot_interval
                .map(|i| i.to_string())
                .unwrap_or_else(|| "never".into());
            println!(
                "{:>6} {:>9} {:>8} {:>7} {:>9} {:>7} {:>8} {:>10.2} {:>8.1}s",
                format!("{:.0}%", kill_frac * 100.0),
                snap_label,
                kill_after,
                lines,
                bytes,
                ghosts,
                reexecuted,
                replay_ms,
                overhead
            );
            rows.push(
                impress_json::Json::object()
                    .field("kill_fraction", kill_frac)
                    .field("snapshot_interval", snapshot_interval.map(|i| i as u64))
                    .field("records_at_kill", kill_after)
                    .field("journal_lines", lines)
                    .field("journal_bytes", bytes)
                    .field("dropped_lines", loaded.dropped)
                    .field("ghost_tasks", ghosts)
                    .field("reexecuted_tasks", reexecuted)
                    .field("replay_ms", replay_ms)
                    .field("makespan_overhead_secs", overhead)
                    .field("byte_identical", true)
                    .build(),
            );
        }
    }
    let _ = std::panic::take_hook();

    println!(
        "\nSnapshot compaction bounds the journal the loader must replay \
         without changing what survives a crash; every resumed run matched \
         the uninterrupted baseline byte for byte, so the only crash cost \
         is re-executing the tasks that were in flight when the kill landed."
    );
    let json = impress_json::Json::object()
        .field("format_version", JOURNAL_FORMAT_VERSION)
        .field("seed", seed)
        .field("structures", targets.len())
        .field("baseline_records", total_records)
        .field("baseline_tasks", total_tasks)
        .field(
            "baseline_makespan_hours",
            baseline.result.run.makespan.as_hours_f64(),
        )
        .field("rows", impress_json::Json::array(rows))
        .build();
    std::fs::write("recovery.json", impress_json::to_string_pretty(&json))
        .expect("write recovery.json");
    eprintln!("wrote recovery.json");
}
