//! Regenerates **Fig. 5**: IM-RP total GPU/CPU utilization, execution time,
//! and the pilot phase breakdown (Bootstrap / Exec setup / Running).
//!
//! Expected shape: both device groups far busier than CONT-V's (paper: ~88%
//! CPU, ~61% GPU slot occupancy) because the coordinator offloads newly
//! created pipelines to idle resources; bootstrap and per-task exec setup
//! are visible but small against hour-scale tasks.

use impress_bench::harness::{downsample, master_seed, paper_experiment, sparkline};
use impress_core::adaptive::AdaptivePolicy;
use impress_core::ProtocolConfig;
use impress_pilot::backend::SimulatedBackend;
use impress_pilot::{PilotConfig, Timeline};
use impress_proteins::datasets::named_pdz_domains;
use impress_workflow::Coordinator;

fn main() {
    let seed = master_seed();
    eprintln!("running Fig. 5 experiment (seed {seed})…");
    let exp = paper_experiment(seed);
    let r = &exp.imrp;

    println!("\nFig. 5 — IM-RP resource utilization (28 CPU cores, 4 GPUs; 10-min bins)\n");
    let cpu = downsample(&r.cpu_series, 72);
    let gpu = downsample(&r.gpu_slot_series, 72);
    println!("CPU  |{}|", sparkline(&cpu));
    println!(
        "GPU  |{}|  (slot occupancy; RP profiler semantics)",
        sparkline(&gpu)
    );
    println!(
        "\navg CPU {:.1}%  avg GPU {:.1}% (slot) / {:.1}% (hardware)  — paper: ~88% / ~61%",
        r.run.cpu_utilization * 100.0,
        r.run.gpu_slot_utilization * 100.0,
        r.run.gpu_hardware_utilization * 100.0
    );
    println!(
        "execution time: {:.1} h — paper: 38.3 h",
        r.run.makespan.as_hours_f64()
    );
    let p = &r.run.phases;
    println!("\nphase breakdown:");
    println!("  bootstrap:        {}", p.bootstrap);
    println!(
        "  exec setup total: {} across {} tasks",
        p.exec_setup_total, p.tasks_executed
    );
    println!("  running total:    {} (task-parallel)", p.running_total);
    println!(
        "\npipelines: {} root + {} sub; evaluations: {}",
        r.run.root_pipelines, r.run.sub_pipelines, r.evaluations
    );

    // Gantt view of the run's first tasks (the scheduling texture behind
    // the utilization averages). Re-run one arm to get at the backend's
    // task records.
    {
        let seed_g = seed;
        let targets = named_pdz_domains(seed_g);
        let tks: Vec<_> = targets
            .iter()
            .map(|t| impress_core::TargetToolkit::for_target(t, seed_g ^ 0xdb))
            .collect();
        let config = ProtocolConfig::imrp(seed_g);
        let decision = impress_core::ImpressDecision::new(
            config.clone(),
            AdaptivePolicy::default(),
            tks.clone(),
        );
        let backend = SimulatedBackend::new(PilotConfig::with_seed(seed_g));
        let mut coord = Coordinator::new(backend, decision);
        for (i, tk) in tks.iter().enumerate() {
            coord.add_pipeline(Box::new(impress_core::DesignPipeline::root(
                tk.clone(),
                config.clone(),
                i as u64,
            )));
        }
        coord.run();
        let timeline = Timeline::from_records(&coord.session().backend().task_records());
        println!(
            "
task Gantt (first 24 tasks; ▒ queued, █ running):"
        );
        print!("{}", timeline.render(72, 24));
        println!("mean task queue wait: {}", timeline.mean_wait());
    }

    let json = impress_json::Json::object()
        .field("seed", seed)
        .field("bin_minutes", 10)
        .field("cpu_series", &r.cpu_series)
        .field("gpu_slot_series", &r.gpu_slot_series)
        .field("gpu_hw_series", &r.gpu_hw_series)
        .field("avg_cpu", r.run.cpu_utilization)
        .field("avg_gpu_slot", r.run.gpu_slot_utilization)
        .field("makespan_hours", r.run.makespan.as_hours_f64())
        .field("phases", p)
        .build();
    std::fs::write("fig5.json", impress_json::to_string_pretty(&json))
        .expect("write json sidecar");
    eprintln!("\nwrote fig5.json");
}
