//! Straggler study (beyond the paper, "Fig. 7"): gray-failure mitigation
//! on a degraded cluster. Sweeps slowdown severity (healthy / 4x / 10x /
//! 20x on two of eight nodes) × hedging (off / k=2 / k=3) × poison-task
//! quarantine (off / on) and reports makespan, waste, and lineage verdicts
//! per cell.
//!
//! Usage: `cargo run --release -p impress-bench --bin straggler_study`.
//! Writes `straggler.json`; deterministic for a fixed `IMPRESS_SEED`.

use impress_bench::harness::master_seed;
use impress_bench::straggler::{run_study, StudyParams};

fn main() {
    let seed = master_seed();
    let p = StudyParams::paper();
    println!(
        "straggler: {} design tasks + {} poison lineages on {} × {}-core \
         nodes, {} degraded (seed {seed})\n",
        p.design_tasks, p.poison_tasks, p.nodes, p.cores_per_node, p.slow_nodes
    );
    println!(
        "{:>8} {:>5} {:>5} {:>12} {:>6} {:>7} {:>11} {:>8} {:>10} {:>9} {:>5}",
        "slowdown",
        "hedge",
        "quar",
        "makespan(s)",
        "CPU %",
        "hedges",
        "hwaste(cs)",
        "retries",
        "waste(cs)",
        "poisoned",
        "shed"
    );

    let doc = run_study(&p, seed);
    for row in doc.get("rows").and_then(|r| r.as_array()).expect("rows") {
        let s = |k: &str| row.get(k).and_then(|v| v.as_str()).unwrap_or("?").to_string();
        let f = |k: &str| row.get(k).and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
        println!(
            "{:>8} {:>5} {:>5} {:>12.0} {:>5.1}% {:>7.0} {:>11.0} {:>8.0} {:>10.0} {:>9.0} {:>5.0}",
            s("severity"),
            s("hedge"),
            s("quarantine"),
            f("makespan_secs"),
            f("cpu") * 100.0,
            f("hedges"),
            f("hedge_wasted_core_seconds"),
            f("retries"),
            f("wasted_core_seconds"),
            f("poisoned"),
            f("shed")
        );
    }

    let acceptance = doc.get("acceptance").expect("acceptance section");
    let num = |k: &str| acceptance.get(k).and_then(|v| v.as_f64()).expect(k);
    let flag = |k: &str| acceptance.get(k).and_then(|v| v.as_bool()).expect(k);
    println!(
        "\nhedging k=2 recovered {:.0}% of the {:.0}s the 10x tail costs \
         ({:.0}s → {:.0}s); quarantine holds poison waste at {:.0} of \
         {:.0} allowed core-seconds (unquarantined: {:.0})",
        num("k2_recovered_fraction") * 100.0,
        num("tail_loss_secs"),
        num("makespan_10x_unhedged_secs"),
        num("makespan_10x_k2_secs"),
        num("quarantined_waste_core_seconds"),
        num("poison_waste_bound_core_seconds"),
        num("unquarantined_waste_core_seconds"),
    );
    assert!(
        flag("k2_recovers_majority"),
        "hedging at k=2 must recover at least half the straggler tail"
    );
    assert!(
        flag("quarantine_bounds_poison_waste"),
        "quarantine must bound poison waste to distinct_nodes × attempt cost"
    );

    std::fs::write("straggler.json", impress_json::to_string_pretty(&doc))
        .expect("write straggler.json");
    eprintln!("wrote straggler.json");
}
