//! Sim-engine scaling study: regenerates `BENCH_sim.json`.
//!
//! Usage: `cargo run --release -p impress-bench --bin sim_bench`
//!
//! Measures the wall time of large virtual campaigns — up to 10,000 nodes
//! and 1,000,000 tasks — on the sequential engine and the sharded
//! parallel-DES engine, then writes the JSON artifact with the
//! pre-sharding baseline numbers embedded alongside (see
//! `impress_bench::sim::baseline`). `IMPRESS_BENCH_SAMPLES` and
//! `IMPRESS_BENCH_MAX_SECS` trim the run for quick local iterations.

use impress_bench::harness::master_seed;
use impress_bench::sim::{run_study, StudyParams};

fn main() {
    let seed = master_seed();
    let doc = run_study(&StudyParams::full(), seed);
    let path = "BENCH_sim.json";
    std::fs::write(path, impress_json::to_string_pretty(&doc)).expect("write BENCH_sim.json");
    eprintln!("wrote {path}");
    if let Some(speedups) = doc.get("speedups").and_then(|s| s.as_array()) {
        println!("\nspeedup vs pre-sharding engine:");
        for s in speedups {
            println!(
                "  {:>6} nodes x {:>9} tasks {:>10.2}x",
                s.get("nodes").and_then(|v| v.as_u64()).unwrap_or(0),
                s.get("tasks").and_then(|v| v.as_u64()).unwrap_or(0),
                s.get("speedup").and_then(|v| v.as_f64()).unwrap_or(0.0)
            );
        }
    }
    if let Some(h) = doc.get("headline") {
        println!(
            "headline: {} nodes x {} tasks in {:.1} s",
            h.get("nodes").and_then(|v| v.as_u64()).unwrap_or(0),
            h.get("tasks").and_then(|v| v.as_u64()).unwrap_or(0),
            h.get("wall_ms").and_then(|v| v.as_f64()).unwrap_or(0.0) / 1e3
        );
    }
}
