//! Telemetry trace study: regenerates `trace_summary.json`.
//!
//! Usage: `cargo run --release -p impress-bench --bin trace_study`
//!
//! Records the 24-complex IM-RP campaign through the unified telemetry
//! subsystem, verifies the three trace contracts (zero perturbation,
//! well-formed nesting + Chrome round-trip, cross-backend virtual-clock
//! parity), and writes the deterministic summary artifact (see
//! `impress_bench::trace`).

use impress_bench::harness::master_seed;
use impress_bench::trace::{run_study, TraceParams};

fn main() {
    let seed = master_seed();
    let doc = run_study(&TraceParams::full(), seed);
    let path = "trace_summary.json";
    std::fs::write(path, impress_json::to_string_pretty(&doc)).expect("write trace_summary.json");
    eprintln!("wrote {path}");
    for (label, key) in [
        ("telemetry perturbs nothing", "perturbation_free"),
        ("span nesting well-formed", "nesting_ok"),
        ("chrome export round-trips", "chrome_round_trip_ok"),
    ] {
        println!(
            "  {:<42} {}",
            label,
            doc.get(key).and_then(|v| v.as_bool()).unwrap_or(false)
        );
    }
    println!(
        "  {:<42} {}",
        "sim/threaded virtual traces byte-identical",
        doc.get("parity")
            .and_then(|p| p.get("backends_agree"))
            .and_then(|v| v.as_bool())
            .unwrap_or(false)
    );
    if let Some(c) = doc.get("campaign") {
        println!(
            "  campaign: {} events, {} chrome bytes, makespan {:.2} h",
            c.get("events").and_then(|v| v.as_f64()).unwrap_or(0.0),
            c.get("chrome_trace_bytes")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0),
            c.get("makespan_hours").and_then(|v| v.as_f64()).unwrap_or(0.0)
        );
    }
}
