//! Coordinator fast-path study → `BENCH_coord.json`.
//!
//! Measures journaled-vs-bare campaign overhead (memory and file stores)
//! against the embedded pre-optimization baseline, then drives the
//! 1,000-concurrent-journaled-coordinator headline cell.
//!
//! ```text
//! cargo run --release -p impress-bench --bin coord_bench
//! ```

use impress_bench::coord::{run_study, StudyParams};
use impress_bench::harness::master_seed;

fn main() {
    let seed = master_seed();
    eprintln!("coord_bench: seed {seed}");
    let doc = run_study(&StudyParams::full(), seed);
    std::fs::write("BENCH_coord.json", impress_json::to_string_pretty(&doc))
        .expect("write BENCH_coord.json");
    let reductions = doc.get("overhead_reductions").and_then(|r| r.as_array());
    if let Some(rows) = reductions {
        for row in rows {
            println!(
                "{:>6}: overhead {} ms -> {} ms ({}x reduction)",
                row.get("store").and_then(|v| v.as_str()).unwrap_or("?"),
                row.get("baseline_overhead_ms")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(f64::NAN),
                row.get("overhead_ms").and_then(|v| v.as_f64()).unwrap_or(f64::NAN),
                row.get("reduction").and_then(|v| v.as_f64()).unwrap_or(f64::NAN),
            );
        }
    }
    if let Some(headline) = doc.get("headline") {
        println!(
            "headline: {} concurrent journaled coordinators in {} ms",
            headline
                .get("coordinators")
                .and_then(|v| v.as_u64())
                .unwrap_or(0),
            headline.get("wall_ms").and_then(|v| v.as_f64()).unwrap_or(f64::NAN),
        );
    }
    println!("wrote BENCH_coord.json");
}
