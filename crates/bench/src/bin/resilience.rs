//! Resilience study (beyond the paper, "Fig. 6"): how IM-RP and CONT-V
//! degrade when the platform misbehaves. The paper's runs assume a healthy
//! cluster; production campaigns do not get one. This harness sweeps node
//! MTBF (∞ / 24 h / 8 h, with 30-minute outages) and the pilot's retry
//! budget (0 / 3) under a 2% transient task-failure rate, and reports
//! makespan, utilization, wasted work and aborted lineages per cell.
//!
//! The adaptive arm rides out faults — the coordinator keeps the other
//! pipelines running while the pilot requeues evicted tasks — while the
//! sequential control stalls on every fault and loses whole lineages once
//! the retry budget is exhausted.
//!
//! Usage: `cargo run --release -p impress-bench --bin resilience`.
//! Writes `resilience.json`; deterministic for a fixed `IMPRESS_SEED`.

use impress_bench::harness::master_seed;
use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::{run_cont_v_resilient, run_imrp_resilient, ExperimentResult};
use impress_core::ProtocolConfig;
use impress_pilot::{FaultConfig, PilotConfig, RetryPolicy};
use impress_proteins::datasets::named_pdz_domains;
use impress_sim::SimDuration;

struct Cell {
    mtbf: &'static str,
    budget: u32,
    faults: FaultConfig,
    retry: RetryPolicy,
}

fn cells() -> Vec<Cell> {
    let mut grid = vec![Cell {
        mtbf: "healthy",
        budget: 0,
        faults: FaultConfig::none(),
        retry: RetryPolicy::none(),
    }];
    let faulty = |mtbf: Option<SimDuration>| FaultConfig {
        task_failure_rate: 0.02,
        node_mtbf: mtbf,
        node_outage: SimDuration::from_mins(30),
        ..FaultConfig::none()
    };
    for (label, mtbf) in [
        ("inf", None),
        ("24h", Some(SimDuration::from_hours(24))),
        ("8h", Some(SimDuration::from_hours(8))),
    ] {
        for budget in [0u32, 3] {
            grid.push(Cell {
                mtbf: label,
                budget,
                faults: faulty(mtbf),
                retry: if budget == 0 {
                    RetryPolicy::none()
                } else {
                    RetryPolicy::retries(budget)
                },
            });
        }
    }
    grid
}

fn row(cell: &Cell, arm: &str, r: &ExperimentResult) -> impress_json::Json {
    impress_json::Json::object()
        .field("mtbf", cell.mtbf)
        .field("retry_budget", cell.budget)
        .field("arm", arm)
        .field("makespan_hours", r.run.makespan.as_hours_f64())
        .field("cpu", r.run.cpu_utilization)
        .field("gpu_slot", r.run.gpu_slot_utilization)
        .field("retries", r.run.task_retries)
        .field("wasted_core_hours", r.run.wasted_core_seconds / 3600.0)
        .field("wasted_gpu_hours", r.run.wasted_gpu_seconds / 3600.0)
        .field("aborted_lineages", r.run.aborted_pipelines)
        .field("evaluations", r.evaluations)
        .build()
}

fn main() {
    let seed = master_seed();
    let targets = named_pdz_domains(seed);
    println!(
        "resilience: 4 PDZ domains, CONT-V vs IM-RP under injected faults \
         (2% transient task failures; 30m outages; seed {seed})\n"
    );
    println!(
        "{:>8} {:>7} {:>8} {:>12} {:>7} {:>8} {:>10} {:>8} {:>6}",
        "mtbf", "budget", "arm", "makespan(h)", "CPU %", "retries", "wasted(ch)", "aborted", "evals"
    );

    let mut rows = Vec::new();
    for cell in cells() {
        let imrp = run_imrp_resilient(
            &targets,
            ProtocolConfig::imrp(seed),
            AdaptivePolicy::default(),
            PilotConfig::with_seed(seed),
            cell.faults.clone(),
            cell.retry,
        );
        let cont = run_cont_v_resilient(
            &targets,
            ProtocolConfig::cont_v(seed),
            PilotConfig::with_seed(seed),
            cell.faults.clone(),
            cell.retry,
        );
        for (arm, r) in [("IM-RP", &imrp), ("CONT-V", &cont)] {
            println!(
                "{:>8} {:>7} {:>8} {:>12.2} {:>6.1}% {:>8} {:>10.2} {:>8} {:>6}",
                cell.mtbf,
                cell.budget,
                arm,
                r.run.makespan.as_hours_f64(),
                r.run.cpu_utilization * 100.0,
                r.run.task_retries,
                r.run.wasted_core_seconds / 3600.0,
                r.run.aborted_pipelines,
                r.evaluations
            );
            rows.push(row(&cell, arm, r));
        }
    }
    println!(
        "\nWith a retry budget the adaptive arm absorbs faults as wasted \
         core-hours while finishing its full cohort; with none, faults \
         convert directly into aborted lineages — and CONT-V additionally \
         pays for every fault with idle sequential time."
    );
    let json = impress_json::Json::object()
        .field("seed", seed)
        .field("structures", targets.len())
        .field("task_failure_rate", 0.02)
        .field("node_outage_minutes", 30)
        .field("rows", impress_json::Json::array(rows))
        .build();
    std::fs::write("resilience.json", impress_json::to_string_pretty(&json))
        .expect("write resilience.json");
    eprintln!("wrote resilience.json");
}
