//! Regenerates **Fig. 4**: CONT-V total GPU/CPU resource utilization and
//! execution time.
//!
//! Expected shape: average CPU utilization ≈ 18% (one 6-core MSA at a time
//! on a 28-core node), GPU utilization ≈ 1% (vanilla AlphaFold leaves the
//! GPUs idle during its CPU-bound construction phase; only one GPU is ever
//! touched, briefly).

use impress_bench::harness::{downsample, master_seed, paper_experiment, sparkline};

fn main() {
    let seed = master_seed();
    eprintln!("running Fig. 4 experiment (seed {seed})…");
    let exp = paper_experiment(seed);
    let r = &exp.cont_v;

    println!("\nFig. 4 — CONT-V resource utilization (28 CPU cores, 4 GPUs; 10-min bins)\n");
    let cpu = downsample(&r.cpu_series, 72);
    let gpu = downsample(&r.gpu_hw_series, 72);
    println!("CPU  |{}|", sparkline(&cpu));
    println!("GPU  |{}|", sparkline(&gpu));
    println!(
        "\navg CPU {:.1}%  avg GPU (hardware) {:.1}%  — paper: ~18.3% / ~1%",
        r.run.cpu_utilization * 100.0,
        r.run.gpu_hardware_utilization * 100.0
    );
    println!(
        "execution time: {:.1} h — paper: 27.7 h",
        r.run.makespan.as_hours_f64()
    );
    println!(
        "tasks executed: {} across {} trajectories",
        r.run.total_tasks, r.trajectories
    );

    let json = impress_json::Json::object()
        .field("seed", seed)
        .field("bin_minutes", 10)
        .field("cpu_series", &r.cpu_series)
        .field("gpu_hw_series", &r.gpu_hw_series)
        .field("avg_cpu", r.run.cpu_utilization)
        .field("avg_gpu_hw", r.run.gpu_hardware_utilization)
        .field("makespan_hours", r.run.makespan.as_hours_f64())
        .build();
    std::fs::write("fig4.json", impress_json::to_string_pretty(&json))
        .expect("write json sidecar");
    eprintln!("\nwrote fig4.json");
}
