//! Regenerates **Fig. 3**: the expanded IM-RP workflow — 70 PDB-mined
//! PDZ–peptide complexes targeting the α-synuclein 4-mer (EPEA), four design
//! cycles, with adaptivity *not enforced in the final cycle*.
//!
//! Expected shape: all three metrics improve over iterations 1→3, then the
//! median quality of iteration 4 deteriorates — "the pipelines failed to
//! resume established positive metric trends in its absence."
//!
//! Paper scale reference: 354 trajectories across 96 sub-pipelines.
//! Use `--complexes N` (default 70) to run a scaled-down version.

use impress_bench::harness::{bar_panel, expanded_experiment, master_seed, print_metric_panel};
use impress_proteins::MetricKind;

fn main() {
    let n = std::env::args()
        .skip_while(|a| a != "--complexes")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(70);
    let seed = master_seed();
    eprintln!("running Fig. 3 experiment: {n} complexes (seed {seed})…");
    let result = expanded_experiment(seed, n);

    println!("\nFig. 3 — expanded IM-RP workflow ({n} PDZ–peptide complexes, α-syn 4-mer)\n");
    for metric in MetricKind::ALL {
        print_metric_panel(&result, metric);
    }
    for metric in MetricKind::ALL {
        let s = result.series(metric);
        // Paper shows iterations 1–4; later sub-pipeline iterations exist
        // but are sparse, so clip to the paper's range for the bars.
        let iters: Vec<u32> = s.iterations.iter().copied().filter(|&i| i <= 4).collect();
        let meds: Vec<f64> = iters
            .iter()
            .map(|it| {
                let p = s.iterations.iter().position(|x| x == it).unwrap();
                s.summaries[p].median
            })
            .collect();
        let errs: Vec<f64> = iters
            .iter()
            .map(|it| {
                let p = s.iterations.iter().position(|x| x == it).unwrap();
                s.summaries[p].half_std()
            })
            .collect();
        println!(
            "{}",
            bar_panel(metric, &iters, &[("IM-RP", meds, errs)], 12)
        );
    }
    println!(
        "\nscale: {} trajectories across {} sub-pipelines ({} root pipelines) — paper: 354 / 96 / 70",
        result.trajectories, result.run.sub_pipelines, result.run.root_pipelines
    );

    // The dip: iteration 4 median must not continue iteration 1→3's trend.
    println!("\niteration-4 dip check (adaptivity disabled in final cycle):");
    for metric in MetricKind::ALL {
        let s = result.series(metric);
        let med = |it: u32| -> Option<f64> {
            s.iterations
                .iter()
                .position(|&x| x == it)
                .map(|i| s.summaries[i].median)
        };
        if let (Some(m3), Some(m4)) = (med(3), med(4)) {
            let regressed = if metric.higher_is_better() {
                m4 < m3
            } else {
                m4 > m3
            };
            println!(
                "  {:<6} iter3 {m3:.3} → iter4 {m4:.3}  {}",
                metric.label(),
                if regressed {
                    "(deteriorated ✓ paper shape)"
                } else {
                    "(held)"
                }
            );
        }
    }

    let json = impress_json::Json::object()
        .field("seed", seed)
        .field("complexes", n)
        .field("trajectories", result.trajectories)
        .field("sub_pipelines", result.run.sub_pipelines)
        .field(
            "series",
            impress_json::Json::array(MetricKind::ALL.map(|m| result.series(m))),
        )
        .build();
    std::fs::write("fig3.json", impress_json::to_string_pretty(&json))
        .expect("write json sidecar");
    eprintln!("\nwrote fig3.json");
}
