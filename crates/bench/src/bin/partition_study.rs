//! Partition study (beyond the paper, "Fig. 8"): control-plane resilience
//! under message-layer faults. Sweeps loss rate (drop + duplication:
//! lossless / 0.15 / 0.3) × partition duration (none / 20 s / 60 s /
//! 120 s) × heartbeat timeout (off / 2 s / 6 s) and certifies that effects
//! stay exactly-once at every loss rate and that heartbeat detection
//! recovers ≥ 90 % of the makespan a healed 60 s partition costs.
//!
//! Usage: `cargo run --release -p impress-bench --bin partition_study`.
//! Writes `partition.json`; deterministic for a fixed `IMPRESS_SEED`.

use impress_bench::harness::master_seed;
use impress_bench::partition::{run_study, StudyParams};

fn main() {
    let seed = master_seed();
    let p = StudyParams::paper();
    println!(
        "partition: {} × {}s tasks on {} × {}-core nodes, partition severs \
         nodes {}–{} at t={}s (seed {seed})\n",
        p.tasks,
        p.task_secs,
        p.nodes,
        p.cores_per_node,
        p.partition_first_node,
        p.partition_last_node,
        p.partition_at_secs
    );
    println!(
        "{:>9} {:>9} {:>8} {:>12} {:>8} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "loss", "partition", "detector", "makespan(s)", "suspect", "lease", "fenced", "resync",
        "dedup", "retx"
    );

    let doc = run_study(&p, seed);
    for row in doc.get("grid").and_then(|r| r.as_array()).expect("grid") {
        let s = |k: &str| row.get(k).and_then(|v| v.as_str()).unwrap_or("?").to_string();
        let f = |k: &str| row.get(k).and_then(|v| v.as_f64()).unwrap_or(f64::NAN);
        println!(
            "{:>9} {:>9} {:>8} {:>12.1} {:>8.0} {:>7.0} {:>7.0} {:>7.0} {:>7.0} {:>7.0}",
            s("loss"),
            s("partition"),
            s("detector"),
            f("makespan_secs"),
            f("suspicions"),
            f("lease_expiries"),
            f("fenced_completions"),
            f("resyncs"),
            f("dedup_hits"),
            f("retransmits")
        );
    }

    let acceptance = doc.get("acceptance").expect("acceptance section");
    let num = |k: &str| acceptance.get(k).and_then(|v| v.as_f64()).expect(k);
    let flag = |k: &str| acceptance.get(k).and_then(|v| v.as_bool()).expect(k);
    println!(
        "\nexactly-once: {} duplicate completions across the grid, {} \
         duplicate journal/decision effects across the delivery campaigns; \
         heartbeat detection recovered {:.0}% of the {:.1}s a healed 60s \
         partition costs ({:.1}s → {:.1}s, clean {:.1}s)",
        num("grid_duplicate_completions"),
        num("delivery_duplicate_effects"),
        num("detection_recovered_fraction") * 100.0,
        num("partition_loss_secs"),
        num("makespan_60s_undetected_secs"),
        num("makespan_60s_detected_secs"),
        num("makespan_clean_secs"),
    );
    assert!(
        flag("exactly_once_at_every_rate"),
        "duplicate journal/DecisionEngine effects must be zero at every swept rate"
    );
    assert!(
        flag("detection_recovers_90pct"),
        "heartbeat detection must recover at least 90% of the partition's makespan loss"
    );

    std::fs::write("partition.json", impress_json::to_string_pretty(&doc))
        .expect("write partition.json");
    eprintln!("wrote partition.json");
}
