//! Regenerates **Table I**: experimental setup and results for CONT-V and
//! IM-RP — pipeline counts, trajectories, CPU/GPU utilization, execution
//! time, and net metric deltas.
//!
//! Paper reference values (Rutgers Amarel, real AF2/MPNN):
//!
//! | Approach | #PL | #Sub-PL | Traj. | CPU% | GPU% | Time(h) | ΔpTM | ΔpLDDT | ΔpAE |
//! |----------|-----|---------|-------|------|------|---------|------|--------|------|
//! | CONT-V   | 1   | N/A     | 16    | 18.3 | 1    | 27.7    | 0.28 | 5.8    | −6.7 |
//! | IM-RP    | 2   | 7       | 23    | 88   | 61   | 38.3    | 0.32 | 7.7    | −6.61|

use impress_bench::harness::{master_seed, paper_experiment};
use impress_core::TABLE1_HEADER;

fn main() {
    let seed = master_seed();
    eprintln!("running Table I experiment (seed {seed})…");
    let exp = paper_experiment(seed);
    let (cont, imrp) = exp.table1();

    println!("\nTable I — CONT-V vs IM-RP (simulated Amarel node: 28 cores, 4 GPUs)\n");
    println!("{TABLE1_HEADER}");
    println!("{}", "-".repeat(TABLE1_HEADER.chars().count()));
    println!("{cont}");
    println!("{imrp}");

    let (ptm, plddt, pae) = imrp.improvement_over(&cont);
    println!(
        "\nIM-RP net-Δ improvement over CONT-V: pTM {ptm:+.1}%  pLDDT {plddt:+.1}%  pAE {pae:+.1}%"
    );
    println!(
        "evaluations (AlphaFold calls incl. declined alternates): CONT-V {}  IM-RP {}",
        exp.cont_v.evaluations, exp.imrp.evaluations
    );
    println!(
        "\npaper reference: CONT-V 1 PL, 16 traj, 18.3% CPU, 1% GPU, 27.7 h, Δ(0.28, 5.8, -6.7)"
    );
    println!("                 IM-RP  2 PL + 7 sub, 23 traj, 88% CPU, 61% GPU, 38.3 h, Δ(0.32, 7.7, -6.61)");

    let json = impress_json::Json::object()
        .field("seed", seed)
        .field("cont_v", &cont)
        .field("imrp", &imrp)
        .field(
            "improvement_pct",
            impress_json::Json::object()
                .field("ptm", ptm)
                .field("plddt", plddt)
                .field("pae", pae)
                .build(),
        )
        .build();
    let path = "table1.json";
    std::fs::write(path, impress_json::to_string_pretty(&json)).expect("write json sidecar");
    eprintln!("\nwrote {path}");
}
