//! Regenerates **Fig. 2**: per-iteration medians (± σ/2) of pLDDT, pTM and
//! inter-chain pAE for CONT-V (red in the paper) vs IM-RP (green), across
//! the 4 PDZ–peptide structures.
//!
//! Expected shape: IM-RP attains higher pLDDT/pTM and lower pAE medians than
//! CONT-V at every iteration, with smaller error bars (higher consistency).

use impress_bench::harness::{bar_panel, master_seed, paper_experiment, print_metric_panel};
use impress_proteins::MetricKind;

fn main() {
    let seed = master_seed();
    eprintln!("running Fig. 2 experiment (seed {seed})…");
    let exp = paper_experiment(seed);

    println!("\nFig. 2 — AlphaFold metrics per design iteration (4 PDZ–peptide structures)\n");
    for (label, result) in [("CONT-V", &exp.cont_v), ("IM-RP", &exp.imrp)] {
        println!("{label}:");
        for metric in MetricKind::ALL {
            print_metric_panel(result, metric);
        }
        println!();
    }

    // Paper-style bar panels (bars: CONT-V then IM-RP; whiskers = ±σ/2).
    for metric in MetricKind::ALL {
        let c = exp.cont_v.series(metric);
        let i = exp.imrp.series(metric);
        let common: Vec<u32> = c
            .iterations
            .iter()
            .copied()
            .filter(|it| i.iterations.contains(it))
            .collect();
        let pick = |s: &impress_core::IterationSeries| {
            let meds: Vec<f64> = common
                .iter()
                .map(|it| {
                    let p = s.iterations.iter().position(|x| x == it).unwrap();
                    s.summaries[p].median
                })
                .collect();
            let errs: Vec<f64> = common
                .iter()
                .map(|it| {
                    let p = s.iterations.iter().position(|x| x == it).unwrap();
                    s.summaries[p].half_std()
                })
                .collect();
            (meds, errs)
        };
        let (cm, ce) = pick(&c);
        let (im, ie) = pick(&i);
        println!(
            "{}",
            bar_panel(
                metric,
                &common,
                &[("CONT-V", cm, ce), ("IM-RP", im, ie)],
                12
            )
        );
    }

    // Headline comparison: IM-RP must lead at every common iteration.
    println!("IM-RP − CONT-V median gap per iteration:");
    for metric in MetricKind::ALL {
        let c = exp.cont_v.series(metric);
        let i = exp.imrp.series(metric);
        let gaps: Vec<String> = c
            .iterations
            .iter()
            .filter_map(|it| {
                let ci = c.iterations.iter().position(|x| x == it)?;
                let ii = i.iterations.iter().position(|x| x == it)?;
                Some(format!(
                    "iter {it}: {:+.3}",
                    i.summaries[ii].median - c.summaries[ci].median
                ))
            })
            .collect();
        println!("  {:<6} {}", metric.label(), gaps.join("  "));
    }

    let json = impress_json::Json::object()
        .field("seed", seed)
        .field(
            "cont_v",
            impress_json::Json::array(MetricKind::ALL.map(|m| exp.cont_v.series(m))),
        )
        .field(
            "imrp",
            impress_json::Json::array(MetricKind::ALL.map(|m| exp.imrp.series(m))),
        )
        .build();
    std::fs::write("fig2.json", impress_json::to_string_pretty(&json))
        .expect("write json sidecar");
    eprintln!("\nwrote fig2.json");
}
