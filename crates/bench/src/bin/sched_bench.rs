//! Scheduler-performance study: regenerates `BENCH_scheduler.json`.
//!
//! Usage: `cargo run --release -p impress-bench --bin sched_bench`
//!
//! Measures placement throughput (enqueue→place→release cycles at queue
//! depths 64..8192, single- and multi-node) and the wall time of the
//! end-to-end simulated 24-complex IM-RP campaign, then writes the JSON
//! artifact with the pre-optimization baseline numbers embedded alongside
//! (see `impress_bench::sched::baseline`).

use impress_bench::harness::master_seed;
use impress_bench::sched::{run_study, StudyParams};

fn main() {
    let seed = master_seed();
    let doc = run_study(&StudyParams::full(), seed);
    let path = "BENCH_scheduler.json";
    std::fs::write(path, impress_json::to_string_pretty(&doc)).expect("write BENCH_scheduler.json");
    eprintln!("wrote {path}");
    if let Some(speedups) = doc.get("speedups").and_then(|s| s.as_array()) {
        println!("\nspeedup vs pre-optimization scheduler:");
        for s in speedups {
            println!(
                "  {:<44} {:>8.2}x",
                s.get("id").and_then(|v| v.as_str()).unwrap_or("?"),
                s.get("speedup").and_then(|v| v.as_f64()).unwrap_or(0.0)
            );
        }
    }
    if let Some(c) = doc.get("imrp_campaign") {
        println!(
            "  {:<44} {:>8.2}x",
            "imrp_campaign (24 complexes, wall time)",
            c.get("speedup_vs_baseline")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
        );
    }
    if let Some(t) = doc.get("telemetry_overhead") {
        println!(
            "  {:<44} {:>8.3}x",
            "telemetry on null sink vs telemetry off",
            t.get("overhead_ratio").and_then(|v| v.as_f64()).unwrap_or(0.0)
        );
    }
}
