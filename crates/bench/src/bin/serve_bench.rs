//! Multi-tenant campaign-service study → `BENCH_serve.json`.
//!
//! Sweeps 1k–10k concurrent campaigns over equal-weight tenants on a
//! simulated 1,000-node cluster behind `CampaignService`, reporting
//! p50/p99 campaign latency, the Jain fairness index over per-tenant
//! delivered core-seconds, and the service layer's wall-time overhead
//! versus independent round-robin coordinators; plus a weighted 1-vs-4
//! fair-share cell.
//!
//! ```text
//! cargo run --release -p impress-bench --bin serve_bench
//! ```

use impress_bench::harness::master_seed;
use impress_bench::serve::{run_study, StudyParams};

fn main() {
    let seed = master_seed();
    eprintln!("serve_bench: seed {seed}");
    let doc = run_study(&StudyParams::full(), seed);
    std::fs::write("BENCH_serve.json", impress_json::to_string_pretty(&doc))
        .expect("write BENCH_serve.json");
    if let Some(headline) = doc.get("headline") {
        println!(
            "headline: {} concurrent campaigns, p50 {} s / p99 {} s latency, jain {}, {}x overhead",
            headline
                .get("max_concurrent_campaigns")
                .and_then(|v| v.as_u64())
                .unwrap_or(0),
            headline
                .get("p50_latency_s")
                .and_then(|v| v.as_f64())
                .unwrap_or(f64::NAN),
            headline
                .get("p99_latency_s")
                .and_then(|v| v.as_f64())
                .unwrap_or(f64::NAN),
            headline
                .get("min_jain_fairness")
                .and_then(|v| v.as_f64())
                .unwrap_or(f64::NAN),
            headline
                .get("overhead_ratio")
                .and_then(|v| v.as_f64())
                .unwrap_or(f64::NAN),
        );
    }
    println!("wrote BENCH_serve.json");
}
