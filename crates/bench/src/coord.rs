//! Coordinator fast-path study: journaled-vs-bare campaign overhead and
//! the 1,000-concurrent-coordinator cell, written to `BENCH_coord.json`
//! by the `coord_bench` binary.
//!
//! The study documents its own *before* shape: [`baseline`] pins the
//! overhead measured on the pre-fast-path coordinator (per-record journal
//! appends through an intermediate JSON `Value` tree, a file open + flush
//! per record, `HashMap`-backed dispatch) so the checked-in artifact
//! always carries the comparison point. The quantity under test is the
//! *overhead delta* — journaled minus bare wall time for the identical
//! campaign — because that isolates the journal's cost from the
//! workload's.
//!
//! The headline cell drives **1,000 concurrent journaled coordinators**:
//! independent campaigns, each owning a one-node slice of a simulated
//! 1,000-node cluster, interleaved round-robin on one thread via
//! [`Coordinator::step`]. It is the first measurement on the ROADMAP's
//! multi-tenant axis (1k–10k concurrent campaigns per service).
//!
//! The logic lives in the library (not the binary) so `tests/hermetic.rs`
//! can run a tiny smoke iteration under `cargo test` — bench code cannot
//! bit-rot between releases.

use impress_json::Json;
use impress_pilot::backend::SimulatedBackend;
use impress_pilot::{Completion, PilotConfig, ResourceRequest, TaskDescription};
use impress_sim::SimDuration;
use impress_workflow::{
    Coordinator, FileJournal, Journal, JournalStore, MemoryJournal, NoDecisions, PipelineLogic,
    Step,
};

/// Bumped whenever the JSON document layout changes; `tests/hermetic.rs`
/// checks the checked-in artifact against this.
pub const COORD_BENCH_FORMAT_VERSION: u32 = 1;

/// Pre-optimization measurements, taken on the same machine that produced
/// the checked-in `BENCH_coord.json`, before the workflow fast path
/// landed.
///
/// Each overhead cell is `(store label, bare ms, journaled ms)` for one
/// [`run_overhead_cell`] campaign (256 pipelines × 8 single-task stages);
/// the overhead delta `journaled - bare` is the comparison quantity.
pub mod baseline {
    /// Commit the baseline was measured at.
    pub const COMMIT: &str = "4416bc4";
    /// What that coordinator looked like.
    pub const DESCRIPTION: &str = "per-record journal appends: every record serialized through \
         an intermediate JSON Value tree (twice: once for the CRC, once for the frame), one \
         file open + write + flush per record, HashMap-backed pipeline dispatch";
    /// `(store label, bare ms, journaled ms)` for the overhead campaign
    /// (median of 15 samples, seed 2025).
    pub const CELLS_MS: &[(&str, f64, f64)] = &[
        ("memory", 4.46, 20.87),
        ("file", 4.38, 28.19),
    ];
    /// Wall ms of the 1,000-concurrent-coordinator cell on the
    /// pre-fast-path coordinator (same shape as [`super::run_concurrent_cell`]).
    pub const CONCURRENT_1K_MS: f64 = 81.03;
}

/// Which durable store a journaled cell writes through.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// Shared in-memory line buffer ([`MemoryJournal`]).
    Memory,
    /// Newline-delimited file with a flush per commit ([`FileJournal`]).
    File,
}

impl StoreKind {
    /// Stable label used in the JSON document and the baseline table.
    pub fn label(self) -> &'static str {
        match self {
            StoreKind::Memory => "memory",
            StoreKind::File => "file",
        }
    }
}

/// A pipeline of `stages` trivial single-task stages — pure coordinator
/// and journal overhead, no meaningful work.
struct NullPipeline {
    stages: u32,
}

impl PipelineLogic<u64> for NullPipeline {
    fn name(&self) -> String {
        "null".into()
    }
    fn begin(&mut self) -> Step<u64> {
        self.next()
    }
    fn stage_done(&mut self, _: Vec<Completion>) -> Step<u64> {
        self.next()
    }
}

impl NullPipeline {
    fn next(&mut self) -> Step<u64> {
        if self.stages == 0 {
            return Step::Complete(0);
        }
        self.stages -= 1;
        Step::run(
            TaskDescription::new("null", ResourceRequest::cores(1), SimDuration::from_secs(5))
                .with_work(|| 0u64),
        )
    }
}

fn overhead_config(seed: u64) -> PilotConfig {
    PilotConfig {
        nodes: 8,
        bootstrap: SimDuration::from_secs(60),
        exec_setup_per_task: SimDuration::from_secs(1),
        ..PilotConfig::with_seed(seed)
    }
}

/// Drive one campaign of `pipelines` × `stages` trivial stages; returns
/// the journal record count (0 for a bare run).
fn drive_campaign(journal: Option<Journal>, pipelines: usize, stages: u32, seed: u64) -> u64 {
    let mut c = Coordinator::new(SimulatedBackend::new(overhead_config(seed)), NoDecisions);
    if let Some(j) = journal {
        c = c.with_journal(j);
    }
    for _ in 0..pipelines {
        c.add_pipeline(Box::new(NullPipeline { stages }));
    }
    c.run();
    assert_eq!(c.outcomes().len(), pipelines, "campaign must complete");
    c.journal().map(|j| j.records_written()).unwrap_or(0)
}

/// One measured journaled-vs-bare overhead cell.
pub struct OverheadCell {
    /// Which store the journaled arm wrote through.
    pub store: StoreKind,
    /// Median bare (unjournaled) wall ms.
    pub bare_ms: f64,
    /// Median journaled wall ms.
    pub journaled_ms: f64,
    /// Records the journaled arm appended.
    pub records: u64,
}

impl OverheadCell {
    /// The comparison quantity: journaled minus bare wall time.
    pub fn overhead_ms(&self) -> f64 {
        self.journaled_ms - self.bare_ms
    }
}

fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = std::time::Instant::now();
    let r = f();
    (start.elapsed().as_secs_f64() * 1e3, r)
}

fn scratch_journal_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "impress-coord-bench-{}-{tag}.journal",
        std::process::id()
    ))
}

/// Measure one journaled-vs-bare cell: `samples` interleaved bare and
/// journaled drains of the identical campaign, medians reported.
pub fn run_overhead_cell(
    store: StoreKind,
    pipelines: usize,
    stages: u32,
    samples: usize,
    seed: u64,
) -> OverheadCell {
    let mut bare = Vec::with_capacity(samples);
    let mut journaled = Vec::with_capacity(samples);
    let mut records = 0;
    for s in 0..samples {
        let (ms, _) = timed(|| drive_campaign(None, pipelines, stages, seed));
        bare.push(ms);
        let journal = match store {
            StoreKind::Memory => {
                Journal::new(Box::new(MemoryJournal::new()), "coord-bench", seed).unwrap()
            }
            StoreKind::File => {
                let path = scratch_journal_path(&format!("{}-{s}", store.label()));
                let file = FileJournal::new(&path);
                // Reset any stale content so appends start from a clean file.
                file.rewrite(&[]).unwrap();
                Journal::new(Box::new(file), "coord-bench", seed).unwrap()
            }
        };
        let (ms, n) = timed(|| drive_campaign(Some(journal), pipelines, stages, seed));
        journaled.push(ms);
        records = n;
        if store == StoreKind::File {
            let _ = std::fs::remove_file(scratch_journal_path(&format!("{}-{s}", store.label())));
        }
    }
    OverheadCell {
        store,
        bare_ms: median(bare),
        journaled_ms: median(journaled),
        records,
    }
}

/// The 1,000-concurrent-coordinator headline cell result.
pub struct ConcurrentCell {
    /// Coordinators driven.
    pub coordinators: usize,
    /// Campaigns that drained to completion.
    pub completed: usize,
    /// Total pipeline outcomes across the fleet.
    pub outcomes: usize,
    /// Total journal records appended across the fleet.
    pub records: u64,
    /// Wall ms for the round-robin drive (construction excluded).
    pub wall_ms: f64,
}

/// Drive `coordinators` independent journaled campaigns — each owning a
/// one-node slice of a simulated `coordinators`-node cluster — round-robin
/// on one thread via [`Coordinator::step`]. Repeated `samples` times
/// (fresh fleet each time, identical seeds, so every repeat drains the
/// identical virtual campaign); the median wall time is reported, since
/// the first drive of a freshly built fleet pays cold-cache and
/// frequency-ramp costs the steady state does not.
pub fn run_concurrent_cell(
    coordinators: usize,
    pipelines: usize,
    stages: u32,
    samples: usize,
    seed: u64,
) -> ConcurrentCell {
    let mut walls = Vec::with_capacity(samples);
    let mut cell = None;
    for _ in 0..samples.max(1) {
        let mut fleet: Vec<_> = (0..coordinators)
            .map(|i| {
                let config = PilotConfig {
                    nodes: 1,
                    bootstrap: SimDuration::from_secs(60),
                    exec_setup_per_task: SimDuration::from_secs(1),
                    ..PilotConfig::with_seed(seed ^ i as u64)
                };
                let journal =
                    Journal::new(Box::new(MemoryJournal::new()), "coord-bench-tenant", seed)
                        .unwrap();
                let mut c = Coordinator::new(SimulatedBackend::new(config), NoDecisions)
                    .with_journal(journal);
                for _ in 0..pipelines {
                    c.add_pipeline(Box::new(NullPipeline { stages }));
                }
                c
            })
            .collect();
        let (wall_ms, ()) = timed(|| {
            let mut alive: Vec<usize> = (0..fleet.len()).collect();
            while !alive.is_empty() {
                alive.retain(|&i| fleet[i].step());
            }
        });
        walls.push(wall_ms);
        let completed = fleet
            .iter()
            .filter(|c| c.outcomes().len() == pipelines)
            .count();
        cell = Some(ConcurrentCell {
            coordinators,
            completed,
            outcomes: fleet.iter().map(|c| c.outcomes().len()).sum(),
            records: fleet
                .iter()
                .map(|c| c.journal().expect("journaled").records_written())
                .sum(),
            wall_ms,
        });
    }
    let mut cell = cell.expect("at least one sample");
    cell.wall_ms = median(walls);
    cell
}

/// Knobs for one study run; [`StudyParams::full`] is what the study uses,
/// [`StudyParams::smoke`] is the tiny `cargo test` iteration.
pub struct StudyParams {
    /// Pipelines in the overhead campaign.
    pub overhead_pipelines: usize,
    /// Single-task stages per overhead pipeline.
    pub overhead_stages: u32,
    /// Coordinators in the concurrent cell.
    pub coordinators: usize,
    /// Pipelines per concurrent-cell campaign.
    pub concurrent_pipelines: usize,
    /// Stages per concurrent-cell pipeline.
    pub concurrent_stages: u32,
    /// Samples per overhead cell (median reported).
    pub samples: usize,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl StudyParams {
    /// The full study grid — what `coord_bench` runs and checks in. Must
    /// match the campaign shape [`baseline::CELLS_MS`] was measured with.
    pub fn full() -> Self {
        StudyParams {
            overhead_pipelines: 256,
            overhead_stages: 8,
            coordinators: 1_000,
            concurrent_pipelines: 2,
            concurrent_stages: 3,
            samples: env_usize("IMPRESS_BENCH_SAMPLES", 15),
        }
    }

    /// A seconds-scale iteration for `cargo test`.
    pub fn smoke() -> Self {
        StudyParams {
            overhead_pipelines: 8,
            overhead_stages: 2,
            coordinators: 8,
            concurrent_pipelines: 1,
            concurrent_stages: 2,
            samples: 1,
        }
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Run the study and build the `BENCH_coord.json` document.
pub fn run_study(params: &StudyParams, seed: u64) -> Json {
    let mut results = Vec::new();
    let mut reductions = Vec::new();
    let mut file_reduction = 0.0;
    for store in [StoreKind::Memory, StoreKind::File] {
        let cell = run_overhead_cell(
            store,
            params.overhead_pipelines,
            params.overhead_stages,
            params.samples,
            seed,
        );
        eprintln!(
            "  {:>6}: bare {:>8.2} ms  journaled {:>8.2} ms  overhead {:>8.2} ms  ({} records)",
            store.label(),
            cell.bare_ms,
            cell.journaled_ms,
            cell.overhead_ms(),
            cell.records
        );
        if let Some(&(_, base_bare, base_journaled)) = baseline::CELLS_MS
            .iter()
            .find(|&&(label, _, _)| label == store.label())
        {
            let base_overhead = base_journaled - base_bare;
            if base_overhead > 0.0 && cell.overhead_ms() > 0.0 {
                let reduction = base_overhead / cell.overhead_ms();
                if store == StoreKind::File {
                    file_reduction = reduction;
                }
                reductions.push(
                    Json::object()
                        .field("store", store.label())
                        .field("baseline_overhead_ms", round2(base_overhead))
                        .field("overhead_ms", round2(cell.overhead_ms()))
                        .field("reduction", round2(reduction))
                        .build(),
                );
            }
        }
        results.push(
            Json::object()
                .field("store", store.label())
                .field("pipelines", params.overhead_pipelines)
                .field("stages", params.overhead_stages as u64)
                .field("records", cell.records)
                .field("bare_ms", round2(cell.bare_ms))
                .field("journaled_ms", round2(cell.journaled_ms))
                .field("overhead_ms", round2(cell.overhead_ms()))
                .build(),
        );
    }
    let concurrent = run_concurrent_cell(
        params.coordinators,
        params.concurrent_pipelines,
        params.concurrent_stages,
        params.samples,
        seed,
    );
    eprintln!(
        "  {} concurrent journaled coordinators: {:.2} ms ({} records, {} completed)",
        concurrent.coordinators, concurrent.wall_ms, concurrent.records, concurrent.completed
    );
    assert_eq!(
        concurrent.completed, concurrent.coordinators,
        "every concurrent campaign must drain to completion"
    );
    Json::object()
        .field("format_version", COORD_BENCH_FORMAT_VERSION)
        .field("suite", "coord_bench")
        .field("seed", seed)
        .field(
            "baseline",
            Json::object()
                .field("commit", baseline::COMMIT)
                .field("description", baseline::DESCRIPTION)
                .field(
                    "cells",
                    baseline::CELLS_MS
                        .iter()
                        .map(|&(label, bare, journaled)| {
                            Json::object()
                                .field("store", label)
                                .field("bare_ms", bare)
                                .field("journaled_ms", journaled)
                                .field("overhead_ms", round2(journaled - bare))
                                .build()
                        })
                        .collect::<Vec<_>>(),
                )
                .field("concurrent_1k_ms", baseline::CONCURRENT_1K_MS)
                .build(),
        )
        .field("results", results)
        .field("overhead_reductions", reductions)
        .field(
            "headline",
            Json::object()
                .field("coordinators", concurrent.coordinators)
                .field("campaigns_completed", concurrent.completed)
                .field("pipeline_outcomes", concurrent.outcomes)
                .field("records", concurrent.records)
                .field("wall_ms", round2(concurrent.wall_ms))
                .field("all_completed", concurrent.completed == concurrent.coordinators)
                .field("five_x_file_overhead_reduction", file_reduction >= 5.0)
                .build(),
        )
        .build()
}
