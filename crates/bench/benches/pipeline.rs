//! End-to-end pipeline benchmarks: how fast one virtual-time experiment
//! replays, IM-RP vs CONT-V, and how replay cost scales with cohort size.
//!
//! The measured quantity is *host* time to replay a 27–45 virtual-hour
//! experiment — the speedup that makes the reproduction tractable.

use impress_bench::timing::{black_box, Suite};
use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::{run_cont_v_experiment, run_imrp};
use impress_core::ProtocolConfig;
use impress_proteins::datasets::{mined_pdz_complexes, named_pdz_domains};

fn bench_paper_arms(suite: &mut Suite) {
    let targets = named_pdz_domains(42);
    suite.bench("paper_arms/cont_v_4_domains", || {
        black_box(run_cont_v_experiment(&targets, ProtocolConfig::cont_v(1)))
    });
    suite.bench("paper_arms/imrp_4_domains", || {
        black_box(run_imrp(
            &targets,
            ProtocolConfig::imrp(1),
            AdaptivePolicy::default(),
        ))
    });
}

fn bench_cohort_scaling(suite: &mut Suite) {
    for &n in &[5usize, 10, 20] {
        let targets = mined_pdz_complexes(42, n);
        suite.bench(&format!("imrp_cohort_scaling/{n}"), || {
            black_box(run_imrp(
                &targets,
                ProtocolConfig::imrp(1),
                AdaptivePolicy {
                    sub_budget: n,
                    ..AdaptivePolicy::default()
                },
            ))
        });
    }
}

fn main() {
    let mut suite = Suite::new("pipeline");
    bench_paper_arms(&mut suite);
    bench_cohort_scaling(&mut suite);
    suite.finish();
}
