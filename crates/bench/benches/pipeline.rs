//! End-to-end pipeline benchmarks: how fast one virtual-time experiment
//! replays, IM-RP vs CONT-V, and how replay cost scales with cohort size.
//!
//! The measured quantity is *host* time to replay a 27–45 virtual-hour
//! experiment — the speedup that makes the reproduction tractable.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::{run_cont_v_experiment, run_imrp};
use impress_core::ProtocolConfig;
use impress_proteins::datasets::{mined_pdz_complexes, named_pdz_domains};

fn bench_paper_arms(c: &mut Criterion) {
    let targets = named_pdz_domains(42);
    let mut group = c.benchmark_group("pipeline/paper_arms");
    group.sample_size(10);
    group.bench_function("cont_v_4_domains", |b| {
        b.iter(|| black_box(run_cont_v_experiment(&targets, ProtocolConfig::cont_v(1))));
    });
    group.bench_function("imrp_4_domains", |b| {
        b.iter(|| {
            black_box(run_imrp(
                &targets,
                ProtocolConfig::imrp(1),
                AdaptivePolicy::default(),
            ))
        });
    });
    group.finish();
}

fn bench_cohort_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/imrp_cohort_scaling");
    group.sample_size(10);
    for &n in &[5usize, 10, 20] {
        let targets = mined_pdz_complexes(42, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(run_imrp(
                    &targets,
                    ProtocolConfig::imrp(1),
                    AdaptivePolicy {
                        sub_budget: n,
                        ..AdaptivePolicy::default()
                    },
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paper_arms, bench_cohort_scaling);
criterion_main!(benches);
