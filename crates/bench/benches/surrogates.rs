//! Surrogate-model micro-benchmarks: ProteinMPNN sampling, AlphaFold
//! prediction, MSA search, and baseline landscape evaluation.
//!
//! Relevance: the simulated experiments call these thousands of times; they
//! must be orders of magnitude cheaper than the virtual durations they
//! stand in for, or the DES replay advantage evaporates.

use impress_bench::timing::{black_box, Suite};
use impress_core::TargetToolkit;
use impress_proteins::datasets::named_pdz_domains;
use impress_proteins::msa::MsaMode;
use impress_proteins::{AlphaFoldConfig, MpnnConfig};
use impress_sim::SimRng;

fn bench_mpnn_sampling(suite: &mut Suite) {
    let target = named_pdz_domains(42).remove(0);
    let tk = TargetToolkit::for_target(&target, 7);
    for &n in &[1usize, 10, 50] {
        let cfg = MpnnConfig {
            num_sequences: n,
            ..MpnnConfig::default()
        };
        let mut rng = SimRng::from_seed(1);
        suite.bench(&format!("mpnn_sample/{n}"), || {
            black_box(tk.generator.generate(&tk.start, &cfg, &mut rng))
        });
    }
}

fn bench_alphafold_predict(suite: &mut Suite) {
    let target = named_pdz_domains(42).remove(1);
    let tk = TargetToolkit::for_target(&target, 7);
    let msa = tk
        .alphafold
        .build_msa(&tk.start.complex.receptor.sequence, MsaMode::Full);
    for &models in &[1usize, 5] {
        let cfg = AlphaFoldConfig {
            num_models: models,
            ..AlphaFoldConfig::default()
        };
        let mut rng = SimRng::from_seed(2);
        suite.bench(&format!("af2_predict/{models}"), || {
            black_box(
                tk.alphafold
                    .predict(&tk.start.complex, &msa, &cfg, 1, &mut rng),
            )
        });
    }
}

fn bench_msa_search(suite: &mut Suite) {
    let target = named_pdz_domains(42).remove(2);
    let tk = TargetToolkit::for_target(&target, 7);
    suite.bench("msa_search", || {
        black_box(
            tk.alphafold
                .build_msa(&tk.start.complex.receptor.sequence, MsaMode::Full),
        )
    });
}

fn bench_landscape_fitness(suite: &mut Suite) {
    let target = named_pdz_domains(42).remove(3);
    let seq = target.start.complex.receptor.sequence.clone();
    suite.bench("landscape_fitness", || {
        black_box(target.landscape.fitness(&seq))
    });
}

fn main() {
    let mut suite = Suite::new("surrogates");
    bench_mpnn_sampling(&mut suite);
    bench_alphafold_predict(&mut suite);
    bench_msa_search(&mut suite);
    bench_landscape_fitness(&mut suite);
    suite.finish();
}
