//! Surrogate-model micro-benchmarks: ProteinMPNN sampling, AlphaFold
//! prediction, MSA search, and baseline landscape evaluation.
//!
//! Relevance: the simulated experiments call these thousands of times; they
//! must be orders of magnitude cheaper than the virtual durations they
//! stand in for, or the DES replay advantage evaporates.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use impress_core::TargetToolkit;
use impress_proteins::datasets::named_pdz_domains;
use impress_proteins::msa::MsaMode;
use impress_proteins::{AlphaFoldConfig, MpnnConfig};
use impress_sim::SimRng;

fn bench_mpnn_sampling(c: &mut Criterion) {
    let target = named_pdz_domains(42).remove(0);
    let tk = TargetToolkit::for_target(&target, 7);
    let mut group = c.benchmark_group("surrogates/mpnn_sample");
    for &n in &[1usize, 10, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = MpnnConfig {
                num_sequences: n,
                ..MpnnConfig::default()
            };
            let mut rng = SimRng::from_seed(1);
            b.iter(|| black_box(tk.generator.generate(&tk.start, &cfg, &mut rng)));
        });
    }
    group.finish();
}

fn bench_alphafold_predict(c: &mut Criterion) {
    let target = named_pdz_domains(42).remove(1);
    let tk = TargetToolkit::for_target(&target, 7);
    let msa = tk
        .alphafold
        .build_msa(&tk.start.complex.receptor.sequence, MsaMode::Full);
    let mut group = c.benchmark_group("surrogates/af2_predict");
    for &models in &[1usize, 5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(models),
            &models,
            |b, &models| {
                let cfg = AlphaFoldConfig {
                    num_models: models,
                    ..AlphaFoldConfig::default()
                };
                let mut rng = SimRng::from_seed(2);
                b.iter(|| {
                    black_box(
                        tk.alphafold
                            .predict(&tk.start.complex, &msa, &cfg, 1, &mut rng),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_msa_search(c: &mut Criterion) {
    let target = named_pdz_domains(42).remove(2);
    let tk = TargetToolkit::for_target(&target, 7);
    c.bench_function("surrogates/msa_search", |b| {
        b.iter(|| {
            black_box(
                tk.alphafold
                    .build_msa(&tk.start.complex.receptor.sequence, MsaMode::Full),
            )
        });
    });
}

fn bench_landscape_fitness(c: &mut Criterion) {
    let target = named_pdz_domains(42).remove(3);
    let seq = target.start.complex.receptor.sequence.clone();
    c.bench_function("surrogates/landscape_fitness", |b| {
        b.iter(|| black_box(target.landscape.fitness(&seq)));
    });
}

criterion_group!(
    benches,
    bench_mpnn_sampling,
    bench_alphafold_predict,
    bench_msa_search,
    bench_landscape_fitness
);
criterion_main!(benches);
