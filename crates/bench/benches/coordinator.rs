//! Coordinator overhead benchmarks: pipeline round-trip cost with trivial
//! tasks, scaling in concurrent pipeline count, and decision-engine cost.
//!
//! These isolate the middleware's own overhead from the workload — the
//! pilot-runtime equivalent of a null-RPC benchmark.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use impress_pilot::backend::SimulatedBackend;
use impress_pilot::{Completion, PilotConfig, ResourceRequest, TaskDescription};
use impress_sim::SimDuration;
use impress_workflow::{Coordinator, NoDecisions, PipelineLogic, Step};

/// A pipeline of `stages` trivial single-task stages.
struct NullPipeline {
    stages: u32,
}

impl PipelineLogic<u32> for NullPipeline {
    fn name(&self) -> String {
        "null".into()
    }
    fn begin(&mut self) -> Step<u32> {
        self.next()
    }
    fn stage_done(&mut self, _: Vec<Completion>) -> Step<u32> {
        self.next()
    }
}

impl NullPipeline {
    fn next(&mut self) -> Step<u32> {
        if self.stages == 0 {
            return Step::Complete(0);
        }
        self.stages -= 1;
        Step::run(
            TaskDescription::new("null", ResourceRequest::cores(1), SimDuration::from_secs(1))
                .with_work(|| 0u32),
        )
    }
}

fn backend() -> SimulatedBackend {
    SimulatedBackend::new(PilotConfig {
        bootstrap: SimDuration::from_secs(1),
        exec_setup_per_task: SimDuration::ZERO,
        ..PilotConfig::default()
    })
}

fn bench_stage_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("coordinator/stage_round_trips");
    for &stages in &[10u32, 100, 1000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(stages),
            &stages,
            |b, &stages| {
                b.iter(|| {
                    let mut coord = Coordinator::new(backend(), NoDecisions);
                    coord.add_pipeline(Box::new(NullPipeline { stages }));
                    black_box(coord.run())
                });
            },
        );
    }
    group.finish();
}

fn bench_concurrent_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("coordinator/concurrent_pipelines");
    for &n in &[4usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut coord = Coordinator::new(backend(), NoDecisions);
                for _ in 0..n {
                    coord.add_pipeline(Box::new(NullPipeline { stages: 8 }));
                }
                black_box(coord.run())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stage_round_trip, bench_concurrent_pipelines);
criterion_main!(benches);
