//! Coordinator overhead benchmarks: pipeline round-trip cost with trivial
//! tasks, scaling in concurrent pipeline count, and decision-engine cost.
//!
//! These isolate the middleware's own overhead from the workload — the
//! pilot-runtime equivalent of a null-RPC benchmark.

use impress_bench::timing::{black_box, Suite};
use impress_pilot::backend::SimulatedBackend;
use impress_pilot::{Completion, PilotConfig, ResourceRequest, TaskDescription};
use impress_sim::SimDuration;
use impress_workflow::{Coordinator, NoDecisions, PipelineLogic, Step};

/// A pipeline of `stages` trivial single-task stages.
struct NullPipeline {
    stages: u32,
}

impl PipelineLogic<u32> for NullPipeline {
    fn name(&self) -> String {
        "null".into()
    }
    fn begin(&mut self) -> Step<u32> {
        self.next()
    }
    fn stage_done(&mut self, _: Vec<Completion>) -> Step<u32> {
        self.next()
    }
}

impl NullPipeline {
    fn next(&mut self) -> Step<u32> {
        if self.stages == 0 {
            return Step::Complete(0);
        }
        self.stages -= 1;
        Step::run(
            TaskDescription::new("null", ResourceRequest::cores(1), SimDuration::from_secs(1))
                .with_work(|| 0u32),
        )
    }
}

fn backend() -> SimulatedBackend {
    SimulatedBackend::new(PilotConfig {
        bootstrap: SimDuration::from_secs(1),
        exec_setup_per_task: SimDuration::ZERO,
        ..PilotConfig::default()
    })
}

fn bench_stage_round_trip(suite: &mut Suite) {
    for &stages in &[10u32, 100, 1000] {
        suite.bench(&format!("stage_round_trips/{stages}"), || {
            let mut coord = Coordinator::new(backend(), NoDecisions);
            coord.add_pipeline(Box::new(NullPipeline { stages }));
            black_box(coord.run())
        });
    }
}

fn bench_concurrent_pipelines(suite: &mut Suite) {
    for &n in &[4usize, 32, 128] {
        suite.bench(&format!("concurrent_pipelines/{n}"), || {
            let mut coord = Coordinator::new(backend(), NoDecisions);
            for _ in 0..n {
                coord.add_pipeline(Box::new(NullPipeline { stages: 8 }));
            }
            black_box(coord.run())
        });
    }
}

fn main() {
    let mut suite = Suite::new("coordinator");
    bench_stage_round_trip(&mut suite);
    bench_concurrent_pipelines(&mut suite);
    suite.finish();
}
