//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each variant replays the full virtual-time experiment; the timing
//! harness measures replay cost while the scientific effect (final design
//! quality) is printed once per variant, so `cargo bench` doubles as the
//! ablation table:
//!
//! 1. Stage-6 adaptive selection on/off,
//! 2. retry budget 1 / 5 / 10,
//! 3. full-MSA vs single-sequence mode (the EvoPro trade-off),
//! 4. speculation width 1 / 2 / 4 (utilization optimization).

use impress_bench::timing::{black_box, Suite};
use impress_core::adaptive::AdaptivePolicy;
use impress_core::experiment::run_imrp;
use impress_core::ProtocolConfig;
use impress_proteins::datasets::named_pdz_domains;
use impress_proteins::msa::MsaMode;

fn final_quality(result: &impress_core::ExperimentResult) -> f64 {
    let scores: Vec<f64> = result
        .outcomes
        .iter()
        .filter_map(|o| o.final_report().map(|r| r.score()))
        .collect();
    impress_sim::Summary::of(&scores).median
}

fn run_variant(mutate: impl Fn(&mut ProtocolConfig)) -> impress_core::ExperimentResult {
    let targets = named_pdz_domains(42);
    let mut config = ProtocolConfig::imrp(3);
    mutate(&mut config);
    run_imrp(&targets, config, AdaptivePolicy::default())
}

fn bench_adaptivity(suite: &mut Suite) {
    for &adaptive in &[true, false] {
        let result = run_variant(|cfg| cfg.adaptive = adaptive);
        eprintln!(
            "[ablation] adaptive={adaptive}: median final score {:.4}, {} evaluations, CPU {:.0}%",
            final_quality(&result),
            result.evaluations,
            result.run.cpu_utilization * 100.0
        );
        suite.bench(&format!("adaptive_selection/{adaptive}"), || {
            black_box(run_variant(|cfg| cfg.adaptive = adaptive))
        });
    }
}

fn bench_retry_budget(suite: &mut Suite) {
    for &budget in &[1u32, 5, 10] {
        let result = run_variant(|cfg| cfg.retry_budget = budget);
        eprintln!(
            "[ablation] retry_budget={budget}: median final score {:.4}, {} evaluations, {} early terminations",
            final_quality(&result),
            result.evaluations,
            result.outcomes.iter().filter(|o| o.terminated_early).count()
        );
        suite.bench(&format!("retry_budget/{budget}"), || {
            black_box(run_variant(|cfg| cfg.retry_budget = budget))
        });
    }
}

fn bench_msa_mode(suite: &mut Suite) {
    for mode in [MsaMode::Full, MsaMode::SingleSequence] {
        let result = run_variant(|cfg| cfg.alphafold.msa_mode = mode);
        eprintln!(
            "[ablation] msa={mode:?}: median final score {:.4}, virtual makespan {:.1} h",
            final_quality(&result),
            result.run.makespan.as_hours_f64()
        );
        suite.bench(&format!("msa_mode/{mode:?}"), || {
            black_box(run_variant(|cfg| cfg.alphafold.msa_mode = mode))
        });
    }
}

fn bench_speculation(suite: &mut Suite) {
    for &width in &[1u32, 2, 4] {
        let result = run_variant(|cfg| cfg.speculation = width);
        eprintln!(
            "[ablation] speculation={width}: CPU {:.0}%, GPU {:.0}%, {:.1} virtual h, {} evaluations",
            result.run.cpu_utilization * 100.0,
            result.run.gpu_slot_utilization * 100.0,
            result.run.makespan.as_hours_f64(),
            result.evaluations
        );
        suite.bench(&format!("speculation_width/{width}"), || {
            black_box(run_variant(|cfg| cfg.speculation = width))
        });
    }
}

fn main() {
    let mut suite = Suite::new("ablations");
    bench_adaptivity(&mut suite);
    bench_retry_budget(&mut suite);
    bench_msa_mode(&mut suite);
    bench_speculation(&mut suite);
    suite.finish();
}
