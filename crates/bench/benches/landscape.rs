//! Landscape micro-benchmarks: NK fitness evaluation cost vs sequence
//! length, local-score cost, and hill-climb sweeps.
//!
//! The MPNN surrogate evaluates ~20 local scores per mutated position per
//! proposal; these numbers bound how large a cohort the reproduction can
//! replay per host-second.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use impress_proteins::amino::ALL;
use impress_proteins::landscape::DesignLandscape;
use impress_proteins::Sequence;
use impress_sim::SimRng;

fn arb_receptor(l: &DesignLandscape, seed: u64) -> Sequence {
    let mut rng = SimRng::from_seed(seed);
    l.random_receptor(&mut rng)
}

fn bench_fitness_vs_length(c: &mut Criterion) {
    let peptide = Sequence::parse("EGYQDYEPEA").unwrap();
    let mut group = c.benchmark_group("landscape/fitness_vs_length");
    for &len in &[40usize, 90, 200, 400] {
        let l = DesignLandscape::new(7, len, peptide.clone());
        let seq = arb_receptor(&l, 1);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| black_box(l.fitness(&seq)));
        });
    }
    group.finish();
}

fn bench_local_score(c: &mut Criterion) {
    let peptide = Sequence::parse("EGYQDYEPEA").unwrap();
    let l = DesignLandscape::new(7, 90, peptide);
    let seq = arb_receptor(&l, 2);
    c.bench_function("landscape/local_score_all_candidates", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &aa in &ALL {
                acc += l.local_score(&seq, 45, aa);
            }
            black_box(acc)
        });
    });
}

fn bench_hill_climb(c: &mut Criterion) {
    let peptide = Sequence::parse("EPEA").unwrap();
    let l = DesignLandscape::new(7, 90, peptide);
    let mut group = c.benchmark_group("landscape/hill_climb_sweeps");
    group.sample_size(20);
    for &sweeps in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(sweeps),
            &sweeps,
            |b, &sweeps| {
                b.iter(|| {
                    let mut rng = SimRng::from_seed(3);
                    let start = l.random_receptor(&mut rng);
                    black_box(l.hill_climb(&start, sweeps, &mut rng))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fitness_vs_length,
    bench_local_score,
    bench_hill_climb
);
criterion_main!(benches);
