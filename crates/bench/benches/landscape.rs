//! Landscape micro-benchmarks: NK fitness evaluation cost vs sequence
//! length, local-score cost, and hill-climb sweeps.
//!
//! The MPNN surrogate evaluates ~20 local scores per mutated position per
//! proposal; these numbers bound how large a cohort the reproduction can
//! replay per host-second.

use impress_bench::timing::{black_box, Suite};
use impress_proteins::amino::ALL;
use impress_proteins::landscape::DesignLandscape;
use impress_proteins::Sequence;
use impress_sim::SimRng;

fn arb_receptor(l: &DesignLandscape, seed: u64) -> Sequence {
    let mut rng = SimRng::from_seed(seed);
    l.random_receptor(&mut rng)
}

fn bench_fitness_vs_length(suite: &mut Suite) {
    let peptide = Sequence::parse("EGYQDYEPEA").unwrap();
    for &len in &[40usize, 90, 200, 400] {
        let l = DesignLandscape::new(7, len, peptide.clone());
        let seq = arb_receptor(&l, 1);
        suite.bench(&format!("fitness_vs_length/{len}"), || {
            black_box(l.fitness(&seq))
        });
    }
}

fn bench_local_score(suite: &mut Suite) {
    let peptide = Sequence::parse("EGYQDYEPEA").unwrap();
    let l = DesignLandscape::new(7, 90, peptide);
    let seq = arb_receptor(&l, 2);
    suite.bench("local_score_all_candidates", || {
        let mut acc = 0.0;
        for &aa in &ALL {
            acc += l.local_score(&seq, 45, aa);
        }
        black_box(acc)
    });
}

fn bench_hill_climb(suite: &mut Suite) {
    let peptide = Sequence::parse("EPEA").unwrap();
    let l = DesignLandscape::new(7, 90, peptide);
    for &sweeps in &[1usize, 4] {
        suite.bench(&format!("hill_climb_sweeps/{sweeps}"), || {
            let mut rng = SimRng::from_seed(3);
            let start = l.random_receptor(&mut rng);
            black_box(l.hill_climb(&start, sweeps, &mut rng))
        });
    }
}

fn main() {
    let mut suite = Suite::new("landscape");
    bench_fitness_vs_length(&mut suite);
    bench_local_score(&mut suite);
    bench_hill_climb(&mut suite);
    suite.finish();
}
