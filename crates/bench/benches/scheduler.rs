//! Scheduler micro-benchmarks: placement throughput under load, FIFO vs
//! backfill, and the simulated backend's event-processing rate.
//!
//! Relevance: IM-RP submits hundreds of heterogeneous tasks per experiment;
//! the paper's "continuous scheduling" only pays off if placement decisions
//! are cheap relative to task granularity.

use impress_bench::timing::{black_box, Suite};
use impress_pilot::backend::SimulatedBackend;
use impress_pilot::{
    ExecutionBackend, NodeSpec, PilotConfig, PlacementPolicy, ResourceRequest, Scheduler,
    TaskDescription, TaskId,
};
use impress_sim::SimDuration;

/// A deterministic heterogeneous task stream shaped like the protocol's
/// (many small CPU tasks, 6-core MSAs, 1-GPU inferences).
fn task_stream(n: usize) -> Vec<ResourceRequest> {
    (0..n)
        .map(|i| match i % 5 {
            0 => ResourceRequest::cores(6),        // MSA
            1 => ResourceRequest::with_gpus(2, 1), // inference
            2 => ResourceRequest::with_gpus(2, 1), // MPNN
            _ => ResourceRequest::cores(1),        // bookkeeping
        })
        .collect()
}

fn bench_placement(suite: &mut Suite) {
    for &n in &[64usize, 256, 1024] {
        for policy in [PlacementPolicy::Fifo, PlacementPolicy::Backfill] {
            let stream = task_stream(n);
            suite.bench(&format!("place_release_cycle/{policy:?}/{n}"), || {
                let mut s = Scheduler::new(NodeSpec::amarel(), policy);
                for (i, req) in stream.iter().enumerate() {
                    s.enqueue(TaskId(i as u64), *req);
                }
                let mut running = Vec::new();
                let mut done = 0usize;
                while done < n {
                    for pair in s.place_ready() {
                        running.push(pair);
                    }
                    if let Some((_, alloc)) = running.pop() {
                        done += 1;
                        s.release(&alloc);
                    }
                }
                black_box(done)
            });
        }
    }
}

fn bench_backend_event_rate(suite: &mut Suite) {
    for &n in &[100usize, 500] {
        suite.bench(&format!("simulated_backend_run/{n}"), || {
            let mut backend = SimulatedBackend::new(PilotConfig {
                bootstrap: SimDuration::from_secs(10),
                exec_setup_per_task: SimDuration::from_secs(1),
                ..PilotConfig::default()
            });
            for (i, req) in task_stream(n).iter().enumerate() {
                backend.submit(TaskDescription::new(
                    format!("t{i}"),
                    *req,
                    SimDuration::from_secs(60 + (i as u64 % 600)),
                ));
            }
            let mut completions = 0;
            while backend.next_completion().is_some() {
                completions += 1;
            }
            black_box(completions)
        });
    }
}

fn main() {
    let mut suite = Suite::new("scheduler");
    bench_placement(&mut suite);
    bench_backend_event_rate(&mut suite);
    suite.finish();
}
