//! Scheduler micro-benchmarks: placement throughput under load, FIFO vs
//! backfill, and the simulated backend's event-processing rate.
//!
//! Relevance: IM-RP submits hundreds of heterogeneous tasks per experiment;
//! the paper's "continuous scheduling" only pays off if placement decisions
//! are cheap relative to task granularity.

use impress_bench::sched::{placement_cycle, task_stream};
use impress_bench::timing::{black_box, Suite};
use impress_pilot::backend::SimulatedBackend;
use impress_pilot::{ExecutionBackend, PilotConfig, PlacementPolicy, TaskDescription};
use impress_sim::SimDuration;

fn bench_placement(suite: &mut Suite) {
    for &n in &[64usize, 256, 1024, 8192] {
        for policy in [PlacementPolicy::Fifo, PlacementPolicy::Backfill] {
            let stream = task_stream(n);
            suite.bench(&format!("place_release_cycle/{policy:?}/{n}"), || {
                black_box(placement_cycle(policy, 1, &stream))
            });
        }
    }
    // Multi-node first-fit: the scan cost multiplies by the node count, so
    // a cluster-sized queue is where the blocked-shape cache has to earn
    // its keep.
    for &(nodes, n) in &[(8u32, 2048usize), (32, 8192)] {
        let stream = task_stream(n);
        suite.bench(&format!("place_release_cycle_cluster/{nodes}x/{n}"), || {
            black_box(placement_cycle(PlacementPolicy::Backfill, nodes, &stream))
        });
    }
}

fn bench_backend_event_rate(suite: &mut Suite) {
    for &n in &[100usize, 500] {
        suite.bench(&format!("simulated_backend_run/{n}"), || {
            let mut backend = SimulatedBackend::new(PilotConfig {
                bootstrap: SimDuration::from_secs(10),
                exec_setup_per_task: SimDuration::from_secs(1),
                ..PilotConfig::default()
            });
            for (i, req) in task_stream(n).iter().enumerate() {
                backend.submit(TaskDescription::new(
                    format!("t{i}"),
                    *req,
                    SimDuration::from_secs(60 + (i as u64 % 600)),
                ));
            }
            let mut completions = 0;
            while backend.next_completion().is_some() {
                completions += 1;
            }
            black_box(completions)
        });
    }
}

fn main() {
    let mut suite = Suite::new("scheduler");
    bench_placement(&mut suite);
    bench_backend_event_rate(&mut suite);
    suite.finish();
}
