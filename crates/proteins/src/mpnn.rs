//! ProteinMPNN surrogate: backbone-conditioned sequence generation.
//!
//! Real ProteinMPNN autoregressively samples sequences whose local residue
//! choices fit the input backbone's geometry, and reports a log-likelihood
//! per sequence. The protocol consumes exactly two behaviours:
//!
//! 1. proposals are *locally sensible* — each mutated position prefers
//!    residues that fit their structural context, so proposals from a good
//!    backbone tend to improve the design;
//! 2. the log-likelihood *ranks* proposals informatively but imperfectly
//!    (ranking by ll is better than random, worse than oracle).
//!
//! The surrogate reproduces both against the hidden landscape: candidate
//! residues at mutated positions are Boltzmann-sampled from noisy local
//! scores, with noise that shrinks as backbone quality rises (a better model
//! in ⇒ better proposals out — the coupling that makes iterative design
//! work), and log-likelihoods are a noisy affine read of true fitness mapped
//! into ProteinMPNN's characteristic negative score range.

use crate::amino::ALL;
use crate::landscape::DesignLandscape;
use crate::sequence::Sequence;
use crate::structure::Structure;
use impress_json::json_struct;
use impress_sim::SimRng;

/// Sampling configuration (mirrors the user-definable settings the paper
/// mentions for Stage 1: number of sequences, chains/positions to design).
#[derive(Debug, Clone, PartialEq)]
pub struct MpnnConfig {
    /// Number of sequences to generate per call (paper: 10).
    pub num_sequences: usize,
    /// Sampling temperature; higher = more diverse, noisier proposals.
    pub temperature: f64,
    /// Receptor positions that must not be mutated (e.g. catalytic residues
    /// in the paper's protease future-work protocol).
    pub fixed_positions: Vec<usize>,
    /// Per-position mutation probability at temperature 1.0.
    pub mutation_rate: f64,
}
json_struct!(MpnnConfig {
    num_sequences,
    temperature,
    fixed_positions,
    mutation_rate
});

impl Default for MpnnConfig {
    fn default() -> Self {
        MpnnConfig {
            num_sequences: 10,
            temperature: 1.0,
            fixed_positions: Vec::new(),
            mutation_rate: 0.20,
        }
    }
}

/// A generated sequence with its log-likelihood score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredSequence {
    /// The proposed receptor sequence.
    pub sequence: Sequence,
    /// ProteinMPNN-style log-likelihood (more positive = more confident;
    /// typical range ≈ −2.5 … −0.5).
    pub log_likelihood: f64,
}
json_struct!(ScoredSequence {
    sequence,
    log_likelihood
});

/// Sort scored sequences by descending log-likelihood (Stage 2's selection
/// order), stably so equal scores keep generation order.
pub fn rank_by_log_likelihood(mut seqs: Vec<ScoredSequence>) -> Vec<ScoredSequence> {
    seqs.sort_by(|a, b| {
        b.log_likelihood
            .partial_cmp(&a.log_likelihood)
            .expect("log-likelihoods are finite")
    });
    seqs
}

/// The ProteinMPNN surrogate for one design target.
#[derive(Debug, Clone)]
pub struct SurrogateMpnn {
    landscape: DesignLandscape,
    /// Std-dev of the noise added to local residue scores at backbone
    /// quality 0 (shrinks linearly as quality rises).
    local_noise: f64,
    /// Std-dev of the log-likelihood observation noise (in raw-fitness
    /// units, before affine mapping).
    ll_noise: f64,
    /// Binding-groove positions (mutated preferentially: interface
    /// redesign is where ProteinMPNN spends its capacity on a two-chain
    /// complex, and it is what moves inter-chain pAE).
    groove: std::collections::HashSet<usize>,
}

impl SurrogateMpnn {
    /// Extra mutation propensity at binding-groove positions.
    pub const GROOVE_MUTATION_BOOST: f64 = 2.5;

    /// Per-proposal temperature ladder slope: proposal `i` of a batch
    /// samples at `T · (1 + LADDER · i)`. A batch thus spans conservative
    /// refinements to hot, diverse explorations — like a real ProteinMPNN
    /// batch, where some samples are close to the input sequence and some
    /// are far. Ranking by log-likelihood recovers the good ones; picking
    /// *randomly* (CONT-V; the non-adaptive final cycle of the expanded
    /// run) risks landing on a hot, regressed sample — the source of the
    /// paper's Fig. 3 iteration-4 quality dip.
    pub const LADDER: f64 = 0.13;

    /// Build a surrogate over the target's hidden landscape.
    pub fn new(landscape: DesignLandscape) -> Self {
        let groove = landscape.groove_positions().into_iter().collect();
        SurrogateMpnn {
            landscape,
            local_noise: 0.22,
            ll_noise: 0.012,
            groove,
        }
    }

    /// The underlying landscape (used by oracle-mode analysis in benches).
    pub fn landscape(&self) -> &DesignLandscape {
        &self.landscape
    }

    /// Override noise parameters (ablation studies).
    pub fn with_noise(mut self, local_noise: f64, ll_noise: f64) -> Self {
        self.local_noise = local_noise;
        self.ll_noise = ll_noise;
        self
    }

    /// Generate `config.num_sequences` scored proposals conditioned on
    /// `structure` (Stage 1 of the IMPRESS pipeline).
    pub fn sample(
        &self,
        structure: &Structure,
        config: &MpnnConfig,
        rng: &mut SimRng,
    ) -> Vec<ScoredSequence> {
        assert_eq!(
            structure.complex.receptor.len(),
            self.landscape.receptor_len(),
            "structure does not match this target's landscape"
        );
        (0..config.num_sequences)
            .map(|i| {
                let mut seq_rng = rng.fork_idx("mpnn-proposal", i as u64);
                let mut cfg = config.clone();
                cfg.temperature = config.temperature * (1.0 + Self::LADDER * i as f64);
                let sequence = self.propose(structure, &cfg, &mut seq_rng);
                let log_likelihood = self.score(&sequence, &mut seq_rng);
                ScoredSequence {
                    sequence,
                    log_likelihood,
                }
            })
            .collect()
    }

    /// Score an existing sequence (ProteinMPNN's scoring mode).
    pub fn score(&self, sequence: &Sequence, rng: &mut SimRng) -> f64 {
        let f = self.landscape.fitness(sequence);
        let raw = crate::landscape::FOLD_WEIGHT * f.raw_fold
            + (1.0 - crate::landscape::FOLD_WEIGHT) * f.raw_bind;
        let observed = raw + rng.normal_with(0.0, self.ll_noise);
        // Affine map into ProteinMPNN's characteristic negative range:
        // raw 0.45 (random) → ≈ −2.1, raw 0.80 (excellent) → ≈ −0.7.
        -(2.1 - 4.0 * (observed - 0.45))
    }

    /// One proposal: mutate designable positions with Boltzmann-weighted
    /// residue choices on noisy local scores.
    fn propose(&self, structure: &Structure, config: &MpnnConfig, rng: &mut SimRng) -> Sequence {
        let mut seq = structure.complex.receptor.sequence.clone();
        let q = structure.backbone_quality;
        // Better backbones sharpen the local signal the network "sees".
        let noise = self.local_noise * (1.2 - 0.8 * q);
        let mutate_p = (config.mutation_rate * config.temperature).clamp(0.0, 1.0);
        // Inverse temperature for residue choice at a mutated position.
        // Local score differences between candidates are ~0.005–0.03, so a
        // large β is needed for the softmax to prefer good residues (real
        // ProteinMPNN at T=0.1–0.2 is similarly near-greedy per position).
        let beta = 1600.0 / config.temperature.max(1e-3);
        // Observation noise on local scores, in score units (typical
        // candidate spread ≈ 0.015).
        let noise_sd = noise * 0.004;

        for pos in 0..seq.len() {
            let p = if self.groove.contains(&pos) {
                (mutate_p * Self::GROOVE_MUTATION_BOOST).min(1.0)
            } else {
                mutate_p
            };
            if config.fixed_positions.contains(&pos) || !rng.chance(p) {
                continue;
            }
            // Noisy local scores for all 20 candidates.
            let scores: Vec<f64> = ALL
                .iter()
                .map(|&aa| {
                    self.landscape.local_score(&seq, pos, aa) + rng.normal_with(0.0, noise_sd)
                })
                .collect();
            let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let weights: Vec<f64> = scores.iter().map(|s| ((s - max) * beta).exp()).collect();
            let total: f64 = weights.iter().sum();
            let mut draw = rng.uniform() * total;
            let mut chosen = ALL[ALL.len() - 1];
            for (i, w) in weights.iter().enumerate() {
                if draw < *w {
                    chosen = ALL[i];
                    break;
                }
                draw -= w;
            }
            seq.set(pos, chosen);
        }
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::Chain;
    use crate::structure::Complex;

    fn setup(seed: u64) -> (SurrogateMpnn, Structure) {
        let peptide = Sequence::parse("EGYQDYEPEA").unwrap();
        let landscape = DesignLandscape::new(seed, 80, peptide.clone());
        let mut rng = SimRng::from_seed(seed ^ 0xdead);
        // A mediocre starting design, like the paper's prepared structures:
        // ~20% of positions locally optimized (cf. datasets::fabricate).
        let mut native = landscape.random_receptor(&mut rng);
        for pos in 0..native.len() {
            if !rng.chance(0.20) {
                continue;
            }
            let best = ALL
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    landscape
                        .local_score(&native, pos, a)
                        .partial_cmp(&landscape.local_score(&native, pos, b))
                        .unwrap()
                })
                .unwrap();
            native.set(pos, best);
        }
        let q0 = landscape.fitness(&native).quality;
        let complex = Complex::new(
            "T",
            Chain::designable('A', native),
            Chain::fixed('B', peptide),
        );
        (
            SurrogateMpnn::new(landscape),
            Structure::starting(complex, q0),
        )
    }

    #[test]
    fn sample_returns_requested_count_with_finite_scores() {
        let (mpnn, s) = setup(1);
        let mut rng = SimRng::from_seed(2);
        let out = mpnn.sample(&s, &MpnnConfig::default(), &mut rng);
        assert_eq!(out.len(), 10);
        for ss in &out {
            assert!(ss.log_likelihood.is_finite());
            assert!(
                (-4.0..=0.5).contains(&ss.log_likelihood),
                "{}",
                ss.log_likelihood
            );
            assert_eq!(ss.sequence.len(), 80);
        }
    }

    #[test]
    fn proposals_differ_from_parent_but_not_wildly() {
        let (mpnn, s) = setup(3);
        let mut rng = SimRng::from_seed(4);
        let parent = &s.complex.receptor.sequence;
        let out = mpnn.sample(&s, &MpnnConfig::default(), &mut rng);
        // The temperature ladder makes later proposals hotter: the first
        // proposal stays close to the parent, the last may wander far, but
        // none is a full resample.
        let d0 = parent.hamming(&out[0].sequence);
        assert!(d0 <= 35, "first (coldest) proposal too far: {d0}");
        for ss in &out {
            let d = parent.hamming(&ss.sequence);
            assert!(d <= 60, "too many mutations: {d}");
        }
        let distinct: std::collections::HashSet<String> =
            out.iter().map(|s| s.sequence.to_letters()).collect();
        assert!(distinct.len() >= 5, "proposals should be diverse");
    }

    #[test]
    fn fixed_positions_are_never_mutated() {
        let (mpnn, s) = setup(5);
        let mut rng = SimRng::from_seed(6);
        let fixed = vec![0, 7, 13, 42, 79];
        let config = MpnnConfig {
            fixed_positions: fixed.clone(),
            temperature: 3.0, // aggressive mutation elsewhere
            ..MpnnConfig::default()
        };
        let parent = s.complex.receptor.sequence.clone();
        for ss in mpnn.sample(&s, &config, &mut rng) {
            for &p in &fixed {
                assert_eq!(
                    ss.sequence.at(p),
                    parent.at(p),
                    "fixed position {p} mutated"
                );
            }
        }
    }

    #[test]
    fn proposals_tend_to_improve_true_fitness() {
        let (mpnn, s) = setup(7);
        let mut rng = SimRng::from_seed(8);
        let q0 = mpnn
            .landscape()
            .fitness(&s.complex.receptor.sequence)
            .quality;
        let out = mpnn.sample(&s, &MpnnConfig::default(), &mut rng);
        let mean_q: f64 = out
            .iter()
            .map(|ss| mpnn.landscape().fitness(&ss.sequence).quality)
            .sum::<f64>()
            / out.len() as f64;
        assert!(
            mean_q > q0,
            "mean proposal quality {mean_q} should beat parent {q0}"
        );
    }

    #[test]
    fn log_likelihood_ranking_is_informative_not_perfect() {
        // Across many proposals, ll-rank should correlate positively with
        // true quality (Spearman-ish via top-half/bottom-half means).
        let (mpnn, s) = setup(9);
        let mut rng = SimRng::from_seed(10);
        let config = MpnnConfig {
            num_sequences: 60,
            ..MpnnConfig::default()
        };
        let ranked = rank_by_log_likelihood(mpnn.sample(&s, &config, &mut rng));
        let q: Vec<f64> = ranked
            .iter()
            .map(|ss| mpnn.landscape().fitness(&ss.sequence).quality)
            .collect();
        let top: f64 = q[..30].iter().sum::<f64>() / 30.0;
        let bottom: f64 = q[30..].iter().sum::<f64>() / 30.0;
        assert!(
            top > bottom,
            "top-ranked half ({top}) must beat bottom half ({bottom})"
        );
    }

    #[test]
    fn better_backbone_gives_better_proposals() {
        let (mpnn, s) = setup(11);
        let mut rng_a = SimRng::from_seed(12);
        let mut rng_b = SimRng::from_seed(12);
        let mut bad = s.clone();
        bad.backbone_quality = 0.05;
        let mut good = s;
        good.backbone_quality = 0.95;
        let config = MpnnConfig {
            num_sequences: 40,
            ..MpnnConfig::default()
        };
        let mean = |out: &[ScoredSequence]| {
            out.iter()
                .map(|ss| mpnn.landscape().fitness(&ss.sequence).quality)
                .sum::<f64>()
                / out.len() as f64
        };
        let q_bad = mean(&mpnn.sample(&bad, &config, &mut rng_a));
        let q_good = mean(&mpnn.sample(&good, &config, &mut rng_b));
        assert!(
            q_good >= q_bad - 0.01,
            "good backbone ({q_good}) should not trail bad backbone ({q_bad})"
        );
    }

    #[test]
    fn rank_is_stable_and_descending() {
        let mk = |ll: f64| ScoredSequence {
            sequence: Sequence::parse("AA").unwrap(),
            log_likelihood: ll,
        };
        let ranked = rank_by_log_likelihood(vec![mk(-2.0), mk(-0.5), mk(-1.0)]);
        let lls: Vec<f64> = ranked.iter().map(|s| s.log_likelihood).collect();
        assert_eq!(lls, vec![-0.5, -1.0, -2.0]);
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let (mpnn, s) = setup(13);
        let out1 = mpnn.sample(&s, &MpnnConfig::default(), &mut SimRng::from_seed(14));
        let out2 = mpnn.sample(&s, &MpnnConfig::default(), &mut SimRng::from_seed(14));
        assert_eq!(out1, out2);
    }
}
