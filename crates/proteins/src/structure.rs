//! Protein structures and complexes.
//!
//! A [`Complex`] is the designable system: a receptor chain (the PDZ domain)
//! plus a fixed target peptide chain (the α-synuclein C-terminus). A
//! [`Structure`] is one predicted 3-D model of a complex: its sequences, a
//! latent *backbone quality* in `[0, 1]`, pseudo Cα coordinates for PDB
//! output, and provenance (which design cycle produced it).
//!
//! Backbone quality is the state variable the design loop threads between
//! tools: AlphaFold's confidence in a model sets it, and ProteinMPNN
//! conditions its next proposals on it (a better backbone yields
//! better-focused sequence proposals, which is what makes iterative
//! refinement climb).

use crate::sequence::{Chain, ChainId, Sequence};
use impress_json::json_struct;

/// A Cα position in ångströms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaAtom {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
    /// z coordinate.
    pub z: f64,
}
json_struct!(CaAtom { x, y, z });

/// The designable system: receptor + fixed peptide.
#[derive(Debug, Clone, PartialEq)]
pub struct Complex {
    /// Human-readable target name (e.g. `"NHERF3"` or a synthetic PDB id).
    pub name: String,
    /// The designable receptor chain.
    pub receptor: Chain,
    /// The fixed target peptide chain.
    pub peptide: Chain,
}
json_struct!(Complex {
    name,
    receptor,
    peptide
});

impl Complex {
    /// Build a complex from a designable receptor and fixed peptide.
    pub fn new(name: impl Into<String>, receptor: Chain, peptide: Chain) -> Self {
        let receptor_designable = receptor.designable;
        let c = Complex {
            name: name.into(),
            receptor,
            peptide,
        };
        assert!(
            receptor_designable,
            "receptor chain of {} must be designable",
            c.name
        );
        assert!(
            !c.peptide.designable,
            "peptide chain of {} must be fixed",
            c.name
        );
        c
    }

    /// Total residue count across both chains.
    pub fn total_len(&self) -> usize {
        self.receptor.len() + self.peptide.len()
    }

    /// Replace the receptor sequence (lengths must match — design does not
    /// insert or delete residues).
    pub fn with_receptor_sequence(&self, seq: Sequence) -> Complex {
        assert_eq!(
            seq.len(),
            self.receptor.len(),
            "receptor redesign must preserve length"
        );
        let mut c = self.clone();
        c.receptor.sequence = seq;
        c
    }

    /// The chains in PDB order (receptor first).
    pub fn chains(&self) -> [&Chain; 2] {
        [&self.receptor, &self.peptide]
    }

    /// Find a chain by id.
    pub fn chain(&self, id: ChainId) -> Option<&Chain> {
        self.chains().into_iter().find(|c| c.id == id)
    }
}

/// One structural model of a complex.
#[derive(Debug, Clone, PartialEq)]
pub struct Structure {
    /// The modelled complex (sequences as folded).
    pub complex: Complex,
    /// Latent model quality in `[0, 1]`; set from AlphaFold confidence.
    pub backbone_quality: f64,
    /// Design cycle that produced this model (0 = starting structure).
    pub iteration: u32,
}
json_struct!(Structure {
    complex,
    backbone_quality,
    iteration
});

impl Structure {
    /// A starting structure for a complex, with the given initial backbone
    /// quality (clamped to `[0, 1]`).
    pub fn starting(complex: Complex, backbone_quality: f64) -> Self {
        Structure {
            complex,
            backbone_quality: backbone_quality.clamp(0.0, 1.0),
            iteration: 0,
        }
    }

    /// A refined model produced at design cycle `iteration`.
    pub fn refined(complex: Complex, backbone_quality: f64, iteration: u32) -> Self {
        Structure {
            complex,
            backbone_quality: backbone_quality.clamp(0.0, 1.0),
            iteration,
        }
    }

    /// Deterministic pseudo Cα trace for PDB output: an ideal α-helical path
    /// for the receptor and an extended strand for the peptide, offset so the
    /// chains do not overlap. Purely presentational — design quality lives in
    /// the landscape, not in these coordinates.
    pub fn ca_trace(&self) -> Vec<(ChainId, Vec<CaAtom>)> {
        let helix = |n: usize, z_off: f64| -> Vec<CaAtom> {
            // Ideal α-helix: rise 1.5 Å per residue, 100° turn, radius 2.3 Å.
            (0..n)
                .map(|i| {
                    let theta = (i as f64) * 100.0_f64.to_radians();
                    CaAtom {
                        x: 2.3 * theta.cos(),
                        y: 2.3 * theta.sin(),
                        z: z_off + 1.5 * i as f64,
                    }
                })
                .collect()
        };
        let strand = |n: usize| -> Vec<CaAtom> {
            // Extended strand alongside the helix at ~8 Å (a contact distance).
            (0..n)
                .map(|i| CaAtom {
                    x: 8.0,
                    y: 0.0,
                    z: 3.4 * i as f64,
                })
                .collect()
        };
        vec![
            (
                self.complex.receptor.id,
                helix(self.complex.receptor.len(), 0.0),
            ),
            (self.complex.peptide.id, strand(self.complex.peptide.len())),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complex() -> Complex {
        Complex::new(
            "TEST",
            Chain::designable('A', Sequence::parse("MKVLAWYQ").unwrap()),
            Chain::fixed('B', Sequence::parse("EPEA").unwrap()),
        )
    }

    #[test]
    fn complex_accessors() {
        let c = complex();
        assert_eq!(c.total_len(), 12);
        assert_eq!(c.chain(ChainId('A')).unwrap().len(), 8);
        assert_eq!(c.chain(ChainId('B')).unwrap().len(), 4);
        assert!(c.chain(ChainId('C')).is_none());
    }

    #[test]
    #[should_panic(expected = "must be fixed")]
    fn designable_peptide_rejected() {
        Complex::new(
            "BAD",
            Chain::designable('A', Sequence::parse("MK").unwrap()),
            Chain::designable('B', Sequence::parse("EP").unwrap()),
        );
    }

    #[test]
    fn receptor_redesign_preserves_length() {
        let c = complex();
        let redesigned = c.with_receptor_sequence(Sequence::parse("MKVLAWYR").unwrap());
        assert_eq!(redesigned.receptor.sequence.to_letters(), "MKVLAWYR");
        assert_eq!(redesigned.peptide, c.peptide);
    }

    #[test]
    #[should_panic(expected = "preserve length")]
    fn receptor_redesign_length_mismatch_panics() {
        let c = complex();
        let _ = c.with_receptor_sequence(Sequence::parse("MK").unwrap());
    }

    #[test]
    fn backbone_quality_is_clamped() {
        let s = Structure::starting(complex(), 1.7);
        assert_eq!(s.backbone_quality, 1.0);
        let s = Structure::starting(complex(), -0.3);
        assert_eq!(s.backbone_quality, 0.0);
        assert_eq!(s.iteration, 0);
    }

    #[test]
    fn ca_trace_covers_all_residues() {
        let s = Structure::starting(complex(), 0.5);
        let trace = s.ca_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].1.len(), 8);
        assert_eq!(trace[1].1.len(), 4);
        // consecutive helix residues ~ sensible Cα spacing
        let d01 = {
            let a = trace[0].1[0];
            let b = trace[0].1[1];
            ((a.x - b.x).powi(2) + (a.y - b.y).powi(2) + (a.z - b.z).powi(2)).sqrt()
        };
        assert!(d01 > 2.0 && d01 < 5.0, "Cα spacing {d01}");
    }
}
