//! Interface (binding) component of the design landscape.
//!
//! PDZ domains recognize the C-terminal residues of their target peptide
//! through a binding groove. We model the groove as a deterministic set of
//! *interface positions* on the receptor, each in contact with one or two
//! peptide residues. A contact's score blends real physicochemistry
//! (hydrophobic packing, charge complementarity, size fit) with a seeded
//! pairwise term, so improving binding requires chemically sensible residue
//! choices *and* target-specific adaptation — mirroring how real PDZ
//! specificity arises.
//!
//! The binding score feeds the inter-chain pAE metric in the AlphaFold
//! surrogate; fold fitness (the NK component) feeds pLDDT/pTM. The two are
//! coupled through the total fitness but not identical, like the real
//! metrics.

use crate::amino::AminoAcid;
use crate::sequence::Sequence;

/// A receptor–peptide residue contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contact {
    /// Receptor position (0-based).
    pub receptor_pos: usize,
    /// Peptide position (0-based).
    pub peptide_pos: usize,
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The binding-interface component for one design target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceModel {
    seed: u64,
    contacts: Vec<Contact>,
    receptor_len: usize,
    peptide_len: usize,
}

impl InterfaceModel {
    /// Fraction of receptor positions that form the binding groove.
    pub const GROOVE_FRACTION: f64 = 0.18;

    /// Build the interface for a receptor of `receptor_len` residues binding
    /// a peptide of `peptide_len` residues. Contact topology is derived
    /// deterministically from `seed`.
    pub fn new(seed: u64, receptor_len: usize, peptide_len: usize) -> Self {
        assert!(receptor_len >= 8, "receptor too short for a groove");
        assert!(peptide_len >= 1, "peptide must have residues");
        let n_groove = ((receptor_len as f64 * Self::GROOVE_FRACTION).round() as usize).max(4);
        // Choose groove positions by seeded hash ranking — deterministic and
        // roughly uniform over the receptor.
        let mut ranked: Vec<usize> = (0..receptor_len).collect();
        ranked.sort_by_key(|&p| mix(seed ^ (p as u64 + 0x1234)));
        let mut groove: Vec<usize> = ranked.into_iter().take(n_groove).collect();
        groove.sort_unstable();
        // Each groove position contacts one peptide residue, biased toward
        // the peptide C-terminus (how PDZ domains actually read peptides).
        let contacts = groove
            .iter()
            .enumerate()
            .map(|(i, &rp)| {
                let h = mix(seed ^ ((i as u64) << 32) ^ rp as u64);
                // Bias: square the uniform draw toward 1 then map to index.
                let u = unit(h);
                let biased = 1.0 - (1.0 - u) * (1.0 - u);
                let pp = ((biased * peptide_len as f64) as usize).min(peptide_len - 1);
                Contact {
                    receptor_pos: rp,
                    peptide_pos: pp,
                }
            })
            .collect();
        InterfaceModel {
            seed,
            contacts,
            receptor_len,
            peptide_len,
        }
    }

    /// The contact map.
    pub fn contacts(&self) -> &[Contact] {
        &self.contacts
    }

    /// Receptor positions that belong to the binding groove.
    pub fn groove_positions(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.contacts.iter().map(|c| c.receptor_pos).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Score one receptor/peptide residue pair in `[0, 1]`.
    ///
    /// 55% physicochemistry, 45% seeded target-specific preference. The
    /// chemistry term rewards hydrophobic packing of hydrophobic peptide
    /// residues, charge complementarity, and avoiding size clashes.
    pub fn pair_score(&self, contact: Contact, receptor: AminoAcid, peptide: AminoAcid) -> f64 {
        let chem = {
            // Hydrophobic match: both hydrophobic is good; burying a charge
            // against a hydrophobe is bad.
            let hp = 1.0 - (receptor.hydropathy() - peptide.hydropathy()).abs() / 9.0;
            // Opposite charges attract, like charges repel.
            let q = receptor.charge() * peptide.charge();
            let electro = 0.5 - 0.5 * q; // q=-1 → 1.0 ; q=+1 → 0.0 ; neutral → 0.5
                                         // Size fit: the groove likes combined volumes near ~300 Å³.
            let v = receptor.volume() + peptide.volume();
            let size = 1.0 - ((v - 300.0).abs() / 250.0).min(1.0);
            (0.45 * hp + 0.25 * electro + 0.30 * size).clamp(0.0, 1.0)
        };
        let specific = unit(mix(self.seed
            ^ ((contact.receptor_pos as u64) << 40)
            ^ ((contact.peptide_pos as u64) << 20)
            ^ ((receptor.index() as u64) << 8)
            ^ peptide.index() as u64));
        0.55 * chem + 0.45 * specific
    }

    /// Mean contact score of the full interface — the raw binding fitness in
    /// `[0, 1]`.
    pub fn raw_binding(&self, receptor: &Sequence, peptide: &Sequence) -> f64 {
        assert_eq!(
            receptor.len(),
            self.receptor_len,
            "receptor length mismatch"
        );
        assert_eq!(peptide.len(), self.peptide_len, "peptide length mismatch");
        let mut total = 0.0;
        for &c in &self.contacts {
            total += self.pair_score(c, receptor.at(c.receptor_pos), peptide.at(c.peptide_pos));
        }
        total / self.contacts.len() as f64
    }

    /// Sum of contact scores touching receptor position `pos` if it held
    /// `candidate` — the local term the MPNN surrogate uses. Zero when `pos`
    /// is not in the groove.
    pub fn local_sum(&self, pos: usize, candidate: AminoAcid, peptide: &Sequence) -> f64 {
        self.contacts
            .iter()
            .filter(|c| c.receptor_pos == pos)
            .map(|&c| self.pair_score(c, candidate, peptide.at(c.peptide_pos)))
            .sum()
    }

    /// Number of contacts.
    pub fn num_contacts(&self) -> usize {
        self.contacts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::Sequence;

    fn pep() -> Sequence {
        Sequence::parse("EGYQDYEPEA").unwrap() // α-synuclein C-terminal 10-mer
    }

    fn receptor(n: usize) -> Sequence {
        use crate::amino::ALL;
        Sequence::new((0..n).map(|i| ALL[(i * 3) % 20]).collect())
    }

    #[test]
    fn groove_size_scales_with_receptor() {
        let m = InterfaceModel::new(1, 90, 10);
        let g = m.groove_positions();
        assert!((12..=22).contains(&g.len()), "groove size {}", g.len());
        assert!(g.iter().all(|&p| p < 90));
    }

    #[test]
    fn topology_is_deterministic_per_seed() {
        let a = InterfaceModel::new(42, 90, 10);
        let b = InterfaceModel::new(42, 90, 10);
        assert_eq!(a.contacts(), b.contacts());
        let c = InterfaceModel::new(43, 90, 10);
        assert_ne!(a.contacts(), c.contacts());
    }

    #[test]
    fn binding_in_unit_interval() {
        let m = InterfaceModel::new(5, 90, 10);
        let b = m.raw_binding(&receptor(90), &pep());
        assert!((0.0..=1.0).contains(&b), "binding {b}");
    }

    #[test]
    fn local_sum_predicts_single_mutation_delta() {
        let m = InterfaceModel::new(9, 60, 10);
        let r = receptor(60);
        let p = pep();
        let pos = m.groove_positions()[0];
        let cand = crate::amino::AminoAcid::Trp;
        let predicted = m.raw_binding(&r, &p)
            + (m.local_sum(pos, cand, &p) - m.local_sum(pos, r.at(pos), &p))
                / m.num_contacts() as f64;
        let actual = m.raw_binding(&r.with_substitution(pos, cand), &p);
        assert!((predicted - actual).abs() < 1e-12);
    }

    #[test]
    fn non_groove_positions_do_not_affect_binding() {
        let m = InterfaceModel::new(9, 60, 10);
        let groove = m.groove_positions();
        let r = receptor(60);
        let p = pep();
        let outside = (0..60).find(|x| !groove.contains(x)).unwrap();
        let before = m.raw_binding(&r, &p);
        let after = m.raw_binding(
            &r.with_substitution(outside, crate::amino::AminoAcid::Trp),
            &p,
        );
        assert_eq!(before, after);
        assert_eq!(m.local_sum(outside, crate::amino::AminoAcid::Trp, &p), 0.0);
    }

    #[test]
    fn charge_complementarity_scores_higher() {
        let m = InterfaceModel::new(3, 60, 10);
        let c = m.contacts()[0];
        // Peptide Glu (negative): receptor Arg (positive) must out-score Asp
        // (negative) on the chemistry component. Seeded term could offset it
        // for one contact, so average over all contacts.
        let (mut salt, mut clash) = (0.0, 0.0);
        for &c in m.contacts() {
            salt += m.pair_score(c, AminoAcid::Arg, AminoAcid::Glu);
            clash += m.pair_score(c, AminoAcid::Asp, AminoAcid::Glu);
        }
        assert!(
            salt > clash,
            "salt-bridge mean {salt} must beat charge-clash mean {clash}"
        );
        let _ = c;
    }

    #[test]
    #[should_panic(expected = "receptor length mismatch")]
    fn wrong_receptor_length_panics() {
        let m = InterfaceModel::new(1, 90, 10);
        let _ = m.raw_binding(&receptor(50), &pep());
    }
}
