//! NK-style epistatic fold-fitness landscape.
//!
//! Kauffman's NK model is the standard synthetic stand-in for protein fitness
//! landscapes: each position's contribution depends on its own residue and
//! its `K` sequence neighbours, giving tunable ruggedness. `K = 2` makes the
//! landscape rugged enough that naive hill climbing stalls in local optima —
//! so adaptive selection has something to beat — while staying climbable by
//! the 10-proposal/cycle budget the paper's protocol uses.
//!
//! Contributions are *hash-defined*, not table-stored: the contribution of
//! `(position, residue, neighbours)` is a splitmix64 hash of those values
//! and the landscape seed, mapped to `[0, 1)`. This keeps landscapes for
//! 70 × 100-residue targets allocation-free and bit-reproducible.

use crate::amino::AminoAcid;
use crate::sequence::Sequence;

/// Number of epistatic neighbours per position.
pub const K: usize = 2;

/// splitmix64 finalizer — a well-mixed 64→64 bit hash.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a hash to `[0, 1)`.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The NK fold-fitness component for one design target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NkLandscape {
    seed: u64,
    len: usize,
}

impl NkLandscape {
    /// Landscape over sequences of length `len`, defined by `seed`.
    pub fn new(seed: u64, len: usize) -> Self {
        assert!(len > K, "sequence must be longer than neighbourhood K={K}");
        NkLandscape { seed, len }
    }

    /// Sequence length this landscape is defined over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the landscape has zero length (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Contribution of position `pos` given the residue there and the
    /// residues at its `K` cyclic right-neighbours. Uniform in `[0, 1)`.
    #[inline]
    pub fn contribution(&self, pos: usize, own: AminoAcid, neighbours: [AminoAcid; K]) -> f64 {
        let mut h = self.seed ^ mix(pos as u64 + 1);
        h = mix(h ^ (own.index() as u64 + 1));
        for (i, n) in neighbours.iter().enumerate() {
            h = mix(h ^ ((n.index() as u64 + 1) << (8 * (i + 1))));
        }
        unit(h)
    }

    /// Neighbour residues of `pos` in `seq` (cyclic).
    #[inline]
    pub fn neighbours(&self, seq: &Sequence, pos: usize) -> [AminoAcid; K] {
        let n = self.len;
        [seq.at((pos + 1) % n), seq.at((pos + 2) % n)]
    }

    /// Mean per-position contribution of `seq` — the raw fold fitness in
    /// `[0, 1)`. Panics if the sequence length does not match.
    pub fn raw_fitness(&self, seq: &Sequence) -> f64 {
        assert_eq!(seq.len(), self.len, "sequence length mismatch");
        let mut total = 0.0;
        for pos in 0..self.len {
            total += self.contribution(pos, seq.at(pos), self.neighbours(seq, pos));
        }
        total / self.len as f64
    }

    /// Contribution *touched by* position `pos`: its own term plus the terms
    /// of the `K` positions whose neighbourhoods include `pos`. Dividing by
    /// `len` gives the exact change to [`NkLandscape::raw_fitness`] when only
    /// `pos` mutates — the cheap local score the MPNN surrogate ranks
    /// candidate residues with.
    pub fn local_sum(&self, seq: &Sequence, pos: usize, candidate: AminoAcid) -> f64 {
        let n = self.len;
        let mut probe = seq.clone();
        probe.set(pos, candidate);
        let mut total = self.contribution(pos, candidate, self.neighbours(&probe, pos));
        for back in 1..=K {
            let p = (pos + n - back) % n;
            total += self.contribution(p, probe.at(p), self.neighbours(&probe, p));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amino::ALL;
    use impress_sim_test_util::seq_of;

    /// Minimal local helper so tests read clearly.
    mod impress_sim_test_util {
        use crate::sequence::Sequence;
        pub fn seq_of(s: &str) -> Sequence {
            Sequence::parse(s).unwrap()
        }
    }

    #[test]
    fn fitness_is_deterministic() {
        let l = NkLandscape::new(7, 10);
        let s = seq_of("ACDEFGHIKL");
        assert_eq!(l.raw_fitness(&s), l.raw_fitness(&s));
        let l2 = NkLandscape::new(7, 10);
        assert_eq!(l.raw_fitness(&s), l2.raw_fitness(&s));
    }

    #[test]
    fn different_seeds_give_different_landscapes() {
        let a = NkLandscape::new(1, 10);
        let b = NkLandscape::new(2, 10);
        let s = seq_of("ACDEFGHIKL");
        assert_ne!(a.raw_fitness(&s), b.raw_fitness(&s));
    }

    #[test]
    fn fitness_in_unit_interval_with_random_mean_half() {
        let l = NkLandscape::new(3, 50);
        let mut sum = 0.0;
        let mut n = 0;
        for seed in 0..200u64 {
            // pseudo-random sequences from the seed
            let residues: Vec<_> = (0..50)
                .map(|i| ALL[(mix(seed * 1000 + i) % 20) as usize])
                .collect();
            let s = Sequence::new(residues);
            let f = l.raw_fitness(&s);
            assert!((0.0..1.0).contains(&f));
            sum += f;
            n += 1;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "random-sequence mean {mean}");
    }

    #[test]
    fn single_mutation_changes_only_local_terms() {
        let l = NkLandscape::new(11, 30);
        let residues: Vec<_> = (0..30).map(|i| ALL[(i * 7) % 20]).collect();
        let s = Sequence::new(residues);
        let pos = 13;
        for &cand in &ALL {
            let mutated = s.with_substitution(pos, cand);
            let predicted = l.raw_fitness(&s)
                + (l.local_sum(&mutated, pos, cand) - l.local_sum(&s, pos, s.at(pos))) / 30.0;
            let actual = l.raw_fitness(&mutated);
            assert!(
                (predicted - actual).abs() < 1e-12,
                "local_sum must exactly predict single-mutation delta"
            );
        }
    }

    #[test]
    fn epistasis_is_present() {
        // The effect of a mutation at pos depends on the background: K > 0.
        let l = NkLandscape::new(5, 20);
        let a = seq_of("AAAAAAAAAAAAAAAAAAAA");
        let b = seq_of("AAAAAAAAAAAAAAAAAAAW"); // differs at pos 19, a neighbour of 17/18
        let da = l.raw_fitness(&a.with_substitution(18, AminoAcid::Lys)) - l.raw_fitness(&a);
        let db = l.raw_fitness(&b.with_substitution(18, AminoAcid::Lys)) - l.raw_fitness(&b);
        assert!(
            (da - db).abs() > 1e-9,
            "mutation effect must depend on background (epistasis)"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_length_panics() {
        let l = NkLandscape::new(1, 10);
        let s = seq_of("ACD");
        let _ = l.raw_fitness(&s);
    }
}
