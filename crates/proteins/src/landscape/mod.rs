//! The hidden design-fitness landscape.
//!
//! Combines the NK fold component ([`nk`]) and the binding-interface
//! component ([`interface`]) into one [`DesignLandscape`] per design target.
//! The landscape plays the role of ground truth ("how good is this design
//! really?") that the real paper gets from physical reality; the AlphaFold
//! surrogate observes it noisily, the ProteinMPNN surrogate climbs it
//! locally, and the protocol's job — the thing the paper evaluates — is to
//! extract as much of it as possible per unit of compute.
//!
//! Raw fitness values concentrate near 0.5 for random sequences (means of
//! many bounded terms), so they are affine-rescaled into a *quality* scale
//! `q ∈ [0, 1]` where random ≈ 0.2 and the best designs reachable by
//! realistic optimization ≈ 0.85. The AlphaFold confidence metrics are
//! linear reads of `q` (see [`crate::alphafold`]), which places starting
//! structures and final designs in the paper's observed pLDDT/pTM/pAE
//! ranges.

pub mod interface;
pub mod nk;

pub use interface::{Contact, InterfaceModel};
pub use nk::NkLandscape;

use crate::amino::{AminoAcid, ALL};
use crate::sequence::Sequence;
use impress_json::json_struct;
use impress_sim::SimRng;

/// Weight of the fold component in total fitness (binding gets the rest).
pub const FOLD_WEIGHT: f64 = 0.55;

/// Raw-to-quality rescaling anchors for total fitness: [`RAW_LO`] is the
/// random-sequence mean, [`RAW_HI`] the practical greedy-optimization
/// asymptote (both measured empirically on PDZ-scale landscapes).
pub const RAW_LO: f64 = 0.53;
/// See [`RAW_LO`].
pub const RAW_HI: f64 = 0.835;

/// Raw-to-quality rescaling anchors for the binding component.
pub const BIND_LO: f64 = 0.46;
/// See [`BIND_LO`].
pub const BIND_HI: f64 = 0.88;

/// Raw-to-quality rescaling anchors for the fold component alone (used by
/// AlphaFold's monomer prediction mode, where no interface exists).
pub const FOLD_LO: f64 = 0.50;
/// See [`FOLD_LO`].
pub const FOLD_HI: f64 = 0.84;

/// Ground-truth fitness of one design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fitness {
    /// Raw NK fold fitness in `[0, 1)`.
    pub raw_fold: f64,
    /// Raw interface binding fitness in `[0, 1]`.
    pub raw_bind: f64,
    /// Total design quality `q` on the rescaled `[0, 1]` scale.
    pub quality: f64,
    /// Binding quality `q_bind` on the rescaled `[0, 1]` scale (drives the
    /// inter-chain pAE metric).
    pub bind_quality: f64,
    /// Fold-only quality on the rescaled `[0, 1]` scale (what a monomer
    /// prediction observes).
    pub fold_quality: f64,
}
json_struct!(Fitness {
    raw_fold,
    raw_bind,
    quality,
    bind_quality,
    fold_quality
});

/// The complete hidden landscape for one design target.
#[derive(Debug, Clone)]
pub struct DesignLandscape {
    nk: NkLandscape,
    interface: InterfaceModel,
    peptide: Sequence,
}

impl DesignLandscape {
    /// Landscape for a receptor of `receptor_len` residues binding `peptide`,
    /// fully determined by `seed`.
    pub fn new(seed: u64, receptor_len: usize, peptide: Sequence) -> Self {
        DesignLandscape {
            nk: NkLandscape::new(seed, receptor_len),
            interface: InterfaceModel::new(seed ^ 0xba5e_ba11, receptor_len, peptide.len()),
            peptide,
        }
    }

    /// The fixed target peptide.
    pub fn peptide(&self) -> &Sequence {
        &self.peptide
    }

    /// Receptor length the landscape is defined over.
    pub fn receptor_len(&self) -> usize {
        self.nk.len()
    }

    /// Receptor positions forming the binding groove.
    pub fn groove_positions(&self) -> Vec<usize> {
        self.interface.groove_positions()
    }

    /// Ground-truth fitness of a receptor sequence.
    pub fn fitness(&self, receptor: &Sequence) -> Fitness {
        let raw_fold = self.nk.raw_fitness(receptor);
        let raw_bind = self.interface.raw_binding(receptor, &self.peptide);
        let raw_total = FOLD_WEIGHT * raw_fold + (1.0 - FOLD_WEIGHT) * raw_bind;
        Fitness {
            raw_fold,
            raw_bind,
            quality: ((raw_total - RAW_LO) / (RAW_HI - RAW_LO)).clamp(0.0, 1.0),
            bind_quality: ((raw_bind - BIND_LO) / (BIND_HI - BIND_LO)).clamp(0.0, 1.0),
            fold_quality: ((raw_fold - FOLD_LO) / (FOLD_HI - FOLD_LO)).clamp(0.0, 1.0),
        }
    }

    /// Change to the *raw total* fitness if `pos` mutated to `candidate`,
    /// relative to an arbitrary per-position baseline. Only differences
    /// between candidates at the same position are meaningful. This is the
    /// local score the MPNN surrogate ranks residues with — it sees local
    /// structure chemistry, not the global landscape.
    pub fn local_score(&self, receptor: &Sequence, pos: usize, candidate: AminoAcid) -> f64 {
        let fold = self.nk.local_sum(receptor, pos, candidate) / self.nk.len() as f64;
        let bind = self.interface.local_sum(pos, candidate, &self.peptide)
            / self.interface.num_contacts() as f64;
        FOLD_WEIGHT * fold + (1.0 - FOLD_WEIGHT) * bind
    }

    /// Greedy first-improvement hill climb used to fabricate plausible
    /// "native" starting sequences: `sweeps` passes over random positions,
    /// accepting the best candidate whenever it improves raw total fitness.
    pub fn hill_climb(&self, start: &Sequence, sweeps: usize, rng: &mut SimRng) -> Sequence {
        let mut seq = start.clone();
        let n = seq.len();
        for _ in 0..sweeps {
            let mut order: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut order);
            for &pos in &order {
                let current = self.local_score(&seq, pos, seq.at(pos));
                let best = ALL
                    .iter()
                    .copied()
                    .max_by(|&a, &b| {
                        self.local_score(&seq, pos, a)
                            .partial_cmp(&self.local_score(&seq, pos, b))
                            .expect("scores are finite")
                    })
                    .expect("ALL is non-empty");
                if self.local_score(&seq, pos, best) > current {
                    seq.set(pos, best);
                }
            }
        }
        seq
    }

    /// A uniformly random receptor sequence of the right length.
    pub fn random_receptor(&self, rng: &mut SimRng) -> Sequence {
        Sequence::new(
            (0..self.receptor_len())
                .map(|_| *rng.choose(&ALL))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn landscape() -> DesignLandscape {
        DesignLandscape::new(99, 80, Sequence::parse("EGYQDYEPEA").unwrap())
    }

    #[test]
    fn random_sequences_have_low_quality() {
        let l = landscape();
        let mut rng = SimRng::from_seed(1);
        let qs: Vec<f64> = (0..50)
            .map(|_| l.fitness(&l.random_receptor(&mut rng)).quality)
            .collect();
        let mean = qs.iter().sum::<f64>() / qs.len() as f64;
        assert!(mean < 0.35, "random mean quality {mean}");
        assert!(qs.iter().all(|&q| (0.0..=1.0).contains(&q)));
    }

    #[test]
    fn hill_climbing_reaches_high_quality() {
        let l = landscape();
        let mut rng = SimRng::from_seed(2);
        let start = l.random_receptor(&mut rng);
        let q0 = l.fitness(&start).quality;
        let climbed = l.hill_climb(&start, 4, &mut rng);
        let q1 = l.fitness(&climbed).quality;
        assert!(
            q1 > q0 + 0.3,
            "hill climb must make large progress: {q0} → {q1}"
        );
        assert!(q1 > 0.6, "climbed quality {q1}");
    }

    #[test]
    fn local_score_ordering_predicts_global_improvement() {
        // Picking the best local candidate at a position must (usually)
        // improve global fitness — this is the signal MPNN exploits.
        let l = landscape();
        let mut rng = SimRng::from_seed(3);
        let seq = l.random_receptor(&mut rng);
        let base =
            FOLD_WEIGHT * l.fitness(&seq).raw_fold + (1.0 - FOLD_WEIGHT) * l.fitness(&seq).raw_bind;
        let mut improved = 0;
        for pos in 0..20 {
            let best = ALL
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    l.local_score(&seq, pos, a)
                        .partial_cmp(&l.local_score(&seq, pos, b))
                        .unwrap()
                })
                .unwrap();
            let f = l.fitness(&seq.with_substitution(pos, best));
            let raw = FOLD_WEIGHT * f.raw_fold + (1.0 - FOLD_WEIGHT) * f.raw_bind;
            if raw >= base {
                improved += 1;
            }
        }
        assert!(improved >= 17, "local best improved only {improved}/20");
    }

    #[test]
    fn fitness_is_deterministic_across_instances() {
        let a = landscape();
        let b = landscape();
        let mut rng = SimRng::from_seed(4);
        let seq = a.random_receptor(&mut rng);
        assert_eq!(a.fitness(&seq), b.fitness(&seq));
    }

    #[test]
    fn bind_quality_responds_to_groove_mutations_only() {
        let l = landscape();
        let mut rng = SimRng::from_seed(5);
        let seq = l.random_receptor(&mut rng);
        let groove = l.groove_positions();
        let outside = (0..l.receptor_len()).find(|p| !groove.contains(p)).unwrap();
        let f0 = l.fitness(&seq);
        let f1 = l.fitness(&seq.with_substitution(outside, AminoAcid::Trp));
        assert_eq!(f0.raw_bind, f1.raw_bind);
    }

    #[test]
    fn different_targets_have_different_optima() {
        let a = DesignLandscape::new(1, 60, Sequence::parse("EPEA").unwrap());
        let b = DesignLandscape::new(2, 60, Sequence::parse("EPEA").unwrap());
        let mut rng = SimRng::from_seed(6);
        let start = a.random_receptor(&mut rng);
        let best_a = a.hill_climb(&start, 3, &mut rng);
        // The sequence optimized for target a should not also be optimal for b.
        let qa = a.fitness(&best_a).quality;
        let qb = b.fitness(&best_a).quality;
        assert!(qa > qb + 0.2, "specificity: qa={qa} qb={qb}");
    }
}
