//! # impress-proteins
//!
//! Protein substrate for the IMPRESS reproduction: sequence and structure
//! types, design-fitness landscapes, and faithful *surrogates* of the two AI
//! tools the paper couples — ProteinMPNN (sequence generation conditioned on
//! a backbone) and AlphaFold2 (structure prediction with pLDDT / pTM /
//! inter-chain pAE confidence output).
//!
//! ## Why surrogates
//!
//! The real models need GPUs, hundred-gigabyte MSA databases, and weights we
//! cannot ship. The IMPRESS *protocol*, however, only interacts with them
//! through a narrow interface:
//!
//! * ProteinMPNN: backbone in → `(sequence, log-likelihood)` pairs out, where
//!   the log-likelihood ranking is informative about — but not perfectly
//!   correlated with — true design quality;
//! * AlphaFold: sequence in → ranked candidate structures + confidence
//!   metrics out, where the metrics track true quality with noise that
//!   shrinks as the MSA deepens.
//!
//! The surrogates implement exactly that contract on top of a hidden, rugged
//! NK-style fitness landscape (see [`landscape`]), so adaptive selection has
//! a real signal to exploit and the paper's quality dynamics (Figs. 2–3)
//! emerge from the protocol rather than being hard-coded.
//!
//! All randomness flows through `impress-sim`'s labelled deterministic
//! streams: identical seeds give bit-identical experiments.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod align;
pub mod alphafold;
pub mod amino;
pub mod datasets;
pub mod fasta;
pub mod landscape;
pub mod metrics;
pub mod mpnn;
pub mod msa;
pub mod mutations;
pub mod pdb;
pub mod profile;
pub mod sequence;
pub mod structure;

pub use align::{global_align, percent_identity, AlignScoring, Alignment};
pub use alphafold::{AlphaFoldConfig, Prediction, SurrogateAlphaFold};
pub use amino::AminoAcid;
pub use landscape::DesignLandscape;
pub use metrics::{ConfidenceReport, MetricKind};
pub use mpnn::{MpnnConfig, ScoredSequence, SurrogateMpnn};
pub use mutations::{diff as mutation_diff, format_mutations, Mutation};
pub use profile::SequenceProfile;
pub use sequence::{Chain, ChainId, Sequence};
pub use structure::{Complex, Structure};
