//! The twenty proteinogenic amino acids and their coarse physicochemical
//! properties.
//!
//! Properties (Kyte–Doolittle hydropathy, net charge at pH 7, side-chain
//! volume class) feed the interface-energy component of the design landscape
//! so that "good" designs correspond to chemically plausible interfaces
//! (hydrophobic packing, salt bridges) rather than arbitrary lookup noise.

use impress_json::json_enum;
use std::fmt;

/// One of the twenty standard amino acids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum AminoAcid {
    Ala,
    Arg,
    Asn,
    Asp,
    Cys,
    Gln,
    Glu,
    Gly,
    His,
    Ile,
    Leu,
    Lys,
    Met,
    Phe,
    Pro,
    Ser,
    Thr,
    Trp,
    Tyr,
    Val,
}
json_enum!(AminoAcid {
    Ala,
    Arg,
    Asn,
    Asp,
    Cys,
    Gln,
    Glu,
    Gly,
    His,
    Ile,
    Leu,
    Lys,
    Met,
    Phe,
    Pro,
    Ser,
    Thr,
    Trp,
    Tyr,
    Val
});

/// Error returned when parsing an unknown residue letter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownResidue(pub char);

impl fmt::Display for UnknownResidue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown residue letter {:?}", self.0)
    }
}

impl std::error::Error for UnknownResidue {}

/// All twenty amino acids, in the canonical (alphabetical three-letter) order
/// used for indexing lookup tables.
pub const ALL: [AminoAcid; 20] = [
    AminoAcid::Ala,
    AminoAcid::Arg,
    AminoAcid::Asn,
    AminoAcid::Asp,
    AminoAcid::Cys,
    AminoAcid::Gln,
    AminoAcid::Glu,
    AminoAcid::Gly,
    AminoAcid::His,
    AminoAcid::Ile,
    AminoAcid::Leu,
    AminoAcid::Lys,
    AminoAcid::Met,
    AminoAcid::Phe,
    AminoAcid::Pro,
    AminoAcid::Ser,
    AminoAcid::Thr,
    AminoAcid::Trp,
    AminoAcid::Tyr,
    AminoAcid::Val,
];

impl AminoAcid {
    /// Index of this residue in [`ALL`], stable across versions; used as a
    /// key into landscape lookup tables.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Residue at position `idx` of [`ALL`]. Panics if `idx >= 20`.
    #[inline]
    pub fn from_index(idx: usize) -> AminoAcid {
        ALL[idx]
    }

    /// One-letter IUPAC code.
    pub fn letter(self) -> char {
        match self {
            AminoAcid::Ala => 'A',
            AminoAcid::Arg => 'R',
            AminoAcid::Asn => 'N',
            AminoAcid::Asp => 'D',
            AminoAcid::Cys => 'C',
            AminoAcid::Gln => 'Q',
            AminoAcid::Glu => 'E',
            AminoAcid::Gly => 'G',
            AminoAcid::His => 'H',
            AminoAcid::Ile => 'I',
            AminoAcid::Leu => 'L',
            AminoAcid::Lys => 'K',
            AminoAcid::Met => 'M',
            AminoAcid::Phe => 'F',
            AminoAcid::Pro => 'P',
            AminoAcid::Ser => 'S',
            AminoAcid::Thr => 'T',
            AminoAcid::Trp => 'W',
            AminoAcid::Tyr => 'Y',
            AminoAcid::Val => 'V',
        }
    }

    /// Three-letter code (PDB residue name).
    pub fn three_letter(self) -> &'static str {
        match self {
            AminoAcid::Ala => "ALA",
            AminoAcid::Arg => "ARG",
            AminoAcid::Asn => "ASN",
            AminoAcid::Asp => "ASP",
            AminoAcid::Cys => "CYS",
            AminoAcid::Gln => "GLN",
            AminoAcid::Glu => "GLU",
            AminoAcid::Gly => "GLY",
            AminoAcid::His => "HIS",
            AminoAcid::Ile => "ILE",
            AminoAcid::Leu => "LEU",
            AminoAcid::Lys => "LYS",
            AminoAcid::Met => "MET",
            AminoAcid::Phe => "PHE",
            AminoAcid::Pro => "PRO",
            AminoAcid::Ser => "SER",
            AminoAcid::Thr => "THR",
            AminoAcid::Trp => "TRP",
            AminoAcid::Tyr => "TYR",
            AminoAcid::Val => "VAL",
        }
    }

    /// Parse a one-letter code (case-insensitive).
    pub fn from_letter(c: char) -> Result<AminoAcid, UnknownResidue> {
        match c.to_ascii_uppercase() {
            'A' => Ok(AminoAcid::Ala),
            'R' => Ok(AminoAcid::Arg),
            'N' => Ok(AminoAcid::Asn),
            'D' => Ok(AminoAcid::Asp),
            'C' => Ok(AminoAcid::Cys),
            'Q' => Ok(AminoAcid::Gln),
            'E' => Ok(AminoAcid::Glu),
            'G' => Ok(AminoAcid::Gly),
            'H' => Ok(AminoAcid::His),
            'I' => Ok(AminoAcid::Ile),
            'L' => Ok(AminoAcid::Leu),
            'K' => Ok(AminoAcid::Lys),
            'M' => Ok(AminoAcid::Met),
            'F' => Ok(AminoAcid::Phe),
            'P' => Ok(AminoAcid::Pro),
            'S' => Ok(AminoAcid::Ser),
            'T' => Ok(AminoAcid::Thr),
            'W' => Ok(AminoAcid::Trp),
            'Y' => Ok(AminoAcid::Tyr),
            'V' => Ok(AminoAcid::Val),
            other => Err(UnknownResidue(other)),
        }
    }

    /// Kyte–Doolittle hydropathy index (positive = hydrophobic).
    pub fn hydropathy(self) -> f64 {
        match self {
            AminoAcid::Ile => 4.5,
            AminoAcid::Val => 4.2,
            AminoAcid::Leu => 3.8,
            AminoAcid::Phe => 2.8,
            AminoAcid::Cys => 2.5,
            AminoAcid::Met => 1.9,
            AminoAcid::Ala => 1.8,
            AminoAcid::Gly => -0.4,
            AminoAcid::Thr => -0.7,
            AminoAcid::Ser => -0.8,
            AminoAcid::Trp => -0.9,
            AminoAcid::Tyr => -1.3,
            AminoAcid::Pro => -1.6,
            AminoAcid::His => -3.2,
            AminoAcid::Glu => -3.5,
            AminoAcid::Gln => -3.5,
            AminoAcid::Asp => -3.5,
            AminoAcid::Asn => -3.5,
            AminoAcid::Lys => -3.9,
            AminoAcid::Arg => -4.5,
        }
    }

    /// Net side-chain charge at physiological pH.
    pub fn charge(self) -> f64 {
        match self {
            AminoAcid::Arg | AminoAcid::Lys => 1.0,
            AminoAcid::His => 0.1,
            AminoAcid::Asp | AminoAcid::Glu => -1.0,
            _ => 0.0,
        }
    }

    /// Side-chain volume in cubic ångströms (Zamyatnin 1972, rounded).
    pub fn volume(self) -> f64 {
        match self {
            AminoAcid::Gly => 60.1,
            AminoAcid::Ala => 88.6,
            AminoAcid::Ser => 89.0,
            AminoAcid::Cys => 108.5,
            AminoAcid::Asp => 111.1,
            AminoAcid::Pro => 112.7,
            AminoAcid::Asn => 114.1,
            AminoAcid::Thr => 116.1,
            AminoAcid::Glu => 138.4,
            AminoAcid::Val => 140.0,
            AminoAcid::Gln => 143.8,
            AminoAcid::His => 153.2,
            AminoAcid::Met => 162.9,
            AminoAcid::Ile => 166.7,
            AminoAcid::Leu => 166.7,
            AminoAcid::Lys => 168.6,
            AminoAcid::Arg => 173.4,
            AminoAcid::Phe => 189.9,
            AminoAcid::Tyr => 193.6,
            AminoAcid::Trp => 227.8,
        }
    }

    /// Whether the residue is aromatic (π-stacking capable).
    pub fn is_aromatic(self) -> bool {
        matches!(
            self,
            AminoAcid::Phe | AminoAcid::Tyr | AminoAcid::Trp | AminoAcid::His
        )
    }
}

impl fmt::Display for AminoAcid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letters_round_trip() {
        for &aa in &ALL {
            assert_eq!(AminoAcid::from_letter(aa.letter()).unwrap(), aa);
            assert_eq!(
                AminoAcid::from_letter(aa.letter().to_ascii_lowercase()).unwrap(),
                aa
            );
        }
    }

    #[test]
    fn indices_round_trip_and_are_dense() {
        for (i, &aa) in ALL.iter().enumerate() {
            assert_eq!(aa.index(), i);
            assert_eq!(AminoAcid::from_index(i), aa);
        }
    }

    #[test]
    fn unknown_letters_error() {
        assert_eq!(AminoAcid::from_letter('X'), Err(UnknownResidue('X')));
        assert_eq!(AminoAcid::from_letter('Z'), Err(UnknownResidue('Z')));
        assert!(AminoAcid::from_letter('B').is_err());
    }

    #[test]
    fn three_letter_codes_are_unique() {
        let mut codes: Vec<_> = ALL.iter().map(|a| a.three_letter()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 20);
    }

    #[test]
    fn charges_are_physiological() {
        assert_eq!(AminoAcid::Lys.charge(), 1.0);
        assert_eq!(AminoAcid::Asp.charge(), -1.0);
        assert_eq!(AminoAcid::Gly.charge(), 0.0);
    }

    #[test]
    fn hydropathy_extremes() {
        let most = ALL.iter().copied().fold(AminoAcid::Ala, |best, aa| {
            if aa.hydropathy() > best.hydropathy() {
                aa
            } else {
                best
            }
        });
        assert_eq!(most, AminoAcid::Ile);
        let least = ALL.iter().copied().fold(AminoAcid::Ala, |worst, aa| {
            if aa.hydropathy() < worst.hydropathy() {
                aa
            } else {
                worst
            }
        });
        assert_eq!(least, AminoAcid::Arg);
    }

    #[test]
    fn glycine_is_smallest_tryptophan_largest() {
        for &aa in &ALL {
            assert!(aa.volume() >= AminoAcid::Gly.volume());
            assert!(aa.volume() <= AminoAcid::Trp.volume());
        }
    }
}
