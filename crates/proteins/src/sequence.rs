//! Protein sequences and chains.
//!
//! A [`Sequence`] is an ordered run of residues; a [`Chain`] is a named
//! sequence within a complex (receptor chain "A", peptide chain "B" in the
//! paper's PDZ–peptide systems). Mutation helpers preserve fixed positions —
//! the mechanism the paper's future-work section needs for protease designs
//! where catalytic residues must not change.

use crate::amino::{AminoAcid, UnknownResidue};
use impress_json::json_struct;
use std::fmt;

/// Identifier of a chain within a complex (e.g. `'A'`, `'B'`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChainId(pub char);
json_struct!(ChainId(char));

impl fmt::Display for ChainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An ordered run of amino-acid residues.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Sequence {
    residues: Vec<AminoAcid>,
}
json_struct!(Sequence { residues });

impl Sequence {
    /// A sequence from residues.
    pub fn new(residues: Vec<AminoAcid>) -> Self {
        Sequence { residues }
    }

    /// Parse from a one-letter string, rejecting unknown letters.
    pub fn parse(s: &str) -> Result<Self, UnknownResidue> {
        let residues = s
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(AminoAcid::from_letter)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Sequence { residues })
    }

    /// Number of residues.
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Residues as a slice.
    pub fn residues(&self) -> &[AminoAcid] {
        &self.residues
    }

    /// Residue at `pos`. Panics if out of bounds.
    pub fn at(&self, pos: usize) -> AminoAcid {
        self.residues[pos]
    }

    /// Return a copy with `pos` substituted by `aa`.
    pub fn with_substitution(&self, pos: usize, aa: AminoAcid) -> Sequence {
        let mut r = self.residues.clone();
        r[pos] = aa;
        Sequence { residues: r }
    }

    /// Set `pos` to `aa` in place.
    pub fn set(&mut self, pos: usize, aa: AminoAcid) {
        self.residues[pos] = aa;
    }

    /// Hamming distance to another sequence of the same length.
    /// Panics on length mismatch — comparing unrelated designs is a bug.
    pub fn hamming(&self, other: &Sequence) -> usize {
        assert_eq!(
            self.len(),
            other.len(),
            "hamming distance requires equal lengths"
        );
        self.residues
            .iter()
            .zip(&other.residues)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Positions (0-based) where the two sequences differ.
    pub fn diff_positions(&self, other: &Sequence) -> Vec<usize> {
        assert_eq!(self.len(), other.len());
        (0..self.len())
            .filter(|&i| self.residues[i] != other.residues[i])
            .collect()
    }

    /// One-letter string form.
    pub fn to_letters(&self) -> String {
        self.residues.iter().map(|a| a.letter()).collect()
    }

    /// A stable 64-bit content hash (FNV-1a over residue indices), used for
    /// deduplicating designs and deriving per-sequence RNG streams.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for aa in &self.residues {
            h ^= aa.index() as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

impl fmt::Display for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_letters())
    }
}

/// A named chain: a sequence plus its identifier and designability flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Chain identifier within the complex.
    pub id: ChainId,
    /// The chain's residues.
    pub sequence: Sequence,
    /// Whether design tools may mutate this chain (the target peptide is
    /// fixed; the receptor is designable).
    pub designable: bool,
}
json_struct!(Chain {
    id,
    sequence,
    designable
});

impl Chain {
    /// A designable chain.
    pub fn designable(id: char, sequence: Sequence) -> Self {
        Chain {
            id: ChainId(id),
            sequence,
            designable: true,
        }
    }

    /// A fixed (non-designable) chain, e.g. the target peptide.
    pub fn fixed(id: char, sequence: Sequence) -> Self {
        Chain {
            id: ChainId(id),
            sequence,
            designable: false,
        }
    }

    /// Number of residues in the chain.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Whether the chain has no residues.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        let s = Sequence::parse("ACDEFGHIKLMNPQRSTVWY").unwrap();
        assert_eq!(s.len(), 20);
        assert_eq!(s.to_letters(), "ACDEFGHIKLMNPQRSTVWY");
    }

    #[test]
    fn parse_skips_whitespace_rejects_unknown() {
        let s = Sequence::parse("AC DE\nFG").unwrap();
        assert_eq!(s.to_letters(), "ACDEFG");
        assert!(Sequence::parse("ACX").is_err());
    }

    #[test]
    fn substitution_changes_exactly_one_position() {
        let s = Sequence::parse("AAAA").unwrap();
        let t = s.with_substitution(2, AminoAcid::Trp);
        assert_eq!(t.to_letters(), "AAWA");
        assert_eq!(s.hamming(&t), 1);
        assert_eq!(s.diff_positions(&t), vec![2]);
    }

    #[test]
    fn hamming_of_self_is_zero() {
        let s = Sequence::parse("MKVLA").unwrap();
        assert_eq!(s.hamming(&s), 0);
        assert!(s.diff_positions(&s).is_empty());
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_length_mismatch_panics() {
        let a = Sequence::parse("AA").unwrap();
        let b = Sequence::parse("AAA").unwrap();
        let _ = a.hamming(&b);
    }

    #[test]
    fn content_hash_distinguishes_sequences() {
        let a = Sequence::parse("ACDEF").unwrap();
        let b = Sequence::parse("ACDEG").unwrap();
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(a.content_hash(), a.clone().content_hash());
    }

    #[test]
    fn chains_carry_designability() {
        let pep = Chain::fixed('B', Sequence::parse("EPEA").unwrap());
        let rec = Chain::designable('A', Sequence::parse("MKV").unwrap());
        assert!(!pep.designable);
        assert!(rec.designable);
        assert_eq!(pep.id.to_string(), "B");
        assert_eq!(pep.len(), 4);
    }
}
