//! AlphaFold2 surrogate: structure prediction with confidence metrics.
//!
//! The protocol consumes four behaviours of the real tool, all reproduced
//! here against the hidden landscape:
//!
//! 1. **Noisy observation of quality** — confidence metrics are affine reads
//!    of true design quality plus noise; the noise scales with the MSA's
//!    [`crate::msa::Msa::noise_factor`] (deep alignment → confident model),
//!    which is what makes the EvoPro single-sequence trade-off (§IV) real.
//! 2. **Multi-model ranking** — each prediction produces `num_models`
//!    candidate models ranked by pTM, and "returns the best complex"
//!    (Stage 4). Best-of-N selection on a noisy score gives the mild
//!    optimism real AF2 model selection has.
//! 3. **Two-phase cost** — a CPU-bound MSA search phase (hours; see
//!    [`crate::msa`]) and a GPU inference phase, the split that produces the
//!    paper's utilization asymmetry between Figs. 4 and 5.
//! 4. **Metric calibration** — pLDDT/pTM/inter-chain pAE land in the ranges
//!    the paper's figures show for PDZ–peptide complexes, with inter-chain
//!    pAE tracking the *binding* component specifically.

use crate::landscape::DesignLandscape;
use crate::metrics::ConfidenceReport;
use crate::msa::{Msa, MsaMode, SyntheticMsaDatabase};
use crate::sequence::Sequence;
use crate::structure::{Complex, Structure};
use impress_json::{json_enum, json_struct};
use impress_sim::{SimDuration, SimRng};

/// Metric calibration constants: observed metric = intercept + slope × q.
pub mod calibration {
    /// pLDDT = [`PLDDT_BASE`] + [`PLDDT_GAIN`] · q ± noise.
    pub const PLDDT_BASE: f64 = 60.0;
    /// See [`PLDDT_BASE`].
    pub const PLDDT_GAIN: f64 = 15.0;
    /// Per-model pLDDT noise σ at MSA noise factor 1.
    pub const PLDDT_NOISE: f64 = 0.9;

    /// pTM = [`PTM_BASE`] + [`PTM_GAIN`] · q ± noise.
    pub const PTM_BASE: f64 = 0.30;
    /// See [`PTM_BASE`].
    pub const PTM_GAIN: f64 = 0.62;
    /// Per-model pTM noise σ at MSA noise factor 1.
    pub const PTM_NOISE: f64 = 0.012;

    /// ipAE = [`PAE_BASE`] − [`PAE_GAIN`] · q_bind ± noise (Å).
    pub const PAE_BASE: f64 = 22.0;
    /// See [`PAE_BASE`].
    pub const PAE_GAIN: f64 = 20.0;
    /// Per-model ipAE noise σ at MSA noise factor 1.
    pub const PAE_NOISE: f64 = 0.45;

    /// σ of the latent quality observation (in q units) at noise factor 1.
    pub const QUALITY_NOISE: f64 = 0.035;

    /// Wall-clock minutes of inference per candidate model.
    pub const INFERENCE_MINS_PER_MODEL: f64 = 12.0;

    /// Fraction of the inference phase during which the GPU is actually
    /// computing (the rest is model loading, feature processing, I/O). This
    /// is what nvidia-smi-style *hardware* utilization sees; a pilot slot is
    /// held for the whole phase regardless.
    pub const GPU_BUSY_FRACTION: f64 = 0.33;

    /// Inter-chain pAE reported in monomer mode (no interface exists; the
    /// value is a neutral sentinel that never drives a comparison).
    pub const MONOMER_PAE: f64 = 15.0;
}

/// What is folded: the full receptor–peptide complex, or the receptor
/// alone. The paper's protease follow-up (§V) predicts designs "in
/// monomeric form" because AlphaFold struggles to place the peptide in
/// protease complexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictionMode {
    /// Fold the two-chain complex; all three metrics are meaningful.
    Multimer,
    /// Fold the receptor alone; pLDDT/pTM read the fold quality only and
    /// inter-chain pAE is reported as the uninformative
    /// [`calibration::MONOMER_PAE`] sentinel.
    Monomer,
}
json_enum!(PredictionMode { Multimer, Monomer });

/// Prediction configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaFoldConfig {
    /// Number of candidate models per prediction (AF2 default: 5). The
    /// non-adaptive control runs 1 — it picks randomly and never ranks.
    pub num_models: usize,
    /// MSA mode (full search vs single-sequence).
    pub msa_mode: MsaMode,
    /// Complex or monomer folding.
    pub mode: PredictionMode,
}
json_struct!(AlphaFoldConfig {
    num_models,
    msa_mode,
    mode
});

impl Default for AlphaFoldConfig {
    fn default() -> Self {
        AlphaFoldConfig {
            num_models: 5,
            msa_mode: MsaMode::Full,
            mode: PredictionMode::Multimer,
        }
    }
}

/// One candidate model's confidence report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateModel {
    /// Index within the prediction (0-based, generation order).
    pub model_id: usize,
    /// Confidence metrics for this model.
    pub report: ConfidenceReport,
}
json_struct!(CandidateModel { model_id, report });

/// The output of one AlphaFold prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The best model (highest pTM), as a structure usable downstream.
    pub structure: Structure,
    /// Confidence report of the best model.
    pub report: ConfidenceReport,
    /// All candidate models, ranked by descending pTM.
    pub candidates: Vec<CandidateModel>,
    /// MSA depth the prediction used (0 in single-sequence mode).
    pub msa_depth: usize,
}
json_struct!(Prediction {
    structure,
    report,
    candidates,
    msa_depth
});

/// The AlphaFold surrogate for one design target.
#[derive(Debug, Clone)]
pub struct SurrogateAlphaFold {
    landscape: DesignLandscape,
    database: SyntheticMsaDatabase,
}

impl SurrogateAlphaFold {
    /// Build a surrogate over the target's landscape and MSA database.
    pub fn new(landscape: DesignLandscape, database: SyntheticMsaDatabase) -> Self {
        SurrogateAlphaFold {
            landscape,
            database,
        }
    }

    /// The underlying landscape (oracle access for benches/analysis).
    pub fn landscape(&self) -> &DesignLandscape {
        &self.landscape
    }

    /// The MSA database backing this predictor.
    pub fn database(&self) -> &SyntheticMsaDatabase {
        &self.database
    }

    /// Run the MSA phase for a receptor sequence. CPU-bound; its virtual
    /// cost comes from [`SyntheticMsaDatabase::search_duration`].
    pub fn build_msa(&self, receptor: &Sequence, mode: MsaMode) -> Msa {
        self.database.search(receptor, mode)
    }

    /// Virtual duration of the MSA phase.
    pub fn msa_duration(
        &self,
        receptor: &Sequence,
        mode: MsaMode,
        rng: &mut SimRng,
    ) -> SimDuration {
        self.database.search_duration(receptor, mode, rng)
    }

    /// Virtual duration of the GPU inference phase (all models, one run).
    pub fn inference_duration(&self, config: &AlphaFoldConfig, rng: &mut SimRng) -> SimDuration {
        let mins = calibration::INFERENCE_MINS_PER_MODEL * config.num_models as f64;
        SimDuration::from_secs_f64(rng.jitter(mins * 60.0, 0.08))
    }

    /// Predict the structure of `complex` given a prepared MSA (Stage 4),
    /// producing ranked candidate models and the best model's metrics
    /// (Stage 5 gathers them from this report).
    pub fn predict(
        &self,
        complex: &Complex,
        msa: &Msa,
        config: &AlphaFoldConfig,
        iteration: u32,
        rng: &mut SimRng,
    ) -> Prediction {
        assert!(config.num_models >= 1, "need at least one model");
        let truth = self.landscape.fitness(&complex.receptor.sequence);
        let nf = msa.noise_factor;
        // The latent quality the model observes depends on what is folded:
        // a monomer prediction sees only the fold component.
        let q_latent = match config.mode {
            PredictionMode::Multimer => truth.quality,
            PredictionMode::Monomer => truth.fold_quality,
        };

        let mut candidates: Vec<(f64, CandidateModel)> = (0..config.num_models)
            .map(|model_id| {
                let mut mrng = rng.fork_idx("af2-model", model_id as u64);
                // Latent observed qualities for this model.
                let q_obs = (q_latent + mrng.normal_with(0.0, calibration::QUALITY_NOISE * nf))
                    .clamp(0.0, 1.0);
                let qb_obs = (truth.bind_quality
                    + mrng.normal_with(0.0, calibration::QUALITY_NOISE * 1.3 * nf))
                .clamp(0.0, 1.0);
                let pae = match config.mode {
                    PredictionMode::Multimer => {
                        calibration::PAE_BASE - calibration::PAE_GAIN * qb_obs
                            + mrng.normal_with(0.0, calibration::PAE_NOISE * nf)
                    }
                    PredictionMode::Monomer => calibration::MONOMER_PAE,
                };
                let report = ConfidenceReport::new(
                    calibration::PLDDT_BASE
                        + calibration::PLDDT_GAIN * q_obs
                        + mrng.normal_with(0.0, calibration::PLDDT_NOISE * nf),
                    calibration::PTM_BASE
                        + calibration::PTM_GAIN * q_obs
                        + mrng.normal_with(0.0, calibration::PTM_NOISE * nf),
                    pae,
                );
                (q_obs, CandidateModel { model_id, report })
            })
            .collect();

        // Stage 4: "ranks the candidate model structures by predicted
        // TM-score (pTM), and returns the best complex."
        candidates.sort_by(|a, b| {
            b.1.report
                .ptm
                .partial_cmp(&a.1.report.ptm)
                .expect("ptm is finite")
        });
        let (best_q, best) = candidates[0];
        let structure = Structure::refined(complex.clone(), best_q, iteration);
        Prediction {
            structure,
            report: best.report,
            candidates: candidates.into_iter().map(|(_, c)| c).collect(),
            msa_depth: msa.depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::Chain;

    fn setup(seed: u64) -> (SurrogateAlphaFold, Complex) {
        let peptide = Sequence::parse("EGYQDYEPEA").unwrap();
        let landscape = DesignLandscape::new(seed, 80, peptide.clone());
        let db = SyntheticMsaDatabase::new(seed ^ 0xfeed);
        let mut rng = SimRng::from_seed(seed);
        let native = landscape.hill_climb(&landscape.random_receptor(&mut rng), 1, &mut rng);
        let complex = Complex::new(
            "T",
            Chain::designable('A', native),
            Chain::fixed('B', peptide),
        );
        (SurrogateAlphaFold::new(landscape, db), complex)
    }

    #[test]
    fn candidates_are_ranked_by_ptm() {
        let (af, complex) = setup(1);
        let msa = af.build_msa(&complex.receptor.sequence, MsaMode::Full);
        let mut rng = SimRng::from_seed(2);
        let p = af.predict(&complex, &msa, &AlphaFoldConfig::default(), 1, &mut rng);
        assert_eq!(p.candidates.len(), 5);
        for w in p.candidates.windows(2) {
            assert!(w[0].report.ptm >= w[1].report.ptm);
        }
        assert_eq!(p.report, p.candidates[0].report);
        assert_eq!(p.structure.iteration, 1);
    }

    #[test]
    fn metrics_track_true_quality() {
        let (af, complex) = setup(3);
        let mut rng = SimRng::from_seed(4);
        let landscape = af.landscape().clone();
        // Compare a random (bad) and a hill-climbed (good) design.
        let bad_seq = landscape.random_receptor(&mut rng);
        let good_seq = landscape.hill_climb(&bad_seq, 4, &mut rng);
        let bad = complex.with_receptor_sequence(bad_seq);
        let good = complex.with_receptor_sequence(good_seq);
        let msa_b = af.build_msa(&bad.receptor.sequence, MsaMode::Full);
        let msa_g = af.build_msa(&good.receptor.sequence, MsaMode::Full);
        let pb = af.predict(&bad, &msa_b, &AlphaFoldConfig::default(), 0, &mut rng);
        let pg = af.predict(&good, &msa_g, &AlphaFoldConfig::default(), 0, &mut rng);
        assert!(pg.report.plddt > pb.report.plddt);
        assert!(pg.report.ptm > pb.report.ptm);
        assert!(pg.report.inter_chain_pae < pb.report.inter_chain_pae);
    }

    #[test]
    fn metrics_are_in_paper_ranges() {
        let (af, complex) = setup(5);
        let mut rng = SimRng::from_seed(6);
        let msa = af.build_msa(&complex.receptor.sequence, MsaMode::Full);
        let p = af.predict(&complex, &msa, &AlphaFoldConfig::default(), 0, &mut rng);
        assert!(
            (55.0..=85.0).contains(&p.report.plddt),
            "pLDDT {}",
            p.report.plddt
        );
        assert!((0.3..=1.0).contains(&p.report.ptm), "pTM {}", p.report.ptm);
        assert!(
            (2.0..=25.0).contains(&p.report.inter_chain_pae),
            "ipAE {}",
            p.report.inter_chain_pae
        );
    }

    #[test]
    fn single_sequence_mode_is_noisier() {
        let (af, complex) = setup(7);
        let spread = |mode: MsaMode, seed: u64| -> f64 {
            let msa = af.build_msa(&complex.receptor.sequence, mode);
            let cfg = AlphaFoldConfig {
                num_models: 1,
                msa_mode: mode,
                mode: PredictionMode::Multimer,
            };
            let vals: Vec<f64> = (0..40)
                .map(|i| {
                    let mut rng = SimRng::from_seed(seed * 1000 + i);
                    af.predict(&complex, &msa, &cfg, 0, &mut rng).report.plddt
                })
                .collect();
            impress_sim::Summary::of(&vals).std_dev
        };
        let full = spread(MsaMode::Full, 1);
        let single = spread(MsaMode::SingleSequence, 2);
        assert!(
            single > full * 1.4,
            "single-sequence σ {single} should well exceed full-MSA σ {full}"
        );
    }

    #[test]
    fn more_models_never_hurt_expected_ptm() {
        let (af, complex) = setup(9);
        let msa = af.build_msa(&complex.receptor.sequence, MsaMode::Full);
        let mean_ptm = |n: usize, seed_base: u64| -> f64 {
            (0..40)
                .map(|i| {
                    let mut rng = SimRng::from_seed(seed_base + i);
                    af.predict(
                        &complex,
                        &msa,
                        &AlphaFoldConfig {
                            num_models: n,
                            msa_mode: MsaMode::Full,
                            mode: PredictionMode::Multimer,
                        },
                        0,
                        &mut rng,
                    )
                    .report
                    .ptm
                })
                .sum::<f64>()
                / 40.0
        };
        let one = mean_ptm(1, 100);
        let five = mean_ptm(5, 10_000);
        assert!(
            five >= one,
            "best-of-5 pTM {five} should be ≥ single-model {one}"
        );
    }

    #[test]
    fn durations_have_cpu_heavy_msa_and_shorter_inference() {
        // Individual queries vary with homolog depth, so compare means over
        // a population of PDZ-scale queries.
        let (af, complex) = setup(11);
        let mut rng = SimRng::from_seed(12);
        let landscape = af.landscape().clone();
        let mean_msa: f64 = (0..20)
            .map(|_| {
                let q = landscape.random_receptor(&mut rng);
                af.msa_duration(&q, MsaMode::Full, &mut rng).as_hours_f64()
            })
            .sum::<f64>()
            / 20.0;
        let inf_d = af
            .inference_duration(&AlphaFoldConfig::default(), &mut rng)
            .as_hours_f64();
        assert!(mean_msa > 0.8, "mean MSA {mean_msa:.2}h");
        assert!(
            inf_d < mean_msa,
            "inference ({inf_d:.2}h) must be shorter than mean MSA ({mean_msa:.2}h)"
        );
        // 5 models ≈ an hour of inference slot time.
        assert!((0.5..2.0).contains(&inf_d));
        let _ = complex;
    }

    #[test]
    fn prediction_is_deterministic_given_seed() {
        let (af, complex) = setup(13);
        let msa = af.build_msa(&complex.receptor.sequence, MsaMode::Full);
        let p1 = af.predict(
            &complex,
            &msa,
            &AlphaFoldConfig::default(),
            2,
            &mut SimRng::from_seed(9),
        );
        let p2 = af.predict(
            &complex,
            &msa,
            &AlphaFoldConfig::default(),
            2,
            &mut SimRng::from_seed(9),
        );
        assert_eq!(p1, p2);
    }

    #[test]
    fn monomer_mode_reads_fold_quality_and_neutral_pae() {
        let (af, complex) = setup(17);
        let msa = af.build_msa(&complex.receptor.sequence, MsaMode::Full);
        let cfg = AlphaFoldConfig {
            mode: PredictionMode::Monomer,
            ..AlphaFoldConfig::default()
        };
        let mut rng = SimRng::from_seed(18);
        let p = af.predict(&complex, &msa, &cfg, 0, &mut rng);
        assert_eq!(
            p.report.inter_chain_pae,
            calibration::MONOMER_PAE,
            "monomer pAE is the sentinel"
        );
        // pLDDT tracks fold quality, not total quality.
        let truth = af.landscape().fitness(&complex.receptor.sequence);
        let implied_q = (p.report.plddt - calibration::PLDDT_BASE) / calibration::PLDDT_GAIN;
        assert!(
            (implied_q - truth.fold_quality).abs() < 0.25,
            "monomer pLDDT should read fold quality ({}) not total ({}): implied {implied_q}",
            truth.fold_quality,
            truth.quality
        );
    }

    #[test]
    fn backbone_quality_of_output_reflects_observation() {
        let (af, complex) = setup(15);
        let msa = af.build_msa(&complex.receptor.sequence, MsaMode::Full);
        let mut rng = SimRng::from_seed(16);
        let truth = af.landscape().fitness(&complex.receptor.sequence).quality;
        let p = af.predict(&complex, &msa, &AlphaFoldConfig::default(), 0, &mut rng);
        assert!(
            (p.structure.backbone_quality - truth).abs() < 0.2,
            "observed backbone quality {} should be near truth {}",
            p.structure.backbone_quality,
            truth
        );
    }
}
