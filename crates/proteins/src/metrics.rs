//! AlphaFold confidence metrics: pLDDT, pTM, and inter-chain pAE.
//!
//! These are the three quantities the paper tracks across design iterations
//! (Figs. 2–3) and reports net-Δ for (Table I). The types encode each
//! metric's range and polarity (pAE is *lower-is-better*), so comparison
//! logic in the protocol cannot silently get a sign wrong.

use impress_json::{json_enum, json_struct};
use std::fmt;

/// Which confidence metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// Predicted local distance difference test, 0–100, higher is better.
    Plddt,
    /// Predicted TM-score, 0–1, higher is better.
    Ptm,
    /// Inter-chain predicted aligned error in Å, lower is better.
    InterChainPae,
}
json_enum!(MetricKind {
    Plddt,
    Ptm,
    InterChainPae
});

impl MetricKind {
    /// All three metrics, in the paper's reporting order.
    pub const ALL: [MetricKind; 3] = [
        MetricKind::Plddt,
        MetricKind::Ptm,
        MetricKind::InterChainPae,
    ];

    /// Whether higher values are better for this metric.
    pub fn higher_is_better(self) -> bool {
        !matches!(self, MetricKind::InterChainPae)
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Plddt => "pLDDT",
            MetricKind::Ptm => "pTM",
            MetricKind::InterChainPae => "ipAE",
        }
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The confidence report AlphaFold attaches to one predicted model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceReport {
    /// Mean predicted lDDT over all residues (0–100).
    pub plddt: f64,
    /// Predicted TM-score of the complex (0–1).
    pub ptm: f64,
    /// Mean inter-chain predicted aligned error (Å, lower is better).
    pub inter_chain_pae: f64,
}
json_struct!(ConfidenceReport {
    plddt,
    ptm,
    inter_chain_pae
});

impl ConfidenceReport {
    /// Construct a report, clamping each metric into its physical range.
    pub fn new(plddt: f64, ptm: f64, inter_chain_pae: f64) -> Self {
        ConfidenceReport {
            plddt: plddt.clamp(0.0, 100.0),
            ptm: ptm.clamp(0.0, 1.0),
            inter_chain_pae: inter_chain_pae.clamp(0.0, 35.0),
        }
    }

    /// Value of one metric.
    pub fn get(&self, kind: MetricKind) -> f64 {
        match kind {
            MetricKind::Plddt => self.plddt,
            MetricKind::Ptm => self.ptm,
            MetricKind::InterChainPae => self.inter_chain_pae,
        }
    }

    /// Whether this report is an improvement over `previous` — the Stage 6
    /// acceptance test. The paper accepts a design cycle when "the structure
    /// quality improves"; we require the *majority* of the three metrics to
    /// move in their good direction, which is robust to one noisy metric.
    pub fn improves_over(&self, previous: &ConfidenceReport) -> bool {
        let votes = MetricKind::ALL
            .iter()
            .filter(|&&k| {
                if k.higher_is_better() {
                    self.get(k) > previous.get(k)
                } else {
                    self.get(k) < previous.get(k)
                }
            })
            .count();
        votes >= 2
    }

    /// Scalar ranking score: mean of each metric normalized to `[0, 1]` with
    /// good = 1. Used by the coordinator to rank pipeline outcomes globally.
    pub fn score(&self) -> f64 {
        let p = self.plddt / 100.0;
        let t = self.ptm;
        let e = 1.0 - self.inter_chain_pae / 35.0;
        (p + t + e) / 3.0
    }
}

impl fmt::Display for ConfidenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pLDDT={:.1} pTM={:.3} ipAE={:.2}Å",
            self.plddt, self.ptm, self.inter_chain_pae
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_clamps_ranges() {
        let r = ConfidenceReport::new(150.0, -0.5, 99.0);
        assert_eq!(r.plddt, 100.0);
        assert_eq!(r.ptm, 0.0);
        assert_eq!(r.inter_chain_pae, 35.0);
    }

    #[test]
    fn polarity_is_correct() {
        assert!(MetricKind::Plddt.higher_is_better());
        assert!(MetricKind::Ptm.higher_is_better());
        assert!(!MetricKind::InterChainPae.higher_is_better());
    }

    #[test]
    fn clear_improvement_is_detected() {
        let old = ConfidenceReport::new(70.0, 0.5, 15.0);
        let new = ConfidenceReport::new(75.0, 0.6, 12.0);
        assert!(new.improves_over(&old));
        assert!(!old.improves_over(&new));
    }

    #[test]
    fn majority_vote_tolerates_one_noisy_metric() {
        let old = ConfidenceReport::new(70.0, 0.5, 15.0);
        // pAE slightly worse, the other two better → still an improvement.
        let new = ConfidenceReport::new(74.0, 0.58, 15.5);
        assert!(new.improves_over(&old));
        // Only one metric better → not an improvement.
        let new2 = ConfidenceReport::new(74.0, 0.45, 15.5);
        assert!(!new2.improves_over(&old));
    }

    #[test]
    fn identical_reports_do_not_improve() {
        let r = ConfidenceReport::new(70.0, 0.5, 15.0);
        assert!(!r.improves_over(&r));
    }

    #[test]
    fn score_is_monotone_in_each_metric() {
        let base = ConfidenceReport::new(70.0, 0.5, 15.0);
        assert!(ConfidenceReport::new(80.0, 0.5, 15.0).score() > base.score());
        assert!(ConfidenceReport::new(70.0, 0.6, 15.0).score() > base.score());
        assert!(ConfidenceReport::new(70.0, 0.5, 10.0).score() > base.score());
    }

    #[test]
    fn get_matches_fields() {
        let r = ConfidenceReport::new(70.0, 0.5, 15.0);
        assert_eq!(r.get(MetricKind::Plddt), 70.0);
        assert_eq!(r.get(MetricKind::Ptm), 0.5);
        assert_eq!(r.get(MetricKind::InterChainPae), 15.0);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(MetricKind::Plddt.label(), "pLDDT");
        assert_eq!(MetricKind::Ptm.label(), "pTM");
        assert_eq!(MetricKind::InterChainPae.label(), "ipAE");
    }
}
