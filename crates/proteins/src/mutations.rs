//! Point-mutation notation: parsing, applying, and describing mutations in
//! the standard `A45G` convention (wild-type residue, 1-based position, new
//! residue) used throughout the protein-design literature.

use crate::amino::AminoAcid;
use crate::sequence::Sequence;
use impress_json::json_struct;
use std::fmt;

/// One point mutation in standard notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mutation {
    /// Wild-type residue.
    pub from: AminoAcid,
    /// 1-based sequence position.
    pub position: usize,
    /// Designed residue.
    pub to: AminoAcid,
}
json_struct!(Mutation { from, position, to });

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            self.from.letter(),
            self.position,
            self.to.letter()
        )
    }
}

/// Errors from mutation parsing and application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationError {
    /// The notation string was malformed.
    BadNotation(String),
    /// Position is 0 or beyond the sequence end.
    OutOfRange {
        /// The offending 1-based position.
        position: usize,
        /// The sequence length.
        len: usize,
    },
    /// The wild-type residue in the notation does not match the sequence.
    WildTypeMismatch {
        /// The mutation as written.
        mutation: Mutation,
        /// What the sequence actually has at that position.
        actual: AminoAcid,
    },
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::BadNotation(s) => write!(f, "bad mutation notation {s:?}"),
            MutationError::OutOfRange { position, len } => {
                write!(f, "position {position} out of range (length {len})")
            }
            MutationError::WildTypeMismatch { mutation, actual } => write!(
                f,
                "{mutation}: sequence has {} at position {}",
                actual.letter(),
                mutation.position
            ),
        }
    }
}

impl std::error::Error for MutationError {}

impl Mutation {
    /// Parse `A45G`-style notation.
    pub fn parse(s: &str) -> Result<Mutation, MutationError> {
        let s = s.trim();
        let bad = || MutationError::BadNotation(s.to_string());
        let mut chars = s.chars();
        let from = AminoAcid::from_letter(chars.next().ok_or_else(bad)?).map_err(|_| bad())?;
        let rest: String = chars.collect();
        if rest.len() < 2 {
            return Err(bad());
        }
        let (digits, to_letter) = rest.split_at(rest.len() - 1);
        let position: usize = digits.parse().map_err(|_| bad())?;
        if position == 0 {
            return Err(bad());
        }
        let to =
            AminoAcid::from_letter(to_letter.chars().next().ok_or_else(bad)?).map_err(|_| bad())?;
        Ok(Mutation { from, position, to })
    }

    /// Apply to a sequence, validating position and wild type.
    pub fn apply(&self, seq: &Sequence) -> Result<Sequence, MutationError> {
        if self.position == 0 || self.position > seq.len() {
            return Err(MutationError::OutOfRange {
                position: self.position,
                len: seq.len(),
            });
        }
        let actual = seq.at(self.position - 1);
        if actual != self.from {
            return Err(MutationError::WildTypeMismatch {
                mutation: *self,
                actual,
            });
        }
        Ok(seq.with_substitution(self.position - 1, self.to))
    }
}

/// All mutations turning `from` into `to` (equal lengths), in position order.
pub fn diff(from: &Sequence, to: &Sequence) -> Vec<Mutation> {
    assert_eq!(from.len(), to.len(), "diff requires equal lengths");
    (0..from.len())
        .filter(|&i| from.at(i) != to.at(i))
        .map(|i| Mutation {
            from: from.at(i),
            position: i + 1,
            to: to.at(i),
        })
        .collect()
}

/// Apply a list of mutations in order, validating each against the evolving
/// sequence.
pub fn apply_all(seq: &Sequence, mutations: &[Mutation]) -> Result<Sequence, MutationError> {
    let mut current = seq.clone();
    for m in mutations {
        current = m.apply(&current)?;
    }
    Ok(current)
}

/// Render a mutation list in the conventional comma-joined form
/// (`"A45G, W12F"`).
pub fn format_mutations(mutations: &[Mutation]) -> String {
    mutations
        .iter()
        .map(|m| m.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> Sequence {
        Sequence::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for notation in ["A45G", "W1F", "K120R"] {
            let m = Mutation::parse(notation).unwrap();
            assert_eq!(m.to_string(), notation);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "A", "AG", "A0G", "AxG", "45G", "A45", "Z45G", "A45B"] {
            assert!(
                matches!(Mutation::parse(bad), Err(MutationError::BadNotation(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn apply_validates_wild_type_and_range() {
        let s = seq("MKVLA");
        let ok = Mutation::parse("K2R").unwrap().apply(&s).unwrap();
        assert_eq!(ok.to_letters(), "MRVLA");
        assert!(matches!(
            Mutation::parse("A2R").unwrap().apply(&s),
            Err(MutationError::WildTypeMismatch { .. })
        ));
        assert!(matches!(
            Mutation::parse("K9R").unwrap().apply(&s),
            Err(MutationError::OutOfRange { .. })
        ));
    }

    #[test]
    fn diff_and_apply_all_invert() {
        let a = seq("MKVLAWYQDE");
        let b = seq("MRVLAWFQDE");
        let muts = diff(&a, &b);
        assert_eq!(format_mutations(&muts), "K2R, Y7F");
        assert_eq!(apply_all(&a, &muts).unwrap(), b);
    }

    #[test]
    fn diff_of_identical_is_empty() {
        let a = seq("MKVLA");
        assert!(diff(&a, &a).is_empty());
        assert_eq!(format_mutations(&[]), "");
    }

    #[test]
    fn apply_all_fails_fast_on_stale_wild_type() {
        let a = seq("MKVLA");
        // Second mutation claims K2 again after K2R already applied.
        let muts = vec![
            Mutation::parse("K2R").unwrap(),
            Mutation::parse("K2W").unwrap(),
        ];
        assert!(matches!(
            apply_all(&a, &muts),
            Err(MutationError::WildTypeMismatch { .. })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = Mutation::parse("A2R")
            .unwrap()
            .apply(&seq("MK"))
            .unwrap_err();
        let text = e.to_string();
        assert!(text.contains("A2R"), "{text}");
        assert!(text.contains('K'), "{text}");
    }
}
