//! Synthetic multiple-sequence-alignment database.
//!
//! The paper highlights (citing ParaFold) that AlphaFold's MSA construction
//! phase "runs on CPU, which takes hours to finish due to large databases
//! and I/O bottlenecks, while GPUs remain idle" — it is the single biggest
//! cause of CONT-V's poor utilization (Fig. 4). The surrogate database
//! reproduces the two properties that matter:
//!
//! 1. **Cost**: a search takes CPU-hours of virtual time, scaling with the
//!    (deterministic) homolog depth of the query, so overlapping many
//!    searches is what fills the CPUs in IM-RP (Fig. 5).
//! 2. **Signal**: deeper MSAs reduce AlphaFold's prediction noise; the
//!    single-sequence mode (EvoPro's accelerated configuration, §IV) skips
//!    the search entirely but pays with much noisier confidence estimates.

use crate::sequence::Sequence;
use impress_json::{json_enum, json_struct};
use impress_sim::{SimDuration, SimRng};

/// How AlphaFold sources evolutionary information for a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsaMode {
    /// Full database search (the paper's configuration).
    Full,
    /// Single-sequence mode — no search, no evolutionary information
    /// (EvoPro's speed/accuracy trade-off discussed in Related Work).
    SingleSequence,
}
json_enum!(MsaMode { Full, SingleSequence });

/// Result of an MSA database search.
#[derive(Debug, Clone, PartialEq)]
pub struct Msa {
    /// Number of homologs found (0 in single-sequence mode).
    pub depth: usize,
    /// Multiplier applied to AlphaFold's observation noise: < 1 for deep
    /// alignments, 1.0 at the reference depth, and [`Msa::SINGLE_SEQ_NOISE`]
    /// with no alignment at all.
    pub noise_factor: f64,
}
json_struct!(Msa { depth, noise_factor });

impl Msa {
    /// Noise multiplier when no evolutionary information is available.
    pub const SINGLE_SEQ_NOISE: f64 = 2.2;

    /// The single-sequence (empty) alignment.
    pub fn single_sequence() -> Msa {
        Msa {
            depth: 0,
            noise_factor: Self::SINGLE_SEQ_NOISE,
        }
    }
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The synthetic genetic database AlphaFold searches.
#[derive(Debug, Clone)]
pub struct SyntheticMsaDatabase {
    seed: u64,
    /// Mean search duration per residue of query at the reference depth.
    /// Tuned so a ~90-residue PDZ query costs ≈ 1.4 virtual hours, matching
    /// the paper's "takes hours" observation and the CONT-V makespan band.
    search_secs_per_residue: f64,
}

impl SyntheticMsaDatabase {
    /// Reference depth at which the noise factor is exactly 1.0.
    pub const REFERENCE_DEPTH: usize = 1024;

    /// A database determined by `seed`, with the default cost model.
    pub fn new(seed: u64) -> Self {
        SyntheticMsaDatabase {
            seed,
            search_secs_per_residue: 50.0,
        }
    }

    /// Override the per-residue search cost (used by fast test/demo setups).
    pub fn with_search_cost(mut self, secs_per_residue: f64) -> Self {
        self.search_secs_per_residue = secs_per_residue;
        self
    }

    /// Homolog depth for a query: deterministic in (database, sequence).
    /// Log-uniform between 64 and 16384 — close homolog families are rare.
    pub fn depth_for(&self, query: &Sequence) -> usize {
        let h = mix(self.seed ^ query.content_hash());
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let lo: f64 = 64.0;
        let hi: f64 = 16384.0;
        (lo * (hi / lo).powf(u)).round() as usize
    }

    /// Run a search (pure function of database + query).
    pub fn search(&self, query: &Sequence, mode: MsaMode) -> Msa {
        match mode {
            MsaMode::SingleSequence => Msa::single_sequence(),
            MsaMode::Full => {
                let depth = self.depth_for(query);
                // Noise shrinks with log-depth: depth 64 → ~1.4, 1024 → 1.0,
                // 16384 → ~0.7.
                let ratio = (depth as f64 / Self::REFERENCE_DEPTH as f64).ln();
                let noise_factor = (1.0 - 0.12 * ratio).clamp(0.5, 1.6);
                Msa {
                    depth,
                    noise_factor,
                }
            }
        }
    }

    /// Virtual wall-clock cost of the search: proportional to query length,
    /// mildly sub-linear in depth, with ±10% deterministic jitter drawn from
    /// `rng`. Single-sequence mode costs (almost) nothing.
    pub fn search_duration(
        &self,
        query: &Sequence,
        mode: MsaMode,
        rng: &mut SimRng,
    ) -> SimDuration {
        match mode {
            MsaMode::SingleSequence => SimDuration::from_secs(2),
            MsaMode::Full => {
                let depth = self.depth_for(query) as f64;
                let depth_scale = (depth / Self::REFERENCE_DEPTH as f64).powf(0.25);
                let base = self.search_secs_per_residue * query.len() as f64 * depth_scale;
                SimDuration::from_secs_f64(rng.jitter(base, 0.10))
            }
        }
    }

    /// Sample up to `n` synthetic homolog sequences (point-mutated copies of
    /// the query) — used by examples that export alignments.
    pub fn sample_homologs(&self, query: &Sequence, n: usize, rng: &mut SimRng) -> Vec<Sequence> {
        let depth = self.depth_for(query);
        let n = n.min(depth);
        (0..n)
            .map(|_| {
                let mut s = query.clone();
                // ~15% of positions mutated per homolog.
                for pos in 0..s.len() {
                    if rng.chance(0.15) {
                        s.set(pos, *rng.choose(&crate::amino::ALL));
                    }
                }
                s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: usize) -> Sequence {
        use crate::amino::ALL;
        Sequence::new((0..n).map(|i| ALL[(i * 7 + 3) % 20]).collect())
    }

    #[test]
    fn depth_is_deterministic_and_in_range() {
        let db = SyntheticMsaDatabase::new(5);
        let query = q(90);
        let d1 = db.depth_for(&query);
        let d2 = db.depth_for(&query);
        assert_eq!(d1, d2);
        assert!((64..=16384).contains(&d1), "depth {d1}");
    }

    #[test]
    fn different_queries_get_different_depths() {
        let db = SyntheticMsaDatabase::new(5);
        let depths: std::collections::HashSet<usize> =
            (60..80).map(|n| db.depth_for(&q(n))).collect();
        assert!(depths.len() > 10, "depths should vary: {depths:?}");
    }

    #[test]
    fn deeper_msa_means_less_noise() {
        let db = SyntheticMsaDatabase::new(1);
        // Scan queries to find a deep and a shallow one.
        let msas: Vec<Msa> = (50..120).map(|n| db.search(&q(n), MsaMode::Full)).collect();
        let deepest = msas.iter().max_by_key(|m| m.depth).unwrap();
        let shallowest = msas.iter().min_by_key(|m| m.depth).unwrap();
        assert!(deepest.depth > shallowest.depth);
        assert!(deepest.noise_factor < shallowest.noise_factor);
    }

    #[test]
    fn single_sequence_mode_is_fast_and_noisy() {
        let db = SyntheticMsaDatabase::new(1);
        let query = q(90);
        let msa = db.search(&query, MsaMode::SingleSequence);
        assert_eq!(msa.depth, 0);
        assert_eq!(msa.noise_factor, Msa::SINGLE_SEQ_NOISE);
        let mut rng = SimRng::from_seed(0);
        let d = db.search_duration(&query, MsaMode::SingleSequence, &mut rng);
        assert!(d.as_secs_f64() < 10.0);
    }

    #[test]
    fn full_search_takes_virtual_hours_for_pdz_scale_queries() {
        let db = SyntheticMsaDatabase::new(1);
        let mut rng = SimRng::from_seed(0);
        let query = q(94); // PDZ domain scale
        let d = db.search_duration(&query, MsaMode::Full, &mut rng);
        let hours = d.as_hours_f64();
        assert!(
            (0.4..4.0).contains(&hours),
            "search should take on the order of hours, got {hours}h"
        );
    }

    #[test]
    fn homologs_resemble_the_query() {
        let db = SyntheticMsaDatabase::new(1);
        let mut rng = SimRng::from_seed(7);
        let query = q(80);
        let homologs = db.sample_homologs(&query, 16, &mut rng);
        assert_eq!(homologs.len(), 16);
        for h in &homologs {
            let dist = query.hamming(h) as f64 / 80.0;
            assert!(dist < 0.40, "homolog too diverged: {dist}");
        }
    }

    #[test]
    fn noise_factor_stays_in_declared_bounds() {
        let db = SyntheticMsaDatabase::new(3);
        for n in 40..140 {
            let m = db.search(&q(n), MsaMode::Full);
            assert!((0.5..=1.6).contains(&m.noise_factor));
        }
    }
}
