//! Minimal PDB writer/reader (Cα-only) for exporting predicted models.
//!
//! The paper's pipelines pass PDB files between ProteinMPNN and AlphaFold.
//! We emit standards-conformant `ATOM` records for the Cα trace of a
//! [`Structure`] (plus `TER`/`END`), and parse the same subset back, so the
//! examples can write designs that external viewers open.

use crate::amino::AminoAcid;
use crate::sequence::{Chain, ChainId, Sequence};
use crate::structure::{CaAtom, Complex, Structure};
use std::fmt;

/// Errors from PDB parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdbError {
    /// An `ATOM` record was shorter than the fixed-column format requires.
    ShortRecord(usize),
    /// Unknown residue name in an `ATOM` record.
    BadResidue(String),
    /// A coordinate field failed to parse.
    BadCoordinate(String),
    /// The file contained no Cα atoms.
    Empty,
}

impl fmt::Display for PdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdbError::ShortRecord(n) => write!(f, "ATOM record too short ({n} cols)"),
            PdbError::BadResidue(r) => write!(f, "unknown residue name {r:?}"),
            PdbError::BadCoordinate(c) => write!(f, "bad coordinate field {c:?}"),
            PdbError::Empty => write!(f, "no CA atoms found"),
        }
    }
}

impl std::error::Error for PdbError {}

/// Write the Cα trace of a structure as PDB text.
pub fn write_pdb(structure: &Structure) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "REMARK   1 IMPRESS MODEL {} ITERATION {} QUALITY {:.4}\n",
        structure.complex.name, structure.iteration, structure.backbone_quality
    ));
    let mut serial = 1;
    for (chain_id, atoms) in structure.ca_trace() {
        let chain = structure
            .complex
            .chain(chain_id)
            .expect("trace chains come from the complex");
        for (i, atom) in atoms.iter().enumerate() {
            let res = chain.sequence.at(i);
            out.push_str(&format!(
                "ATOM  {serial:>5}  CA  {} {}{:>4}    {:8.3}{:8.3}{:8.3}  1.00  0.00           C\n",
                res.three_letter(),
                chain_id.0,
                i + 1,
                atom.x,
                atom.y,
                atom.z,
            ));
            serial += 1;
        }
        out.push_str(&format!("TER   {serial:>5}\n"));
        serial += 1;
    }
    out.push_str("END\n");
    out
}

/// A chain parsed back from PDB text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedChain {
    /// The chain identifier.
    pub id: ChainId,
    /// The residues, in residue-number order as encountered.
    pub sequence: Sequence,
    /// The Cα coordinates.
    pub atoms: Vec<CaAtom>,
}

/// Parse Cα `ATOM` records from PDB text, grouped by chain in file order.
pub fn parse_pdb(text: &str) -> Result<Vec<ParsedChain>, PdbError> {
    let mut chains: Vec<ParsedChain> = Vec::new();
    for line in text.lines() {
        if !line.starts_with("ATOM") {
            continue;
        }
        if line.len() < 54 {
            return Err(PdbError::ShortRecord(line.len()));
        }
        let atom_name = line[12..16].trim();
        if atom_name != "CA" {
            continue;
        }
        let res_name = line[17..20].trim().to_string();
        let res = three_letter_to_aa(&res_name).ok_or(PdbError::BadResidue(res_name))?;
        let chain_id = ChainId(line.as_bytes()[21] as char);
        let parse_coord = |s: &str| -> Result<f64, PdbError> {
            s.trim()
                .parse::<f64>()
                .map_err(|_| PdbError::BadCoordinate(s.trim().to_string()))
        };
        let atom = CaAtom {
            x: parse_coord(&line[30..38])?,
            y: parse_coord(&line[38..46])?,
            z: parse_coord(&line[46..54])?,
        };
        match chains.last_mut() {
            Some(c) if c.id == chain_id => {
                c.sequence = {
                    let mut r = c.sequence.residues().to_vec();
                    r.push(res);
                    Sequence::new(r)
                };
                c.atoms.push(atom);
            }
            _ => chains.push(ParsedChain {
                id: chain_id,
                sequence: Sequence::new(vec![res]),
                atoms: vec![atom],
            }),
        }
    }
    if chains.is_empty() {
        return Err(PdbError::Empty);
    }
    Ok(chains)
}

/// Rebuild a [`Structure`] from parsed chains, assuming the first chain is
/// the designable receptor and the second the fixed peptide (the layout
/// [`write_pdb`] produces).
pub fn structure_from_chains(
    name: impl Into<String>,
    chains: &[ParsedChain],
    backbone_quality: f64,
    iteration: u32,
) -> Option<Structure> {
    if chains.len() < 2 {
        return None;
    }
    let complex = Complex::new(
        name,
        Chain::designable(chains[0].id.0, chains[0].sequence.clone()),
        Chain::fixed(chains[1].id.0, chains[1].sequence.clone()),
    );
    Some(Structure::refined(complex, backbone_quality, iteration))
}

fn three_letter_to_aa(name: &str) -> Option<AminoAcid> {
    crate::amino::ALL
        .iter()
        .copied()
        .find(|aa| aa.three_letter() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn structure() -> Structure {
        Structure::starting(
            Complex::new(
                "TESTPDZ",
                Chain::designable('A', Sequence::parse("MKVLAWYQDE").unwrap()),
                Chain::fixed('B', Sequence::parse("EPEA").unwrap()),
            ),
            0.4,
        )
    }

    #[test]
    fn write_emits_valid_fixed_columns() {
        let text = write_pdb(&structure());
        let atom_lines: Vec<_> = text.lines().filter(|l| l.starts_with("ATOM")).collect();
        assert_eq!(atom_lines.len(), 14); // 10 + 4 residues
        for l in &atom_lines {
            assert!(l.len() >= 54, "line too short: {l}");
            assert_eq!(&l[12..16].trim(), &"CA");
        }
        assert!(text.contains("TER"));
        assert!(text.trim_end().ends_with("END"));
    }

    #[test]
    fn round_trip_preserves_sequences_and_chains() {
        let s = structure();
        let parsed = parse_pdb(&write_pdb(&s)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].id, ChainId('A'));
        assert_eq!(parsed[0].sequence.to_letters(), "MKVLAWYQDE");
        assert_eq!(parsed[1].id, ChainId('B'));
        assert_eq!(parsed[1].sequence.to_letters(), "EPEA");
        assert_eq!(parsed[0].atoms.len(), 10);
    }

    #[test]
    fn round_trip_coordinates_survive_to_3dp() {
        let s = structure();
        let parsed = parse_pdb(&write_pdb(&s)).unwrap();
        let original = s.ca_trace();
        for (pc, (_, atoms)) in parsed.iter().zip(&original) {
            for (a, b) in pc.atoms.iter().zip(atoms) {
                assert!((a.x - b.x).abs() < 5e-4);
                assert!((a.y - b.y).abs() < 5e-4);
                assert!((a.z - b.z).abs() < 5e-4);
            }
        }
    }

    #[test]
    fn structure_from_chains_rebuilds_complex() {
        let s = structure();
        let parsed = parse_pdb(&write_pdb(&s)).unwrap();
        let rebuilt = structure_from_chains("TESTPDZ", &parsed, 0.4, 0).unwrap();
        assert_eq!(
            rebuilt.complex.receptor.sequence,
            s.complex.receptor.sequence
        );
        assert_eq!(rebuilt.complex.peptide.sequence, s.complex.peptide.sequence);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert_eq!(parse_pdb("REMARK only\n"), Err(PdbError::Empty));
        assert!(matches!(
            parse_pdb("ATOM      1  CA  XXX A   1      0.0     0.0     0.0"),
            Err(PdbError::ShortRecord(_)) | Err(PdbError::BadResidue(_))
        ));
    }

    #[test]
    fn non_ca_atoms_are_skipped() {
        let text = "\
ATOM      1  N   ALA A   1       0.000   0.000   0.000  1.00  0.00           N
ATOM      2  CA  ALA A   1       1.000   2.000   3.000  1.00  0.00           C
ATOM      3  CA  GLY B   1       4.000   5.000   6.000  1.00  0.00           C
";
        let parsed = parse_pdb(text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].sequence.to_letters(), "A");
        assert_eq!(parsed[1].sequence.to_letters(), "G");
        assert!((parsed[0].atoms[0].x - 1.0).abs() < 1e-9);
    }
}
