//! FASTA reading and writing.
//!
//! Stage 3 of the IMPRESS pipeline "compiles the highest-ranking sequences
//! into a fasta file for input into downstream tasks". We implement the
//! format for real so the pipeline stages exchange the same artifact the
//! paper's tasks do, and so examples can export designs for external tools.
//!
//! Multi-chain complexes use the AlphaFold-Multimer convention of joining
//! chains with `':'` in a single record.

use crate::sequence::Sequence;
use std::fmt;

/// One FASTA record: a header and one or more chain sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header line content (without the leading `>`).
    pub header: String,
    /// The chains, joined by `':'` on write.
    pub chains: Vec<Sequence>,
}

/// Errors from FASTA parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FastaError {
    /// Sequence data appeared before any `>` header.
    MissingHeader,
    /// A record contained an unknown residue letter.
    BadResidue {
        /// The offending record's header.
        header: String,
        /// The unknown letter.
        letter: char,
    },
    /// A header had no sequence lines.
    EmptyRecord(String),
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::MissingHeader => write!(f, "sequence data before first '>' header"),
            FastaError::BadResidue { header, letter } => {
                write!(f, "unknown residue {letter:?} in record {header:?}")
            }
            FastaError::EmptyRecord(h) => write!(f, "record {h:?} has no sequence"),
        }
    }
}

impl std::error::Error for FastaError {}

/// Serialize records to FASTA text (60-column wrapping, chains joined by ':').
pub fn write_fasta(records: &[FastaRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push('>');
        out.push_str(&rec.header);
        out.push('\n');
        let joined: String = rec
            .chains
            .iter()
            .map(|c| c.to_letters())
            .collect::<Vec<_>>()
            .join(":");
        for chunk in joined.as_bytes().chunks(60) {
            out.push_str(std::str::from_utf8(chunk).expect("ascii"));
            out.push('\n');
        }
    }
    out
}

/// Parse FASTA text into records.
pub fn parse_fasta(text: &str) -> Result<Vec<FastaRecord>, FastaError> {
    let mut records: Vec<FastaRecord> = Vec::new();
    let mut current: Option<(String, String)> = None;

    let finish =
        |cur: Option<(String, String)>, records: &mut Vec<FastaRecord>| -> Result<(), FastaError> {
            if let Some((header, body)) = cur {
                if body.is_empty() {
                    return Err(FastaError::EmptyRecord(header));
                }
                let chains = body
                    .split(':')
                    .map(Sequence::parse)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| FastaError::BadResidue {
                        header: header.clone(),
                        letter: e.0,
                    })?;
                records.push(FastaRecord { header, chains });
            }
            Ok(())
        };

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix('>') {
            finish(current.take(), &mut records)?;
            current = Some((h.trim().to_string(), String::new()));
        } else {
            match &mut current {
                Some((_, body)) => body.push_str(line),
                None => return Err(FastaError::MissingHeader),
            }
        }
    }
    finish(current, &mut records)?;
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(header: &str, chains: &[&str]) -> FastaRecord {
        FastaRecord {
            header: header.to_string(),
            chains: chains.iter().map(|c| Sequence::parse(c).unwrap()).collect(),
        }
    }

    #[test]
    fn round_trip_single_chain() {
        let records = vec![rec("design_1 cycle=2", &["MKVLAWYQ"])];
        let text = write_fasta(&records);
        assert!(text.starts_with(">design_1 cycle=2\n"));
        assert_eq!(parse_fasta(&text).unwrap(), records);
    }

    #[test]
    fn round_trip_multimer() {
        let records = vec![rec("complex", &["MKVLAWYQ", "EPEA"])];
        let text = write_fasta(&records);
        assert!(text.contains("MKVLAWYQ:EPEA"));
        assert_eq!(parse_fasta(&text).unwrap(), records);
    }

    #[test]
    fn long_sequences_wrap_at_60_and_reparse() {
        let long: String = "ACDEFGHIKLMNPQRSTVWY".repeat(10); // 200 aa
        let records = vec![rec("long", &[long.as_str()])];
        let text = write_fasta(&records);
        let max_line = text.lines().map(|l| l.len()).max().unwrap();
        assert!(max_line <= 60);
        assert_eq!(parse_fasta(&text).unwrap(), records);
    }

    #[test]
    fn multiple_records_parse_in_order() {
        let text = ">a\nMK\n>b\nVL\n>c\nWY\n";
        let recs = parse_fasta(text).unwrap();
        let headers: Vec<_> = recs.iter().map(|r| r.header.as_str()).collect();
        assert_eq!(headers, vec!["a", "b", "c"]);
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(parse_fasta("MKV\n"), Err(FastaError::MissingHeader));
        assert_eq!(
            parse_fasta(">x\n"),
            Err(FastaError::EmptyRecord("x".to_string()))
        );
        assert!(matches!(
            parse_fasta(">x\nMKZ\n"),
            Err(FastaError::BadResidue { letter: 'Z', .. })
        ));
    }

    #[test]
    fn blank_lines_and_padding_are_tolerated() {
        let text = "\n>  padded header  \n\nMKV\nLAW\n\n";
        let recs = parse_fasta(text).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].header, "padded header");
        assert_eq!(recs[0].chains[0].to_letters(), "MKVLAW");
    }
}
