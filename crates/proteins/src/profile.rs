//! Sequence profiles: position frequency matrices over design cohorts.
//!
//! When a design campaign produces many sequences for the same backbone
//! (MPNN proposal batches, GA populations, per-seed replicate designs), the
//! profile answers the standard questions: which positions converged
//! (low entropy), what is the consensus design, and how strongly is each
//! residue preferred — the analysis behind sequence-logo figures.

use crate::amino::AminoAcid;
use crate::sequence::Sequence;
use impress_json::json_struct;

/// A position frequency matrix over aligned, equal-length sequences.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceProfile {
    /// `counts[pos][aa_index]`.
    counts: Vec<[u32; 20]>,
    /// Number of sequences profiled.
    n: u32,
}
json_struct!(SequenceProfile { counts, n });

impl SequenceProfile {
    /// Build a profile from equal-length sequences. Panics on empty input
    /// or length mismatch — a profile over nothing is meaningless.
    pub fn from_sequences<'a>(seqs: impl IntoIterator<Item = &'a Sequence>) -> SequenceProfile {
        let mut iter = seqs.into_iter();
        let first = iter.next().expect("profile needs at least one sequence");
        let len = first.len();
        let mut counts = vec![[0u32; 20]; len];
        let mut n = 0u32;
        for seq in std::iter::once(first).chain(iter) {
            assert_eq!(seq.len(), len, "profile sequences must be equal length");
            for (pos, &aa) in seq.residues().iter().enumerate() {
                counts[pos][aa.index()] += 1;
            }
            n += 1;
        }
        SequenceProfile { counts, n }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the profile has zero positions (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of sequences profiled.
    pub fn num_sequences(&self) -> u32 {
        self.n
    }

    /// Frequency of `aa` at `pos`, in `[0, 1]`.
    pub fn frequency(&self, pos: usize, aa: AminoAcid) -> f64 {
        self.counts[pos][aa.index()] as f64 / self.n as f64
    }

    /// The most frequent residue at `pos` (lowest index wins ties, for
    /// determinism).
    pub fn consensus_at(&self, pos: usize) -> AminoAcid {
        let idx = self.counts[pos]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .expect("20 entries")
            .0;
        AminoAcid::from_index(idx)
    }

    /// The consensus sequence.
    pub fn consensus(&self) -> Sequence {
        Sequence::new((0..self.len()).map(|p| self.consensus_at(p)).collect())
    }

    /// Shannon entropy (bits) of the residue distribution at `pos`:
    /// 0 = fully conserved, log2(20) ≈ 4.32 = uniform.
    pub fn entropy(&self, pos: usize) -> f64 {
        let n = self.n as f64;
        -self.counts[pos]
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                p * p.log2()
            })
            .sum::<f64>()
    }

    /// Mean entropy across positions — cohort diversity in one number.
    pub fn mean_entropy(&self) -> f64 {
        (0..self.len()).map(|p| self.entropy(p)).sum::<f64>() / self.len() as f64
    }

    /// Positions fully conserved across the cohort.
    pub fn conserved_positions(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&p| self.counts[p].contains(&self.n))
            .collect()
    }

    /// Conservation score at `pos` in `[0, 1]`: `1 − entropy / log2(20)`.
    pub fn conservation(&self, pos: usize) -> f64 {
        1.0 - self.entropy(pos) / (20.0f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amino::ALL;

    fn seq(s: &str) -> Sequence {
        Sequence::parse(s).unwrap()
    }

    #[test]
    fn profile_of_identical_sequences_is_fully_conserved() {
        let seqs = vec![seq("MKVLA"), seq("MKVLA"), seq("MKVLA")];
        let p = SequenceProfile::from_sequences(&seqs);
        assert_eq!(p.num_sequences(), 3);
        assert_eq!(p.consensus().to_letters(), "MKVLA");
        assert_eq!(p.conserved_positions(), vec![0, 1, 2, 3, 4]);
        for pos in 0..5 {
            assert_eq!(p.entropy(pos), 0.0);
            assert!((p.conservation(pos) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn consensus_picks_majority() {
        let seqs = vec![seq("MKV"), seq("MKV"), seq("MRV")];
        let p = SequenceProfile::from_sequences(&seqs);
        assert_eq!(p.consensus().to_letters(), "MKV");
        assert!((p.frequency(1, AminoAcid::Lys) - 2.0 / 3.0).abs() < 1e-12);
        assert!((p.frequency(1, AminoAcid::Arg) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_matches_hand_computation() {
        // 50/50 split at a position → 1 bit.
        let seqs = vec![seq("A"), seq("W")];
        let p = SequenceProfile::from_sequences(&seqs);
        assert!((p.entropy(0) - 1.0).abs() < 1e-12);
        assert!((p.mean_entropy() - 1.0).abs() < 1e-12);
        assert!(p.conserved_positions().is_empty());
    }

    #[test]
    fn entropy_is_bounded_by_uniform() {
        // 20 sequences, each a different residue at position 0 → log2(20).
        let seqs: Vec<Sequence> = ALL.iter().map(|&aa| Sequence::new(vec![aa])).collect();
        let p = SequenceProfile::from_sequences(&seqs);
        assert!((p.entropy(0) - 20.0f64.log2()).abs() < 1e-12);
        assert!(p.conservation(0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        let seqs = vec![seq("MK"), seq("MKV")];
        let _ = SequenceProfile::from_sequences(&seqs);
    }

    #[test]
    #[should_panic(expected = "at least one sequence")]
    fn empty_input_panics() {
        let seqs: Vec<Sequence> = vec![];
        let _ = SequenceProfile::from_sequences(&seqs);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let seqs = vec![seq("A"), seq("W")];
        let p = SequenceProfile::from_sequences(&seqs);
        // Ala (index 0) wins the 1–1 tie against Trp (index 17).
        assert_eq!(p.consensus_at(0), AminoAcid::Ala);
    }
}
