//! Design targets: PDZ-domain–peptide complexes.
//!
//! The paper's small experiment prepares four named PDZ domains (NHERF3,
//! HTRA1, SCRIB, SHANK1) in complex with the last 10 residues of
//! α-synuclein; the expanded experiment mines 70 experimentally resolved
//! PDZ–peptide complexes from the PDB and re-targets them to the last 4
//! residues of α-synuclein. We cannot ship PDB structures, so each target is
//! fabricated deterministically: a seeded landscape plus a "native" starting
//! sequence that is partially optimized — experimentally resolved domains
//! are real proteins (far better than random) but far from optimal *for the
//! new target peptide* (that is the design task).

use crate::landscape::DesignLandscape;
use crate::sequence::{Chain, Sequence};
use crate::structure::{Complex, Structure};
use impress_sim::SimRng;

/// Human α-synuclein C-terminal region (residues 120–140).
pub const ALPHA_SYNUCLEIN_C_TERMINUS: &str = "PDNEAYEMPSEEGYQDYEPEA";

/// The last `n` residues of α-synuclein (the paper uses 10 and 4).
pub fn alpha_synuclein_tail(n: usize) -> Sequence {
    let s = ALPHA_SYNUCLEIN_C_TERMINUS;
    assert!(n <= s.len(), "tail longer than the known C-terminus");
    Sequence::parse(&s[s.len() - n..]).expect("constant is valid")
}

/// Fraction of receptor positions pre-optimized in fabricated "native"
/// starting sequences (tuned so starting designs land at quality ≈ 0.2–0.4,
/// matching the paper's starting pLDDT/pTM bands).
pub const NATIVE_OPTIMIZED_FRACTION: f64 = 0.20;

/// One design problem: a target complex plus its hidden landscape.
#[derive(Debug, Clone)]
pub struct DesignTarget {
    /// Target name (e.g. `"NHERF3"` or a synthetic PDB-style id).
    pub name: String,
    /// The hidden ground-truth landscape for this target.
    pub landscape: DesignLandscape,
    /// The prepared starting structure.
    pub start: Structure,
}

impl DesignTarget {
    /// Fabricate a target: build the landscape from `seed`, then fabricate a
    /// partially optimized native receptor of `receptor_len` residues.
    pub fn fabricate(
        name: impl Into<String>,
        seed: u64,
        receptor_len: usize,
        peptide: Sequence,
        rng: &mut SimRng,
    ) -> DesignTarget {
        let name = name.into();
        let landscape = DesignLandscape::new(seed, receptor_len, peptide.clone());
        let mut native = landscape.random_receptor(rng);
        // Optimize a deterministic-per-target subset of positions: natives
        // are good proteins, but not tuned for the new peptide.
        for pos in 0..receptor_len {
            if !rng.chance(NATIVE_OPTIMIZED_FRACTION) {
                continue;
            }
            let best = crate::amino::ALL
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    landscape
                        .local_score(&native, pos, a)
                        .partial_cmp(&landscape.local_score(&native, pos, b))
                        .expect("finite scores")
                })
                .expect("non-empty");
            native.set(pos, best);
        }
        let q0 = landscape.fitness(&native).quality;
        let complex = Complex::new(
            name.clone(),
            Chain::designable('A', native),
            Chain::fixed('B', peptide),
        );
        DesignTarget {
            name,
            landscape,
            start: Structure::starting(complex, q0),
        }
    }
}

/// The four named PDZ domains of the paper's first experiment, in complex
/// with the α-synuclein 10-mer. Receptor lengths are the real domains'
/// approximate PDZ-domain sizes.
pub fn named_pdz_domains(master_seed: u64) -> Vec<DesignTarget> {
    let rng = SimRng::from_seed(master_seed);
    let peptide = alpha_synuclein_tail(10);
    [
        ("NHERF3", 86usize),
        ("HTRA1", 92),
        ("SCRIB", 90),
        ("SHANK1", 94),
    ]
    .iter()
    .enumerate()
    .map(|(i, &(name, len))| {
        let mut trng = rng.fork_idx("named-target", i as u64);
        DesignTarget::fabricate(
            name,
            master_seed ^ ((i as u64 + 1) * 0x9e37_79b9),
            len,
            peptide.clone(),
            &mut trng,
        )
    })
    .collect()
}

/// The expanded set: `n` synthetic "PDB-mined" PDZ–peptide complexes (the
/// paper mines 70), targeting the α-synuclein 4-mer (EPEA).
pub fn mined_pdz_complexes(master_seed: u64, n: usize) -> Vec<DesignTarget> {
    let rng = SimRng::from_seed(master_seed ^ 0x70_70_70);
    let peptide = alpha_synuclein_tail(4);
    (0..n)
        .map(|i| {
            let mut trng = rng.fork_idx("mined-target", i as u64);
            // PDB-style synthetic ids: 1PZ0, 1PZ1, …
            let name = format!("{}PZ{}", 1 + i / 36, radix36(i % 36));
            let len = 82 + (i * 7) % 19; // 82..=100 residues
            DesignTarget::fabricate(
                name,
                master_seed ^ (i as u64 + 101).wrapping_mul(0x2545_f491_4f6c_dd1d),
                len,
                peptide.clone(),
                &mut trng,
            )
        })
        .collect()
}

/// A protease design problem (the paper's §V follow-up): a larger enzyme
/// whose catalytic residues must stay fixed while the rest of the protein is
/// redesigned for activity, evaluated in monomeric form.
#[derive(Debug, Clone)]
pub struct ProteaseTarget {
    /// The underlying design target (receptor = the protease; the "peptide"
    /// is the substrate, used only by the landscape's activity model).
    pub target: DesignTarget,
    /// Catalytic residue positions that ProteinMPNN must not mutate.
    pub catalytic: Vec<usize>,
}

/// Fabricate `n` protease targets: ~120-residue enzymes with a catalytic
/// triad, paired with the canonical 3C-protease substrate hexamer (TSAVLQ↓).
pub fn protease_targets(master_seed: u64, n: usize) -> Vec<ProteaseTarget> {
    let rng = SimRng::from_seed(master_seed ^ 0x9307_ea5e);
    let substrate = Sequence::parse("TSAVLQ").expect("constant is valid");
    (0..n)
        .map(|i| {
            let mut trng = rng.fork_idx("protease", i as u64);
            let len = 112 + (i * 5) % 21; // 112..=132 residues
            let target = DesignTarget::fabricate(
                format!("PROT-{:02}", i + 1),
                master_seed ^ (i as u64 + 3).wrapping_mul(0x6c62_272e_07bb_0142),
                len,
                substrate.clone(),
                &mut trng,
            );
            // Catalytic triad: three distinct seeded positions (Ser-His-Asp
            // in a real serine protease; identity is whatever the fabricated
            // native carries — the point is that they are frozen).
            let mut catalytic = Vec::with_capacity(3);
            while catalytic.len() < 3 {
                let p = trng.below(len);
                if !catalytic.contains(&p) {
                    catalytic.push(p);
                }
            }
            catalytic.sort_unstable();
            ProteaseTarget { target, catalytic }
        })
        .collect()
}

fn radix36(v: usize) -> char {
    let digits = b"0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";
    digits[v] as char
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_synuclein_tails_match_biology() {
        assert_eq!(alpha_synuclein_tail(10).to_letters(), "EGYQDYEPEA");
        assert_eq!(alpha_synuclein_tail(4).to_letters(), "EPEA");
    }

    #[test]
    #[should_panic(expected = "tail longer")]
    fn oversized_tail_panics() {
        let _ = alpha_synuclein_tail(50);
    }

    #[test]
    fn named_domains_are_the_papers_four() {
        let targets = named_pdz_domains(42);
        let names: Vec<&str> = targets.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["NHERF3", "HTRA1", "SCRIB", "SHANK1"]);
        for t in &targets {
            assert_eq!(t.start.complex.peptide.sequence.to_letters(), "EGYQDYEPEA");
            assert!((80..=100).contains(&t.start.complex.receptor.len()));
        }
    }

    #[test]
    fn starting_quality_is_mediocre_not_random_not_optimal() {
        let targets = named_pdz_domains(42);
        for t in &targets {
            let q = t.start.backbone_quality;
            assert!(
                (0.10..=0.55).contains(&q),
                "{}: starting quality {q} out of the mediocre band",
                t.name
            );
        }
    }

    #[test]
    fn mined_set_has_requested_size_and_unique_names() {
        let targets = mined_pdz_complexes(42, 70);
        assert_eq!(targets.len(), 70);
        let names: std::collections::HashSet<&str> =
            targets.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names.len(), 70, "names must be unique");
        for t in &targets {
            assert_eq!(t.start.complex.peptide.sequence.to_letters(), "EPEA");
        }
    }

    #[test]
    fn fabrication_is_deterministic() {
        let a = named_pdz_domains(7);
        let b = named_pdz_domains(7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.start.complex.receptor.sequence,
                y.start.complex.receptor.sequence
            );
            assert_eq!(x.start.backbone_quality, y.start.backbone_quality);
        }
        let c = named_pdz_domains(8);
        assert_ne!(
            a[0].start.complex.receptor.sequence,
            c[0].start.complex.receptor.sequence
        );
    }

    #[test]
    fn protease_targets_have_frozen_triads() {
        let targets = protease_targets(42, 5);
        assert_eq!(targets.len(), 5);
        for pt in &targets {
            assert_eq!(pt.catalytic.len(), 3);
            let len = pt.target.start.complex.receptor.len();
            assert!((110..=135).contains(&len));
            assert!(pt.catalytic.iter().all(|&p| p < len));
            assert_eq!(
                pt.target.start.complex.peptide.sequence.to_letters(),
                "TSAVLQ"
            );
        }
        let names: std::collections::HashSet<&str> =
            targets.iter().map(|t| t.target.name.as_str()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn targets_leave_design_headroom() {
        // Every target must have meaningful room to improve — the design
        // experiment is pointless otherwise.
        let mut rng = SimRng::from_seed(1);
        for t in named_pdz_domains(42) {
            let climbed = t
                .landscape
                .hill_climb(&t.start.complex.receptor.sequence, 3, &mut rng);
            let q_max = t.landscape.fitness(&climbed).quality;
            assert!(
                q_max > t.start.backbone_quality + 0.25,
                "{}: headroom too small ({} → {q_max})",
                t.name,
                t.start.backbone_quality
            );
        }
    }
}
