//! Pairwise sequence alignment and design-comparison statistics.
//!
//! Used to characterize designs against their starting sequences (mutation
//! load, identity, conservation of regions) and to compare final designs
//! across protocol arms. Global alignment is Needleman–Wunsch with a
//! BLOSUM-like match score derived from the residues' physicochemistry
//! (same residue ≫ similar chemistry > dissimilar).

use crate::amino::AminoAcid;
use crate::sequence::Sequence;
use impress_json::{json_enum, json_struct};

/// Scoring scheme for alignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignScoring {
    /// Score for an identical pair.
    pub match_score: f64,
    /// Maximum score for a chemically similar (non-identical) pair.
    pub similar_score: f64,
    /// Gap penalty (per gap position, linear).
    pub gap: f64,
}
json_struct!(AlignScoring {
    match_score,
    similar_score,
    gap
});

impl Default for AlignScoring {
    fn default() -> Self {
        AlignScoring {
            match_score: 4.0,
            similar_score: 1.5,
            gap: -4.0,
        }
    }
}

impl AlignScoring {
    /// Substitution score for a residue pair: identity scores
    /// `match_score`; otherwise chemistry similarity (hydropathy and size
    /// proximity, charge agreement) scales up to `similar_score`, down to
    /// `-similar_score` for chemically opposite pairs.
    pub fn pair(&self, a: AminoAcid, b: AminoAcid) -> f64 {
        if a == b {
            return self.match_score;
        }
        let hyd = 1.0 - (a.hydropathy() - b.hydropathy()).abs() / 9.0;
        let vol = 1.0 - (a.volume() - b.volume()).abs() / 170.0;
        let chg = if (a.charge() - b.charge()).abs() < 0.5 {
            1.0
        } else {
            0.0
        };
        let sim = (0.45 * hyd + 0.30 * vol + 0.25 * chg).clamp(0.0, 1.0);
        self.similar_score * (2.0 * sim - 1.0)
    }
}

/// One aligned column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Column {
    /// Residues aligned (may be identical or substituted).
    Pair(AminoAcid, AminoAcid),
    /// Gap in the second sequence.
    Delete(AminoAcid),
    /// Gap in the first sequence.
    Insert(AminoAcid),
}
// The tuple-variant idents are field binders for the generated match arms,
// not type names.
json_enum!(Column {
    Pair(a, b),
    Delete(a),
    Insert(a)
});

/// A global alignment of two sequences.
#[derive(Debug, Clone)]
pub struct Alignment {
    /// Aligned columns, N-terminal first.
    pub columns: Vec<Column>,
    /// Total alignment score.
    pub score: f64,
}
json_struct!(Alignment { columns, score });

impl Alignment {
    /// Fraction of aligned (non-gap) columns that are identical.
    pub fn identity(&self) -> f64 {
        let pairs: Vec<_> = self
            .columns
            .iter()
            .filter_map(|c| match c {
                Column::Pair(a, b) => Some((a, b)),
                _ => None,
            })
            .collect();
        if pairs.is_empty() {
            return 0.0;
        }
        pairs.iter().filter(|(a, b)| a == b).count() as f64 / pairs.len() as f64
    }

    /// Number of substitutions (aligned, non-identical columns).
    pub fn substitutions(&self) -> usize {
        self.columns
            .iter()
            .filter(|c| matches!(c, Column::Pair(a, b) if a != b))
            .count()
    }

    /// Number of gap columns (insertions + deletions).
    pub fn gaps(&self) -> usize {
        self.columns
            .iter()
            .filter(|c| !matches!(c, Column::Pair(..)))
            .count()
    }

    /// Render as two gapped lines plus a match line (`|` identity, `:`
    /// aligned substitution, space for gaps).
    pub fn render(&self) -> String {
        let mut top = String::new();
        let mut mid = String::new();
        let mut bot = String::new();
        for c in &self.columns {
            match c {
                Column::Pair(a, b) => {
                    top.push(a.letter());
                    bot.push(b.letter());
                    mid.push(if a == b { '|' } else { ':' });
                }
                Column::Delete(a) => {
                    top.push(a.letter());
                    bot.push('-');
                    mid.push(' ');
                }
                Column::Insert(b) => {
                    top.push('-');
                    bot.push(b.letter());
                    mid.push(' ');
                }
            }
        }
        format!("{top}\n{mid}\n{bot}\n")
    }
}

/// Needleman–Wunsch global alignment of `a` against `b`.
pub fn global_align(a: &Sequence, b: &Sequence, scoring: &AlignScoring) -> Alignment {
    let (n, m) = (a.len(), b.len());
    // DP matrices: score and backpointer (0 = diag, 1 = up/delete, 2 = left/insert).
    let mut score = vec![vec![0.0f64; m + 1]; n + 1];
    let mut back = vec![vec![0u8; m + 1]; n + 1];
    for i in 1..=n {
        score[i][0] = scoring.gap * i as f64;
        back[i][0] = 1;
    }
    for j in 1..=m {
        score[0][j] = scoring.gap * j as f64;
        back[0][j] = 2;
    }
    for i in 1..=n {
        for j in 1..=m {
            let diag = score[i - 1][j - 1] + scoring.pair(a.at(i - 1), b.at(j - 1));
            let up = score[i - 1][j] + scoring.gap;
            let left = score[i][j - 1] + scoring.gap;
            // Deterministic tie-breaking: diag ≥ up ≥ left.
            let (s, d) = if diag >= up && diag >= left {
                (diag, 0)
            } else if up >= left {
                (up, 1)
            } else {
                (left, 2)
            };
            score[i][j] = s;
            back[i][j] = d;
        }
    }
    // Traceback.
    let mut columns = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        match back[i][j] {
            0 => {
                columns.push(Column::Pair(a.at(i - 1), b.at(j - 1)));
                i -= 1;
                j -= 1;
            }
            1 => {
                columns.push(Column::Delete(a.at(i - 1)));
                i -= 1;
            }
            _ => {
                columns.push(Column::Insert(b.at(j - 1)));
                j -= 1;
            }
        }
    }
    columns.reverse();
    Alignment {
        columns,
        score: score[n][m],
    }
}

/// Percent identity between two equal-or-unequal length sequences, via
/// global alignment with default scoring.
pub fn percent_identity(a: &Sequence, b: &Sequence) -> f64 {
    global_align(a, b, &AlignScoring::default()).identity() * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> Sequence {
        Sequence::parse(s).unwrap()
    }

    #[test]
    fn identical_sequences_align_perfectly() {
        let a = seq("MKVLAWYQ");
        let al = global_align(&a, &a, &AlignScoring::default());
        assert_eq!(al.identity(), 1.0);
        assert_eq!(al.substitutions(), 0);
        assert_eq!(al.gaps(), 0);
        assert!((al.score - 8.0 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn single_substitution_detected() {
        let al = global_align(&seq("MKVLA"), &seq("MKILA"), &AlignScoring::default());
        assert_eq!(al.substitutions(), 1);
        assert_eq!(al.gaps(), 0);
        assert!((al.identity() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn insertion_produces_gap_not_substitution_cascade() {
        // b has one extra residue in the middle.
        let al = global_align(
            &seq("MKVLAWYQ"),
            &seq("MKVLGAWYQ"),
            &AlignScoring::default(),
        );
        assert_eq!(al.gaps(), 1);
        assert_eq!(al.substitutions(), 0);
        assert_eq!(al.identity(), 1.0, "all aligned columns identical");
    }

    #[test]
    fn chemistry_similarity_orders_substitution_scores() {
        let s = AlignScoring::default();
        // Ile↔Leu (both large hydrophobics) must beat Ile↔Asp (opposite).
        let similar = s.pair(AminoAcid::Ile, AminoAcid::Leu);
        let dissimilar = s.pair(AminoAcid::Ile, AminoAcid::Asp);
        assert!(similar > dissimilar, "{similar} vs {dissimilar}");
        assert!(s.pair(AminoAcid::Ile, AminoAcid::Ile) > similar);
    }

    #[test]
    fn render_shows_three_lines() {
        let al = global_align(&seq("MKV"), &seq("MRV"), &AlignScoring::default());
        let text = al.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "MKV");
        assert_eq!(lines[2], "MRV");
        assert_eq!(lines[1], "|:|");
    }

    #[test]
    fn percent_identity_scale() {
        assert!((percent_identity(&seq("AAAA"), &seq("AAAA")) - 100.0).abs() < 1e-9);
        assert!((percent_identity(&seq("AAAA"), &seq("AAAW")) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn alignment_is_symmetric_in_identity() {
        let a = seq("MKVLAWYQDE");
        let b = seq("MKVIAWYADE");
        let ab = global_align(&a, &b, &AlignScoring::default());
        let ba = global_align(&b, &a, &AlignScoring::default());
        assert!((ab.identity() - ba.identity()).abs() < 1e-9);
        assert!((ab.score - ba.score).abs() < 1e-9);
    }

    #[test]
    fn empty_sequence_aligns_as_all_gaps() {
        let al = global_align(
            &seq("MKV"),
            &Sequence::new(vec![]),
            &AlignScoring::default(),
        );
        assert_eq!(al.gaps(), 3);
        assert_eq!(al.identity(), 0.0);
    }
}
