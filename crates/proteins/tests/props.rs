//! Property-based tests for the protein substrate, on the in-repo
//! [`props!`](impress_sim::props) harness.

use impress_proteins::amino::{AminoAcid, ALL};
use impress_proteins::fasta::{parse_fasta, write_fasta, FastaRecord};
use impress_proteins::landscape::DesignLandscape;
use impress_proteins::mutations::{apply_all, diff};
use impress_proteins::pdb::{parse_pdb, write_pdb};
use impress_proteins::profile::SequenceProfile;
use impress_proteins::sequence::{Chain, Sequence};
use impress_proteins::structure::{Complex, Structure};
use impress_sim::{prop_assume, props, SimRng};

/// A random sequence with length in `[min_len, max_len]`.
fn arb_sequence(rng: &mut SimRng, min_len: usize, max_len: usize) -> Sequence {
    let len = min_len + rng.below(max_len - min_len + 1);
    Sequence::new(
        (0..len)
            .map(|_| AminoAcid::from_index(rng.below(20)))
            .collect(),
    )
}

/// Up to `max_subs` random (position, residue) substitutions applied to `a`.
fn substituted(rng: &mut SimRng, a: &Sequence, max_subs: usize) -> Sequence {
    let mut b = a.clone();
    for _ in 0..rng.below(max_subs + 1) {
        let pos = rng.below(a.len());
        b.set(pos, AminoAcid::from_index(rng.below(20)));
    }
    b
}

props! {
    /// Sequence ⇄ letters round trip for arbitrary sequences.
    fn sequence_letters_round_trip(rng) {
        let seq = arb_sequence(rng, 1, 199);
        let letters = seq.to_letters();
        assert_eq!(Sequence::parse(&letters).unwrap(), seq);
    }

    /// Hamming distance is a metric: identity, symmetry, triangle inequality.
    fn hamming_is_a_metric(rng) {
        let a = arb_sequence(rng, 10, 59);
        let b = substituted(rng, &a, 9);
        let c = substituted(rng, &a, 9);
        assert_eq!(a.hamming(&a), 0);
        assert_eq!(a.hamming(&b), b.hamming(&a));
        assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
    }

    /// FASTA round trip for arbitrary multi-record, multi-chain content.
    fn fasta_round_trips(rng) {
        let n_records = 1 + rng.below(4);
        let records: Vec<FastaRecord> = (0..n_records)
            .map(|i| {
                let n_chains = 1 + rng.below(2);
                let chains = (0..n_chains)
                    .map(|_| arb_sequence(rng, 1, 79))
                    .collect();
                let tag = rng.below(1000);
                FastaRecord {
                    header: format!("design_{i} tag={tag}"),
                    chains,
                }
            })
            .collect();
        let text = write_fasta(&records);
        assert_eq!(parse_fasta(&text).unwrap(), records);
    }

    /// PDB round trip preserves chains, sequences and atom counts.
    fn pdb_round_trips(rng) {
        let receptor = arb_sequence(rng, 8, 59);
        let peptide = arb_sequence(rng, 2, 11);
        let complex = Complex::new(
            "PROP",
            Chain::designable('A', receptor.clone()),
            Chain::fixed('B', peptide.clone()),
        );
        let structure = Structure::starting(complex, 0.5);
        let parsed = parse_pdb(&write_pdb(&structure)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(&parsed[0].sequence, &receptor);
        assert_eq!(&parsed[1].sequence, &peptide);
        assert_eq!(parsed[0].atoms.len(), receptor.len());
    }

    /// Landscape fitness is a pure function with all outputs in range.
    fn landscape_fitness_pure_and_bounded(rng) {
        let seed = rng.next_u64();
        let seq = arb_sequence(rng, 20, 20);
        let l = DesignLandscape::new(seed, 20, Sequence::parse("EPEA").unwrap());
        let f1 = l.fitness(&seq);
        let f2 = l.fitness(&seq);
        assert_eq!(f1, f2);
        assert!((0.0..1.0).contains(&f1.raw_fold));
        assert!((0.0..=1.0).contains(&f1.raw_bind));
        assert!((0.0..=1.0).contains(&f1.quality));
        assert!((0.0..=1.0).contains(&f1.bind_quality));
        assert!((0.0..=1.0).contains(&f1.fold_quality));
    }

    /// Mutating outside the groove never changes binding fitness.
    fn non_groove_mutations_preserve_binding(rng) {
        let seed = rng.next_u64();
        let pos = rng.below(40);
        let aa = rng.below(20);
        let l = DesignLandscape::new(seed, 40, Sequence::parse("EPEA").unwrap());
        let mut seq_rng = SimRng::from_seed(seed ^ 1);
        let seq = l.random_receptor(&mut seq_rng);
        let groove = l.groove_positions();
        prop_assume!(!groove.contains(&pos));
        let mutated = seq.with_substitution(pos, AminoAcid::from_index(aa));
        assert_eq!(l.fitness(&seq).raw_bind, l.fitness(&mutated).raw_bind);
    }

    /// `diff` followed by `apply_all` reconstructs the target sequence, for
    /// arbitrary pairs of equal-length sequences.
    fn mutation_diff_apply_round_trips(rng) {
        let a = arb_sequence(rng, 5, 59);
        let b = substituted(rng, &a, 19);
        let muts = diff(&a, &b);
        assert_eq!(muts.len(), a.hamming(&b));
        assert_eq!(apply_all(&a, &muts).unwrap(), b);
        // Notation round trip for every mutation.
        for m in &muts {
            let parsed = impress_proteins::mutations::Mutation::parse(&m.to_string()).unwrap();
            assert_eq!(parsed, *m);
        }
    }

    /// Profile invariants: frequencies sum to 1 per position, consensus
    /// frequency is maximal, entropy within [0, log2 20].
    fn profile_invariants(rng) {
        let n_seqs = 1 + rng.below(11);
        let seqs: Vec<Sequence> = (0..n_seqs)
            .map(|_| arb_sequence(rng, 12, 12))
            .collect();
        let p = SequenceProfile::from_sequences(&seqs);
        for pos in 0..p.len() {
            let total: f64 = ALL.iter().map(|&aa| p.frequency(pos, aa)).sum();
            assert!((total - 1.0).abs() < 1e-9);
            let cons = p.consensus_at(pos);
            for &aa in &ALL {
                assert!(p.frequency(pos, cons) >= p.frequency(pos, aa) - 1e-12);
            }
            let e = p.entropy(pos);
            assert!((0.0..=20.0f64.log2() + 1e-9).contains(&e));
        }
    }

    /// Global alignment of equal-length sequences never scores below the
    /// gapless diagonal (the aligner may only improve on it).
    fn alignment_score_at_least_diagonal(rng) {
        use impress_proteins::align::{global_align, AlignScoring};
        let a = arb_sequence(rng, 4, 39);
        let b = substituted(rng, &a, 11);
        let scoring = AlignScoring::default();
        let diagonal: f64 = (0..a.len()).map(|i| scoring.pair(a.at(i), b.at(i))).sum();
        let alignment = global_align(&a, &b, &scoring);
        assert!(alignment.score >= diagonal - 1e-9);
    }

    /// All 20 amino acids parse from both their own letter and lowercase.
    fn amino_parse_total(rng) {
        let aa = ALL[rng.below(20)];
        assert_eq!(AminoAcid::from_letter(aa.letter()).unwrap(), aa);
        assert_eq!(
            AminoAcid::from_letter(aa.letter().to_ascii_lowercase()).unwrap(),
            aa
        );
    }
}
