//! Property-based tests for the protein substrate.

use impress_proteins::amino::{AminoAcid, ALL};
use impress_proteins::fasta::{parse_fasta, write_fasta, FastaRecord};
use impress_proteins::landscape::DesignLandscape;
use impress_proteins::mutations::{apply_all, diff};
use impress_proteins::pdb::{parse_pdb, write_pdb};
use impress_proteins::profile::SequenceProfile;
use impress_proteins::sequence::{Chain, Sequence};
use impress_proteins::structure::{Complex, Structure};
use impress_sim::SimRng;
use proptest::prelude::*;

fn arb_sequence(len: std::ops::Range<usize>) -> impl Strategy<Value = Sequence> {
    prop::collection::vec(0usize..20, len)
        .prop_map(|idx| Sequence::new(idx.into_iter().map(AminoAcid::from_index).collect()))
}

proptest! {
    /// Sequence ⇄ letters round trip for arbitrary sequences.
    #[test]
    fn sequence_letters_round_trip(seq in arb_sequence(1..200)) {
        let letters = seq.to_letters();
        prop_assert_eq!(Sequence::parse(&letters).unwrap(), seq);
    }

    /// Hamming distance is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn hamming_is_a_metric(
        a in arb_sequence(10..60),
        subs1 in prop::collection::vec((0usize..10, 0usize..20), 0..10),
        subs2 in prop::collection::vec((0usize..10, 0usize..20), 0..10),
    ) {
        let mut b = a.clone();
        for (pos, aa) in subs1 {
            b.set(pos % a.len(), AminoAcid::from_index(aa));
        }
        let mut c = a.clone();
        for (pos, aa) in subs2 {
            c.set(pos % a.len(), AminoAcid::from_index(aa));
        }
        prop_assert_eq!(a.hamming(&a), 0);
        prop_assert_eq!(a.hamming(&b), b.hamming(&a));
        prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
    }

    /// FASTA round trip for arbitrary multi-record, multi-chain content.
    #[test]
    fn fasta_round_trips(
        records in prop::collection::vec(
            (prop::collection::vec(arb_sequence(1..80), 1..3), 0usize..1000),
            1..5,
        )
    ) {
        let records: Vec<FastaRecord> = records
            .into_iter()
            .enumerate()
            .map(|(i, (chains, tag))| FastaRecord {
                header: format!("design_{i} tag={tag}"),
                chains,
            })
            .collect();
        let text = write_fasta(&records);
        prop_assert_eq!(parse_fasta(&text).unwrap(), records);
    }

    /// PDB round trip preserves chains, sequences and atom counts.
    #[test]
    fn pdb_round_trips(receptor in arb_sequence(8..60), peptide in arb_sequence(2..12)) {
        let complex = Complex::new(
            "PROP",
            Chain::designable('A', receptor.clone()),
            Chain::fixed('B', peptide.clone()),
        );
        let structure = Structure::starting(complex, 0.5);
        let parsed = parse_pdb(&write_pdb(&structure)).unwrap();
        prop_assert_eq!(parsed.len(), 2);
        prop_assert_eq!(&parsed[0].sequence, &receptor);
        prop_assert_eq!(&parsed[1].sequence, &peptide);
        prop_assert_eq!(parsed[0].atoms.len(), receptor.len());
    }

    /// Landscape fitness is a pure function with all outputs in range.
    #[test]
    fn landscape_fitness_pure_and_bounded(
        seed in any::<u64>(),
        seq in arb_sequence(20..21),
    ) {
        let l = DesignLandscape::new(seed, 20, Sequence::parse("EPEA").unwrap());
        let f1 = l.fitness(&seq);
        let f2 = l.fitness(&seq);
        prop_assert_eq!(f1, f2);
        prop_assert!((0.0..1.0).contains(&f1.raw_fold));
        prop_assert!((0.0..=1.0).contains(&f1.raw_bind));
        prop_assert!((0.0..=1.0).contains(&f1.quality));
        prop_assert!((0.0..=1.0).contains(&f1.bind_quality));
        prop_assert!((0.0..=1.0).contains(&f1.fold_quality));
    }

    /// Mutating outside the groove never changes binding fitness.
    #[test]
    fn non_groove_mutations_preserve_binding(seed in any::<u64>(), pos in 0usize..40, aa in 0usize..20) {
        let l = DesignLandscape::new(seed, 40, Sequence::parse("EPEA").unwrap());
        let mut rng = SimRng::from_seed(seed ^ 1);
        let seq = l.random_receptor(&mut rng);
        let groove = l.groove_positions();
        prop_assume!(!groove.contains(&pos));
        let mutated = seq.with_substitution(pos, AminoAcid::from_index(aa));
        prop_assert_eq!(l.fitness(&seq).raw_bind, l.fitness(&mutated).raw_bind);
    }

    /// `diff` followed by `apply_all` reconstructs the target sequence, for
    /// arbitrary pairs of equal-length sequences.
    #[test]
    fn mutation_diff_apply_round_trips(
        a in arb_sequence(5..60),
        subs in prop::collection::vec((0usize..60, 0usize..20), 0..20),
    ) {
        let mut b = a.clone();
        for (pos, aa) in subs {
            b.set(pos % a.len(), AminoAcid::from_index(aa));
        }
        let muts = diff(&a, &b);
        prop_assert_eq!(muts.len(), a.hamming(&b));
        prop_assert_eq!(apply_all(&a, &muts).unwrap(), b);
        // Notation round trip for every mutation.
        for m in &muts {
            let parsed = impress_proteins::mutations::Mutation::parse(&m.to_string()).unwrap();
            prop_assert_eq!(parsed, *m);
        }
    }

    /// Profile invariants: frequencies sum to 1 per position, consensus
    /// frequency is maximal, entropy within [0, log2 20].
    #[test]
    fn profile_invariants(
        seqs in prop::collection::vec(
            prop::collection::vec(0usize..20, 12),
            1..12,
        )
    ) {
        let seqs: Vec<_> = seqs
            .into_iter()
            .map(|idx| {
                impress_proteins::Sequence::new(
                    idx.into_iter().map(AminoAcid::from_index).collect(),
                )
            })
            .collect();
        let p = SequenceProfile::from_sequences(&seqs);
        for pos in 0..p.len() {
            let total: f64 = ALL.iter().map(|&aa| p.frequency(pos, aa)).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            let cons = p.consensus_at(pos);
            for &aa in &ALL {
                prop_assert!(p.frequency(pos, cons) >= p.frequency(pos, aa) - 1e-12);
            }
            let e = p.entropy(pos);
            prop_assert!((0.0..=20.0f64.log2() + 1e-9).contains(&e));
        }
    }

    /// Global alignment of equal-length sequences never scores below the
    /// gapless diagonal (the aligner may only improve on it).
    #[test]
    fn alignment_score_at_least_diagonal(a in arb_sequence(4..40), subs in prop::collection::vec((0usize..40, 0usize..20), 0..12)) {
        use impress_proteins::align::{global_align, AlignScoring};
        let mut b = a.clone();
        for (pos, aa) in subs {
            b.set(pos % a.len(), AminoAcid::from_index(aa));
        }
        let scoring = AlignScoring::default();
        let diagonal: f64 = (0..a.len()).map(|i| scoring.pair(a.at(i), b.at(i))).sum();
        let alignment = global_align(&a, &b, &scoring);
        prop_assert!(alignment.score >= diagonal - 1e-9);
    }

    /// All 20 amino acids parse from both their own letter and lowercase.
    #[test]
    fn amino_parse_total(idx in 0usize..20) {
        let aa = ALL[idx];
        prop_assert_eq!(AminoAcid::from_letter(aa.letter()).unwrap(), aa);
        prop_assert_eq!(
            AminoAcid::from_letter(aa.letter().to_ascii_lowercase()).unwrap(),
            aa
        );
    }
}
