//! The spec-driven front door for IM-RP campaigns.
//!
//! `impress-core` grew one experiment driver per concern —
//! [`run_imrp`](crate::experiment::run_imrp) (defaults),
//! [`run_imrp_on`](crate::experiment::run_imrp_on) (custom pilot),
//! [`run_imrp_resilient`](crate::experiment::run_imrp_resilient) (faults),
//! [`run_imrp_traced`](crate::experiment::run_imrp_traced) (telemetry),
//! [`run_imrp_journaled`](crate::experiment::run_imrp_journaled) (journal +
//! deadline) and [`resume_imrp`](crate::experiment::resume_imrp) (replay) —
//! each hand-assembling the same backend/decision/coordinator sandwich.
//! [`CampaignSpec`] collapses them into one typed description of a campaign
//! with a single entry point, [`CampaignSpec::run`]; every named driver is
//! now a thin wrapper over it, so all variants share one code path by
//! construction and byte-identical artifact regeneration is a structural
//! property rather than six parallel promises. The shape deliberately
//! mirrors `impress_workflow::CampaignSpec` — the service-level submission
//! type — so "a campaign" means the same thing at both layers.

use crate::adaptive::{AdaptivePolicy, ImpressDecision};
use crate::config::ProtocolConfig;
use crate::experiment::{add_imrp_roots, finish_imrp, toolkits, ExperimentResult};
use impress_pilot::{FaultConfig, FaultPlan, PilotConfig, RetryPolicy, RuntimeConfig};
use impress_sim::SimTime;
use impress_telemetry::Telemetry;
use impress_proteins::datasets::DesignTarget;
use impress_workflow::journal::{Journal, JournalError, ReplayPlan};
use impress_workflow::Coordinator;

/// A complete typed description of one IM-RP campaign: targets, protocol,
/// adaptive policy, pilot, and the optional cross-cutting layers (faults,
/// telemetry, journal, walltime deadline, resume plan). Build with
/// [`CampaignSpec::imrp`] and the chainable setters, run with
/// [`CampaignSpec::run`].
pub struct CampaignSpec {
    targets: Vec<DesignTarget>,
    config: ProtocolConfig,
    policy: AdaptivePolicy,
    pilot: PilotConfig,
    faults: Option<(FaultConfig, RetryPolicy)>,
    telemetry: Option<Telemetry>,
    journal: Option<Journal>,
    deadline: Option<SimTime>,
    resume: Option<ReplayPlan>,
}

/// What [`CampaignSpec::run`] produced: the packaged experiment result plus
/// the crash-consistency facts (meaningful when a journal and/or deadline
/// was configured; degenerate otherwise).
pub struct CampaignRun {
    /// The experiment result — identical to what the legacy drivers
    /// returned for the same configuration.
    pub result: ExperimentResult,
    /// Whether a walltime deadline forced a graceful drain before the
    /// campaign finished.
    pub drained: bool,
    /// Journal records appended (0 without a journal).
    pub records: u64,
    /// Snapshot compactions performed (0 without a journal).
    pub snapshots: u64,
}

impl CampaignSpec {
    /// An IM-RP campaign over `targets` with the default adaptive policy,
    /// on the paper's single simulated Amarel node seeded from the
    /// protocol config.
    ///
    /// `config.adaptive == false` is allowed: it gives the
    /// concurrent-but-non-selective ablation variant (pipelines still run
    /// under the coordinator, but Stage 6 accepts unconditionally). The
    /// paper's CONT-V additionally removes concurrency — use
    /// [`run_cont_v_experiment`](crate::experiment::run_cont_v_experiment)
    /// for that arm.
    pub fn imrp(targets: &[DesignTarget], config: ProtocolConfig) -> Self {
        let pilot = PilotConfig::with_seed(config.seed);
        CampaignSpec {
            targets: targets.to_vec(),
            config,
            policy: AdaptivePolicy::default(),
            pilot,
            faults: None,
            telemetry: None,
            journal: None,
            deadline: None,
            resume: None,
        }
    }

    /// Override the adaptive policy.
    pub fn policy(mut self, policy: AdaptivePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Override the pilot configuration (e.g. a multi-node cluster).
    pub fn pilot(mut self, pilot: PilotConfig) -> Self {
        self.pilot = pilot;
        self
    }

    /// Inject a fault environment: the pilot realizes `faults` (seeded from
    /// the pilot seed) under `retry`. With [`FaultConfig::none`] and
    /// [`RetryPolicy::none`] the run is bit-identical to a fault-free one.
    pub fn faults(mut self, faults: FaultConfig, retry: RetryPolicy) -> Self {
        self.faults = Some((faults, retry));
        self
    }

    /// Wire a live [`Telemetry`] handle through the pilot. Telemetry never
    /// perturbs the simulation — a disabled handle is bit-identical to no
    /// handle.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Install a write-ahead journal (see
    /// [`imrp_journal`](crate::experiment::imrp_journal)).
    pub fn journal(mut self, journal: Journal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Set an allocation walltime deadline: the pilot stops launching tasks
    /// that cannot finish by `deadline`, drains in-flight work, and leaves
    /// the journal (if any) as the checkpoint.
    pub fn deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Resume from a replayed journal instead of starting fresh. The plan's
    /// campaign identity (label + seed) must match the protocol config;
    /// [`CampaignSpec::run`] refuses a foreign plan with a typed error.
    pub fn resume_from(mut self, plan: ReplayPlan) -> Self {
        self.resume = Some(plan);
        self
    }

    /// Run the campaign to completion (or to a drained deadline). This is
    /// the single code path every IM-RP driver funnels through: build the
    /// backend from the runtime config, build the decision engine, build or
    /// resume the coordinator, attach the journal, add one root pipeline
    /// per target, and drive to completion.
    pub fn run(self) -> Result<CampaignRun, JournalError> {
        if let Some(plan) = &self.resume {
            if plan.label != crate::experiment::IMRP_JOURNAL_LABEL || plan.seed != self.config.seed
            {
                return Err(JournalError::Corrupt(format!(
                    "journal is for campaign {:?} (seed {}), not {:?} (seed {})",
                    plan.label,
                    plan.seed,
                    crate::experiment::IMRP_JOURNAL_LABEL,
                    self.config.seed
                )));
            }
        }
        let mut runtime = RuntimeConfig::new(self.pilot.clone());
        if let Some((faults, retry)) = self.faults {
            runtime = runtime.faults(FaultPlan::new(faults, self.pilot.seed), retry);
        }
        if let Some(telemetry) = self.telemetry {
            runtime = runtime.telemetry(telemetry);
        }
        if let Some(deadline) = self.deadline {
            runtime = runtime.deadline(deadline);
        }
        let backend = runtime.simulated();
        let tks = toolkits(&self.targets, self.config.seed);
        let decision = ImpressDecision::new(self.config.clone(), self.policy, tks.clone());
        let mut coordinator = match &self.resume {
            Some(plan) => Coordinator::resume(backend, decision, plan)?,
            None => Coordinator::new(backend, decision),
        };
        if let Some(journal) = self.journal {
            coordinator = coordinator.with_journal(journal);
        }
        add_imrp_roots(&mut coordinator, &tks, &self.config);
        let (result, coordinator) = finish_imrp(coordinator);
        let (records, snapshots) = coordinator
            .journal()
            .map(|j| (j.records_written(), j.snapshots_taken()))
            .unwrap_or((0, 0));
        Ok(CampaignRun {
            result,
            drained: coordinator.drained(),
            records,
            snapshots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_imrp, run_imrp_on};
    use impress_proteins::datasets::named_pdz_domains;

    /// The golden test: the spec-driven path must be byte-identical to a
    /// hand-assembled coordinator run — i.e. the refactor of the named
    /// drivers onto [`CampaignSpec::run`] did not perturb a single artifact
    /// byte. Everything downstream (fig2–5, table1) consumes
    /// `ExperimentResult` through `run_imrp`, so this pins the whole
    /// artifact chain.
    #[test]
    fn spec_path_is_byte_identical_to_a_hand_assembled_run() {
        let targets: Vec<_> = named_pdz_domains(42).into_iter().take(2).collect();
        let config = ProtocolConfig::imrp(1);
        let policy = AdaptivePolicy {
            sub_budget: 2,
            ..AdaptivePolicy::default()
        };

        // Hand-assembled, the way the drivers used to do it inline.
        let pilot = PilotConfig::with_seed(config.seed);
        let tks = toolkits(&targets, config.seed);
        let decision = ImpressDecision::new(config.clone(), policy.clone(), tks.clone());
        let mut coordinator = Coordinator::new(
            impress_pilot::backend::SimulatedBackend::new(pilot.clone()),
            decision,
        );
        add_imrp_roots(&mut coordinator, &tks, &config);
        let (manual, _) = finish_imrp(coordinator);

        // Through the new front door, twice: via the builder directly and
        // via the legacy wrapper.
        let spec_run = CampaignSpec::imrp(&targets, config.clone())
            .policy(policy.clone())
            .run()
            .unwrap();
        let wrapper = run_imrp(&targets, config.clone(), policy.clone());
        let on = run_imrp_on(&targets, config, policy, pilot);

        let golden = impress_json::to_string(&manual);
        assert_eq!(golden, impress_json::to_string(&spec_run.result));
        assert_eq!(golden, impress_json::to_string(&wrapper));
        assert_eq!(golden, impress_json::to_string(&on));
        assert_eq!(spec_run.records, 0, "no journal configured");
        assert!(!spec_run.drained);
        // Sanity: the run actually did work.
        assert!(spec_run.result.trajectories >= 4);
    }

    #[test]
    fn spec_refuses_a_foreign_resume_plan() {
        let targets: Vec<_> = named_pdz_domains(42).into_iter().take(1).collect();
        let config = ProtocolConfig::imrp(1);
        let Err(err) = CampaignSpec::imrp(&targets, config)
            .resume_from(ReplayPlan::new("CONT-V", 1))
            .run()
        else {
            panic!("foreign plan must be refused");
        };
        assert!(matches!(err, JournalError::Corrupt(_)), "{err}");
    }
}
