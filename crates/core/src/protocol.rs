//! The adaptive design pipeline (IM-RP's per-lineage state machine).
//!
//! One [`DesignPipeline`] carries one design lineage ("IMPRESS operates in
//! iterative stages during this implementation, submitting a single protein
//! structure for each new pipeline", §II-D) through `M` design cycles of the
//! seven-stage protocol. Stage 6's adaptive selection — accept on
//! improvement, otherwise retry the next-ranked candidate up to the retry
//! budget — is implemented here; the coordinator-level adaptivity
//! (sub-pipeline spawning) lives in [`crate::adaptive`].

use crate::config::ProtocolConfig;
use crate::stages::{
    stage1_mpnn, stage2_3_select, stage4_inference, stage4_msa, stage5_6_assess, SelectOutput,
};
use crate::toolkit::TargetToolkit;
use impress_pilot::Completion;
use impress_proteins::msa::Msa;
use impress_proteins::{ConfidenceReport, Prediction, ScoredSequence, Sequence, Structure};
use impress_sim::SimRng;
use impress_json::json_struct;
use impress_workflow::{PipelineLogic, Step};
use std::sync::Arc;

/// One accepted design iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Global iteration number (1-based; sub-pipelines continue their
    /// parent's numbering).
    pub iteration: u32,
    /// The accepted model's confidence report.
    pub report: ConfidenceReport,
    /// Hidden true quality of the accepted design (oracle, for analysis).
    pub true_quality: f64,
    /// Hidden true binding quality (oracle).
    pub bind_quality: f64,
    /// AlphaFold evaluations spent this cycle (1 = first candidate
    /// accepted; > 1 means declined alternates were evaluated first).
    pub evaluations: u32,
    /// Rank (0-based) of the accepted candidate in the selection order.
    pub accepted_rank: u32,
}
json_struct!(IterationRecord {
    iteration,
    report,
    true_quality,
    bind_quality,
    evaluations,
    accepted_rank
});

/// Everything a finished lineage reports to the decision engine.
#[derive(Debug, Clone)]
pub struct DesignOutcome {
    /// Target name.
    pub target: String,
    /// Pipeline label (distinguishes roots from spawned sub-pipelines).
    pub label: String,
    /// Accepted iterations, in order.
    pub iterations: Vec<IterationRecord>,
    /// The final accepted receptor sequence.
    pub final_receptor: Sequence,
    /// Backbone quality of the final structure (observed).
    pub final_backbone_quality: f64,
    /// Total AlphaFold evaluations spent (accepted + declined candidates).
    pub total_evaluations: u32,
    /// `true` if the lineage exhausted its retry budget before finishing
    /// all cycles (the paper's "pipeline is terminated" case).
    pub terminated_early: bool,
    /// Confidence metrics of the starting structure (iteration-0 baseline,
    /// known from preparation; identical for both arms).
    pub baseline_report: ConfidenceReport,
    /// Iteration number this lineage started at (1 for roots).
    pub start_iteration: u32,
}
json_struct!(DesignOutcome {
    target,
    label,
    iterations,
    final_receptor,
    final_backbone_quality,
    total_evaluations,
    terminated_early,
    baseline_report,
    start_iteration
});

impl DesignOutcome {
    /// The last accepted report, if any iteration was accepted.
    pub fn final_report(&self) -> Option<&ConfidenceReport> {
        self.iterations.last().map(|r| &r.report)
    }

    /// Number of accepted design points (the paper's "trajectories"
    /// accounting: CONT-V's 16 = 4 structures × 4 cycles).
    pub fn trajectories(&self) -> u32 {
        self.iterations.len() as u32
    }
}

enum Phase {
    Mpnn,
    Select,
    Msa,
    Fold,
    Assess,
}

/// The per-lineage pipeline state machine.
pub struct DesignPipeline {
    tk: Arc<TargetToolkit>,
    config: ProtocolConfig,
    label: String,
    rng: SimRng,
    /// Current structure (input to the next MPNN round).
    current: Structure,
    /// Last accepted report (None before the first acceptance).
    previous_report: Option<ConfidenceReport>,
    ordered: Vec<ScoredSequence>,
    candidate_idx: usize,
    /// Local cycle counter, 1-based.
    cycle: u32,
    /// Global iteration offset (sub-pipelines continue numbering).
    start_iteration: u32,
    records: Vec<IterationRecord>,
    total_evaluations: u32,
    baseline_report: ConfidenceReport,
    phase: Phase,
}

impl DesignPipeline {
    /// A root pipeline for `tk`'s starting structure.
    pub fn root(tk: Arc<TargetToolkit>, config: ProtocolConfig, replica: u64) -> Self {
        let label = format!("{}/root", tk.name);
        let rng = SimRng::from_seed(config.seed)
            .fork(&tk.name)
            .fork_idx("pipeline", replica);
        let current = tk.start.clone();
        let baseline_report = tk.baseline_report();
        DesignPipeline {
            tk,
            config,
            label,
            rng,
            current,
            previous_report: None,
            ordered: Vec::new(),
            candidate_idx: 0,
            cycle: 1,
            start_iteration: 1,
            records: Vec::new(),
            total_evaluations: 0,
            baseline_report,
            phase: Phase::Mpnn,
        }
    }

    /// A fresh restart of a target's design (used by the decision engine
    /// after a lineage crashes): identical to a root pipeline but with a
    /// distinguishable label and its own RNG stream.
    pub fn restart(tk: Arc<TargetToolkit>, config: ProtocolConfig, attempt: u64) -> Self {
        let mut p = Self::root(tk, config, 1000 + attempt);
        p.label = format!("{}/restart{attempt}", p.label);
        p
    }

    /// A sub-pipeline continuing `parent_outcome`'s lineage for
    /// `config.cycles` more cycles. Inherits the parent's last report so
    /// Stage 6 is adaptive from its first cycle.
    pub fn continuation(
        tk: Arc<TargetToolkit>,
        config: ProtocolConfig,
        parent: &DesignOutcome,
        structure: Structure,
        sub_index: u64,
    ) -> Self {
        let label = format!("{}/sub{}", parent.label, sub_index);
        let rng = SimRng::from_seed(config.seed)
            .fork(&label)
            .fork_idx("sub", sub_index);
        let start_iteration = parent
            .iterations
            .last()
            .map(|r| r.iteration + 1)
            .unwrap_or(parent.start_iteration);
        DesignPipeline {
            tk,
            config,
            label,
            rng,
            current: structure,
            previous_report: parent.final_report().copied(),
            ordered: Vec::new(),
            candidate_idx: 0,
            cycle: 1,
            start_iteration,
            records: Vec::new(),
            total_evaluations: 0,
            baseline_report: parent.baseline_report,
            phase: Phase::Mpnn,
        }
    }

    /// Global iteration number of the current cycle.
    fn iteration(&self) -> u32 {
        self.start_iteration + self.cycle - 1
    }

    /// Whether Stage 6's adaptive selection applies to the current cycle.
    fn adaptive_now(&self) -> bool {
        if !self.config.adaptive {
            return false;
        }
        let is_final = self.cycle == self.config.cycles;
        !is_final || self.config.adaptive_final_cycle
    }

    fn submit_mpnn(&mut self) -> Step<DesignOutcome> {
        self.phase = Phase::Mpnn;
        let rng = self.rng.fork_idx("mpnn", self.iteration() as u64);
        Step::run(stage1_mpnn(
            &self.tk,
            self.current.clone(),
            self.config.mpnn.clone(),
            &self.config.cost,
            rng,
        ))
    }

    fn submit_select(&mut self, proposals: Vec<ScoredSequence>) -> Step<DesignOutcome> {
        self.phase = Phase::Select;
        let rng = self.rng.fork_idx("select", self.iteration() as u64);
        Step::run(stage2_3_select(
            &self.tk,
            proposals,
            self.adaptive_now(),
            &self.config.cost,
            rng,
        ))
    }

    /// Number of ranked candidates evaluated concurrently this round:
    /// speculative prefetch of likely retries, bounded by the retry budget
    /// and the candidate pool. Non-adaptive cycles accept unconditionally,
    /// so speculation would be pure waste — width 1.
    fn batch_width(&self) -> usize {
        let budget = (self.config.retry_budget as usize).min(self.ordered.len());
        let remaining = budget.saturating_sub(self.candidate_idx);
        if !self.adaptive_now() {
            return remaining.min(1);
        }
        remaining.min(self.config.speculation.max(1) as usize)
    }

    fn submit_msa(&mut self) -> Step<DesignOutcome> {
        self.phase = Phase::Msa;
        let width = self.batch_width();
        assert!(width > 0, "submit_msa called with no candidates left");
        let tasks = (0..width)
            .map(|i| {
                let k = self.candidate_idx + i;
                let candidate = self.ordered[k].sequence.clone();
                let rng = self.rng.fork(&format!("msa/i{}/k{k}", self.iteration()));
                // Optionally keep speculative alternates off the critical
                // path (see ProtocolConfig::deprioritize_speculation).
                let priority = if i == 0 || !self.config.deprioritize_speculation {
                    0
                } else {
                    -1
                };
                stage4_msa(
                    &self.tk,
                    candidate,
                    self.config.alphafold.msa_mode,
                    &self.config.cost,
                    rng,
                )
                .with_priority(priority)
            })
            .collect();
        Step::Submit(tasks)
    }

    fn submit_fold(&mut self, msas: Vec<Msa>) -> Step<DesignOutcome> {
        self.phase = Phase::Fold;
        let tasks = msas
            .into_iter()
            .enumerate()
            .map(|(i, msa)| {
                let k = self.candidate_idx + i;
                let candidate = self.ordered[k].sequence.clone();
                let rng = self.rng.fork(&format!("fold/i{}/k{k}", self.iteration()));
                let priority = if i == 0 || !self.config.deprioritize_speculation {
                    0
                } else {
                    -1
                };
                stage4_inference(
                    &self.tk,
                    candidate,
                    msa,
                    self.config.alphafold,
                    self.iteration(),
                    &self.config.cost,
                    rng,
                )
                .with_priority(priority)
            })
            .collect();
        Step::Submit(tasks)
    }

    fn submit_assess(&mut self, predictions: Vec<Prediction>) -> Step<DesignOutcome> {
        self.phase = Phase::Assess;
        Step::Submit(
            predictions
                .into_iter()
                .map(|p| stage5_6_assess(p, &self.config.cost))
                .collect(),
        )
    }

    fn outcome(&self, terminated_early: bool) -> DesignOutcome {
        DesignOutcome {
            target: self.tk.name.clone(),
            label: self.label.clone(),
            iterations: self.records.clone(),
            final_receptor: self.current.complex.receptor.sequence.clone(),
            final_backbone_quality: self.current.backbone_quality,
            total_evaluations: self.total_evaluations,
            terminated_early,
            baseline_report: self.baseline_report,
            start_iteration: self.start_iteration,
        }
    }

    /// Stage 6: accept or retry. `batch` holds the speculative round's
    /// predictions in rank order; candidates are still considered strictly
    /// sequentially, so the outcome is identical to unspeculated execution —
    /// extra evaluations only burn otherwise-idle resources.
    fn decide(&mut self, batch: Vec<Prediction>) -> Step<DesignOutcome> {
        self.total_evaluations += batch.len() as u32;
        let width = batch.len();
        for (offset, prediction) in batch.into_iter().enumerate() {
            let rank = self.candidate_idx + offset;
            let report = prediction.report;
            let accept = match (&self.previous_report, self.adaptive_now()) {
                (_, false) => true,
                (None, true) => true,
                (Some(prev), true) => report.improves_over(prev),
            };
            if !accept {
                continue;
            }
            let truth = self
                .tk
                .landscape
                .fitness(&prediction.structure.complex.receptor.sequence);
            self.records.push(IterationRecord {
                iteration: self.iteration(),
                report,
                true_quality: truth.quality,
                bind_quality: truth.bind_quality,
                evaluations: rank as u32 + 1,
                accepted_rank: rank as u32,
            });
            self.previous_report = Some(report);
            self.current = prediction.structure;
            self.candidate_idx = 0;
            if self.cycle >= self.config.cycles {
                return Step::Complete(self.outcome(false));
            }
            self.cycle += 1;
            return self.submit_mpnn();
        }
        // Whole round declined: move past it.
        self.candidate_idx += width;
        let budget = (self.config.retry_budget as usize).min(self.ordered.len());
        if self.candidate_idx >= budget {
            // "This alternative selection process can be repeated up to
            // 10 times, after which the pipeline is terminated."
            return Step::Complete(self.outcome(true));
        }
        self.submit_msa()
    }
}

impl PipelineLogic<DesignOutcome> for DesignPipeline {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn begin(&mut self) -> Step<DesignOutcome> {
        self.submit_mpnn()
    }

    fn stage_done(&mut self, mut completions: Vec<Completion>) -> Step<DesignOutcome> {
        // Fail-safe: a crashed task (e.g. a generator bug, an OOM-killed
        // model) aborts the lineage instead of poisoning the coordinator;
        // the decision engine can then re-process the target.
        if let Some(failed) = completions.iter().find(|c| c.failure().is_some()) {
            let e = failed.failure().expect("find() matched a failure");
            let reason = format!("task {} ({}) failed: {e}", failed.task, failed.name);
            return Step::Abort(reason);
        }
        match std::mem::replace(&mut self.phase, Phase::Mpnn) {
            Phase::Mpnn => {
                assert_eq!(completions.len(), 1, "stage 1 is single-task");
                let proposals = completions
                    .pop()
                    .expect("one")
                    .output::<Vec<ScoredSequence>>();
                self.submit_select(proposals)
            }
            Phase::Select => {
                assert_eq!(completions.len(), 1, "stages 2+3 are single-task");
                let out = completions.pop().expect("one").output::<SelectOutput>();
                self.ordered = out.ordered;
                self.candidate_idx = 0;
                self.submit_msa()
            }
            Phase::Msa => {
                let msas: Vec<Msa> = completions.into_iter().map(|c| c.output::<Msa>()).collect();
                self.submit_fold(msas)
            }
            Phase::Fold => {
                let predictions: Vec<Prediction> = completions
                    .into_iter()
                    .map(|c| c.output::<Prediction>())
                    .collect();
                self.submit_assess(predictions)
            }
            Phase::Assess => {
                let batch: Vec<Prediction> = completions
                    .into_iter()
                    .map(|c| c.output::<Prediction>())
                    .collect();
                self.decide(batch)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_pilot::backend::SimulatedBackend;
    use impress_pilot::PilotConfig;
    use impress_proteins::datasets::named_pdz_domains;
    use impress_workflow::{Coordinator, NoDecisions};

    fn run_pipeline(config: ProtocolConfig, target_idx: usize) -> DesignOutcome {
        let targets = named_pdz_domains(42);
        let tk = TargetToolkit::for_target(&targets[target_idx], 7);
        let backend = SimulatedBackend::new(PilotConfig::with_seed(config.seed));
        let mut c = Coordinator::new(backend, NoDecisions);
        c.add_pipeline(Box::new(DesignPipeline::root(tk, config, 0)));
        c.run();
        assert_eq!(c.outcomes().len(), 1, "pipeline must complete");
        c.outcomes()[0].1.clone()
    }

    #[test]
    fn adaptive_pipeline_runs_four_cycles_and_improves() {
        let out = run_pipeline(ProtocolConfig::imrp(11), 0);
        assert!(!out.terminated_early || out.iterations.len() < 4);
        assert!(
            !out.iterations.is_empty(),
            "at least one accepted iteration"
        );
        // Iterations must be strictly increasing and start at 1.
        for (i, rec) in out.iterations.iter().enumerate() {
            assert_eq!(rec.iteration, i as u32 + 1);
        }
        // Adaptive acceptance ⇒ monotone majority-improvement chain: the
        // last accepted report must beat the first on score.
        if out.iterations.len() >= 2 {
            let first = out.iterations.first().unwrap().report;
            let last = out.iterations.last().unwrap().report;
            assert!(
                last.score() > first.score(),
                "quality must improve: {first} → {last}"
            );
        }
    }

    #[test]
    fn non_adaptive_pipeline_always_accepts() {
        let out = run_pipeline(ProtocolConfig::cont_v(13), 1);
        assert_eq!(
            out.iterations.len(),
            4,
            "no pruning ⇒ all 4 cycles accepted"
        );
        assert!(!out.terminated_early);
        assert!(
            out.iterations.iter().all(|r| r.evaluations == 1),
            "non-adaptive never retries"
        );
        assert_eq!(out.total_evaluations, 4);
    }

    #[test]
    fn adaptive_uses_more_evaluations_than_non_adaptive() {
        let adaptive = run_pipeline(ProtocolConfig::imrp(17), 2);
        let control = run_pipeline(ProtocolConfig::cont_v(17), 2);
        assert!(
            adaptive.total_evaluations >= control.total_evaluations,
            "adaptive {} vs control {}",
            adaptive.total_evaluations,
            control.total_evaluations
        );
    }

    #[test]
    fn final_cycle_adaptivity_flag_controls_last_selection() {
        let mut cfg = ProtocolConfig::imrp(19);
        cfg.adaptive_final_cycle = false;
        let out = run_pipeline(cfg, 3);
        // The final cycle accepts unconditionally, so if 4 iterations exist
        // the 4th must have used exactly one evaluation.
        if let Some(last) = out.iterations.iter().find(|r| r.iteration == 4) {
            assert_eq!(last.evaluations, 1, "final cycle must not retry");
        }
    }

    #[test]
    fn continuation_inherits_numbering_and_report() {
        let parent = run_pipeline(ProtocolConfig::imrp(23), 0);
        let targets = named_pdz_domains(42);
        let tk = TargetToolkit::for_target(&targets[0], 7);
        let mut cfg = ProtocolConfig::imrp(23);
        cfg.cycles = 1;
        let structure = Structure::refined(
            tk.start
                .complex
                .with_receptor_sequence(parent.final_receptor.clone()),
            parent.final_backbone_quality,
            parent.iterations.last().map(|r| r.iteration).unwrap_or(0),
        );
        let sub = DesignPipeline::continuation(tk.clone(), cfg.clone(), &parent, structure, 0);
        assert!(sub.label.contains("/sub0"));
        assert_eq!(
            sub.start_iteration,
            parent.iterations.last().unwrap().iteration + 1
        );
        assert_eq!(
            sub.previous_report.as_ref(),
            parent.final_report(),
            "stage 6 must be adaptive from the first sub-cycle"
        );
    }

    #[test]
    fn outcomes_are_deterministic_for_a_seed() {
        let a = run_pipeline(ProtocolConfig::imrp(29), 1);
        let b = run_pipeline(ProtocolConfig::imrp(29), 1);
        assert_eq!(a.final_receptor, b.final_receptor);
        assert_eq!(a.total_evaluations, b.total_evaluations);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn trajectories_equal_accepted_iterations() {
        let out = run_pipeline(ProtocolConfig::cont_v(31), 0);
        assert_eq!(out.trajectories(), 4);
    }
}
