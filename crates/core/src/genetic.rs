//! The genetic-algorithm view of the protocol.
//!
//! §II-A frames the coupled ProteinMPNN↔AlphaFold loop as "a genetic
//! algorithm that couples AlphaFold2 and ProteinMPNN together to converge on
//! optimal designs". This module makes that view explicit and reusable
//! outside the pilot machinery: a population of designs evolves by
//! MPNN-proposal *mutation*, AlphaFold-observed *fitness*, and truncation
//! *selection*. The ablation benches use it to isolate algorithmic effects
//! (selection pressure, population size, observation noise) from runtime
//! effects (scheduling, concurrency).

use crate::toolkit::TargetToolkit;
use impress_proteins::msa::MsaMode;
use impress_proteins::{AlphaFoldConfig, MpnnConfig, Sequence, Structure};
use impress_json::json_struct;
use impress_sim::SimRng;
use std::sync::Arc;

/// GA configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Designs kept per generation.
    pub population: usize,
    /// Generations to run.
    pub generations: u32,
    /// Fraction of the population retained as parents each generation.
    pub elite_fraction: f64,
    /// MPNN proposals drawn per parent.
    pub offspring_per_parent: usize,
    /// Whether selection uses AlphaFold-observed scores (`true`, realistic)
    /// or the hidden oracle (`false`, upper bound for ablations).
    pub observed_selection: bool,
}
json_struct!(GaConfig {
    population,
    generations,
    elite_fraction,
    offspring_per_parent,
    observed_selection
});

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 8,
            generations: 4,
            elite_fraction: 0.25,
            offspring_per_parent: 10,
            observed_selection: true,
        }
    }
}

/// One generation's statistics.
#[derive(Debug, Clone, Copy)]
pub struct GenerationStats {
    /// Generation index (0 = initial population).
    pub generation: u32,
    /// Best *true* quality in the population (oracle, for analysis).
    pub best_quality: f64,
    /// Mean true quality.
    pub mean_quality: f64,
}
json_struct!(GenerationStats {
    generation,
    best_quality,
    mean_quality
});

/// Result of a GA run.
#[derive(Debug, Clone)]
pub struct GaTrace {
    /// Per-generation statistics, starting with the initial population.
    pub generations: Vec<GenerationStats>,
    /// The best final design.
    pub best: Sequence,
}
json_struct!(GaTrace { generations, best });

/// Evolve designs for `tk`'s target.
pub fn evolve(tk: &Arc<TargetToolkit>, config: &GaConfig, rng: &mut SimRng) -> GaTrace {
    assert!(config.population >= 2, "population too small");
    assert!(
        (0.0..=1.0).contains(&config.elite_fraction) && config.elite_fraction > 0.0,
        "elite fraction must be in (0, 1]"
    );
    let landscape = tk.landscape.clone();
    let mpnn_cfg = MpnnConfig::default();
    let af_cfg = AlphaFoldConfig::default();

    // Initial population: the native plus MPNN variations of it.
    let mut population: Vec<(Sequence, f64)> = Vec::with_capacity(config.population);
    population.push(score(&landscape, tk, &tk.start, config, af_cfg, rng));
    while population.len() < config.population {
        let proposals = tk.generator.generate(&tk.start, &mpnn_cfg, rng);
        for p in proposals {
            if population.len() >= config.population {
                break;
            }
            let structure = structure_of(tk, &p.sequence, 0);
            population.push(score(&landscape, tk, &structure, config, af_cfg, rng));
        }
    }

    let mut trace = vec![stats(&landscape, 0, &population)];
    for generation in 1..=config.generations {
        // Truncation selection on the (observed or oracle) score.
        population.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        let n_parents = ((config.population as f64 * config.elite_fraction).ceil() as usize)
            .clamp(1, config.population);
        let parents: Vec<Sequence> = population[..n_parents]
            .iter()
            .map(|(s, _)| s.clone())
            .collect();
        // Offspring via MPNN mutation conditioned on each parent's model.
        let mut next: Vec<(Sequence, f64)> = population[..n_parents].to_vec();
        'fill: for parent in &parents {
            let structure = structure_of(tk, parent, generation);
            let proposals = tk.generator.generate(&structure, &mpnn_cfg, rng);
            for p in proposals.into_iter().take(config.offspring_per_parent) {
                if next.len() >= config.population {
                    break 'fill;
                }
                let child = structure_of(tk, &p.sequence, generation);
                next.push(score(&landscape, tk, &child, config, af_cfg, rng));
            }
        }
        population = next;
        trace.push(stats(&landscape, generation, &population));
    }
    population.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    GaTrace {
        best: population[0].0.clone(),
        generations: trace,
    }
}

fn structure_of(tk: &Arc<TargetToolkit>, seq: &Sequence, iteration: u32) -> Structure {
    let q = tk.landscape.fitness(seq).quality;
    Structure::refined(
        tk.start.complex.with_receptor_sequence(seq.clone()),
        q,
        iteration,
    )
}

fn score(
    landscape: &impress_proteins::DesignLandscape,
    tk: &Arc<TargetToolkit>,
    structure: &Structure,
    config: &GaConfig,
    af_cfg: AlphaFoldConfig,
    rng: &mut SimRng,
) -> (Sequence, f64) {
    let seq = structure.complex.receptor.sequence.clone();
    let fitness = if config.observed_selection {
        let msa = tk
            .alphafold
            .build_msa(&structure.complex.receptor.sequence, MsaMode::Full);
        tk.alphafold
            .predict(&structure.complex, &msa, &af_cfg, structure.iteration, rng)
            .report
            .score()
    } else {
        landscape.fitness(&seq).quality
    };
    (seq, fitness)
}

fn stats(
    landscape: &impress_proteins::DesignLandscape,
    generation: u32,
    population: &[(Sequence, f64)],
) -> GenerationStats {
    let qualities: Vec<f64> = population
        .iter()
        .map(|(s, _)| landscape.fitness(s).quality)
        .collect();
    GenerationStats {
        generation,
        best_quality: qualities.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        mean_quality: qualities.iter().sum::<f64>() / qualities.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_proteins::datasets::named_pdz_domains;

    fn toolkit() -> Arc<TargetToolkit> {
        TargetToolkit::for_target(&named_pdz_domains(42)[0], 7)
    }

    #[test]
    fn ga_improves_over_generations() {
        let tk = toolkit();
        let mut rng = SimRng::from_seed(1);
        let trace = evolve(&tk, &GaConfig::default(), &mut rng);
        assert_eq!(trace.generations.len(), 5);
        let first = trace.generations.first().unwrap().best_quality;
        let last = trace.generations.last().unwrap().best_quality;
        assert!(
            last > first + 0.05,
            "GA must make real progress: {first} → {last}"
        );
    }

    #[test]
    fn oracle_selection_is_at_least_as_good() {
        let tk = toolkit();
        let run = |observed: bool, seed: u64| {
            let mut rng = SimRng::from_seed(seed);
            let cfg = GaConfig {
                observed_selection: observed,
                ..GaConfig::default()
            };
            evolve(&tk, &cfg, &mut rng)
                .generations
                .last()
                .unwrap()
                .best_quality
        };
        // Means over a few seeds to smooth noise.
        let obs: f64 = (0..3).map(|s| run(true, s)).sum::<f64>() / 3.0;
        let oracle: f64 = (0..3).map(|s| run(false, s)).sum::<f64>() / 3.0;
        assert!(
            oracle >= obs - 0.05,
            "oracle selection ({oracle}) should not trail observed ({obs}) by much"
        );
    }

    #[test]
    fn population_size_is_maintained() {
        let tk = toolkit();
        let mut rng = SimRng::from_seed(5);
        let cfg = GaConfig {
            population: 6,
            generations: 2,
            ..GaConfig::default()
        };
        let trace = evolve(&tk, &cfg, &mut rng);
        assert_eq!(trace.generations.len(), 3);
        assert_eq!(trace.best.len(), tk.start.complex.receptor.len());
    }

    #[test]
    #[should_panic(expected = "population too small")]
    fn tiny_population_rejected() {
        let tk = toolkit();
        let mut rng = SimRng::from_seed(5);
        let cfg = GaConfig {
            population: 1,
            ..GaConfig::default()
        };
        let _ = evolve(&tk, &cfg, &mut rng);
    }
}
