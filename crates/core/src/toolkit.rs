//! Per-target tool bundle shared into task closures.

use crate::generator::{MpnnGenerator, SequenceGenerator};
use impress_proteins::datasets::DesignTarget;
use impress_proteins::msa::{MsaMode, SyntheticMsaDatabase};
use impress_proteins::{
    AlphaFoldConfig, ConfidenceReport, DesignLandscape, Structure, SurrogateAlphaFold,
    SurrogateMpnn,
};
use impress_sim::SimRng;
use std::sync::Arc;

/// The AI tools for one design target, bundled for cheap sharing into
/// `Send + 'static` task closures on either backend.
pub struct TargetToolkit {
    /// Target name.
    pub name: String,
    /// The hidden ground-truth landscape (oracle access for analysis and
    /// for deriving backbone qualities; the protocol itself only sees the
    /// tools' noisy outputs).
    pub landscape: DesignLandscape,
    /// The Stage-1 sequence generator (ProteinMPNN surrogate by default;
    /// see [`crate::generator`] for the plug point).
    pub generator: Arc<dyn SequenceGenerator>,
    /// The AlphaFold surrogate (same landscape, shared MSA database).
    pub alphafold: SurrogateAlphaFold,
    /// The prepared starting structure.
    pub start: Structure,
}

impl TargetToolkit {
    /// Build the toolkit for a design target with the default ProteinMPNN
    /// generator. `db_seed` determines the shared MSA database identity
    /// (one database per experiment, like one filesystem copy of
    /// BFD/UniRef on the real cluster).
    pub fn for_target(target: &DesignTarget, db_seed: u64) -> Arc<TargetToolkit> {
        Self::with_generator(
            target,
            db_seed,
            Arc::new(MpnnGenerator(SurrogateMpnn::new(target.landscape.clone()))),
        )
    }

    /// Build the toolkit with a custom Stage-1 generator.
    pub fn with_generator(
        target: &DesignTarget,
        db_seed: u64,
        generator: Arc<dyn SequenceGenerator>,
    ) -> Arc<TargetToolkit> {
        let database = SyntheticMsaDatabase::new(db_seed);
        Arc::new(TargetToolkit {
            name: target.name.clone(),
            landscape: target.landscape.clone(),
            generator,
            alphafold: SurrogateAlphaFold::new(target.landscape.clone(), database),
            start: target.start.clone(),
        })
    }

    /// Confidence metrics of the *starting* structure — the iteration-0
    /// baseline. The paper's starting complexes are experimentally resolved
    /// structures whose AlphaFold metrics were known from preparation, so
    /// this is input metadata, not a pipeline task; it is identical for both
    /// arms and independent of the arm's AlphaFold configuration.
    pub fn baseline_report(&self) -> ConfidenceReport {
        let mut rng =
            SimRng::from_seed(self.start.complex.receptor.sequence.content_hash()).fork("baseline");
        let msa = self
            .alphafold
            .build_msa(&self.start.complex.receptor.sequence, MsaMode::Full);
        self.alphafold
            .predict(
                &self.start.complex,
                &msa,
                &AlphaFoldConfig::default(),
                0,
                &mut rng,
            )
            .report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::RandomMutagenesis;
    use impress_proteins::datasets::named_pdz_domains;

    #[test]
    fn toolkit_shares_one_landscape_identity() {
        let targets = named_pdz_domains(42);
        let tk = TargetToolkit::for_target(&targets[0], 7);
        assert_eq!(tk.name, "NHERF3");
        // Oracle and AlphaFold must score the same sequence identically at
        // the landscape level (same hidden truth).
        let seq = &tk.start.complex.receptor.sequence;
        let f1 = tk.landscape.fitness(seq);
        let f2 = tk.alphafold.landscape().fitness(seq);
        assert_eq!(f1, f2);
        assert_eq!(tk.generator.name(), "ProteinMPNN");
    }

    #[test]
    fn toolkit_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TargetToolkit>();
    }

    #[test]
    fn custom_generator_is_pluggable() {
        let targets = named_pdz_domains(42);
        let tk =
            TargetToolkit::with_generator(&targets[1], 7, Arc::new(RandomMutagenesis::default()));
        assert_eq!(tk.generator.name(), "random-mutagenesis");
    }

    #[test]
    fn baseline_report_is_stable_and_in_range() {
        let targets = named_pdz_domains(42);
        let tk = TargetToolkit::for_target(&targets[0], 7);
        let a = tk.baseline_report();
        let b = tk.baseline_report();
        assert_eq!(a, b, "baseline is pure metadata");
        assert!((50.0..=85.0).contains(&a.plddt));
    }
}
