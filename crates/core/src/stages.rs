//! Task builders for the seven pipeline stages (§II-C).
//!
//! Each builder produces a [`TaskDescription`] whose work closure performs
//! the stage's computation against the target's toolkit and whose resource
//! request / duration follow the [`CostModel`]. The same builders serve the
//! adaptive pipeline (IM-RP) and the sequential control (CONT-V), so the two
//! protocols differ *only* in orchestration and selection policy — exactly
//! the comparison the paper makes.

use crate::config::CostModel;
use crate::toolkit::TargetToolkit;
use impress_pilot::task::TaskKind;
use impress_pilot::{ResourceRequest, TaskDescription};
use impress_proteins::fasta::{write_fasta, FastaRecord};
use impress_proteins::msa::{Msa, MsaMode};
use impress_proteins::{
    AlphaFoldConfig, MpnnConfig, Prediction, ScoredSequence, Sequence, Structure,
};
use impress_sim::SimRng;
use std::sync::Arc;

/// Output of the combined Stage 2+3 task: candidates in selection order and
/// the FASTA artifact compiled for downstream tools.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectOutput {
    /// Candidates in the order they should be evaluated.
    pub ordered: Vec<ScoredSequence>,
    /// The FASTA text for the top candidate's complex.
    pub fasta: String,
}

/// Stage 1: sequence generation conditioned on `structure` (ProteinMPNN by
/// default; whatever [`crate::generator::SequenceGenerator`] the toolkit
/// carries).
pub fn stage1_mpnn(
    tk: &Arc<TargetToolkit>,
    structure: Structure,
    mpnn: MpnnConfig,
    cost: &CostModel,
    rng: SimRng,
) -> TaskDescription {
    let tk = tk.clone();
    TaskDescription::new(
        "mpnn-generate",
        ResourceRequest::with_gpus(cost.mpnn_cores, cost.mpnn_gpus),
        cost.mpnn_duration,
    )
    .with_gpu_busy_fraction(cost.mpnn_gpu_busy)
    .with_kind(TaskKind::Ml)
    .with_work(move || {
        let mut rng = rng;
        tk.generator.generate(&structure, &mpnn, &mut rng)
    })
}

/// Stages 2+3: sort candidates (by log-likelihood when `ranked`, by a
/// uniformly random shuffle otherwise — the CONT-V selection), then compile
/// the top candidate into a FASTA record.
pub fn stage2_3_select(
    tk: &Arc<TargetToolkit>,
    proposals: Vec<ScoredSequence>,
    ranked: bool,
    cost: &CostModel,
    rng: SimRng,
) -> TaskDescription {
    let tk = tk.clone();
    TaskDescription::new("select-compile", ResourceRequest::cores(1), cost.small_task).with_work(
        move || {
            let mut rng = rng;
            let ordered = if ranked {
                impress_proteins::mpnn::rank_by_log_likelihood(proposals)
            } else {
                let mut p = proposals;
                rng.shuffle(&mut p);
                p
            };
            let fasta = write_fasta(&[FastaRecord {
                header: format!("{} top candidate", tk.name),
                chains: vec![
                    ordered[0].sequence.clone(),
                    tk.start.complex.peptide.sequence.clone(),
                ],
            }]);
            SelectOutput { ordered, fasta }
        },
    )
}

/// Stage 4a: MSA construction for a candidate receptor sequence. CPU-bound;
/// duration comes from the database's cost model (virtual hours).
pub fn stage4_msa(
    tk: &Arc<TargetToolkit>,
    receptor: Sequence,
    mode: MsaMode,
    cost: &CostModel,
    mut rng: SimRng,
) -> TaskDescription {
    let duration = tk.alphafold.msa_duration(&receptor, mode, &mut rng);
    let tk = tk.clone();
    TaskDescription::new("af2-msa", ResourceRequest::cores(cost.msa_cores), duration)
        .with_kind(TaskKind::OpenMp)
        .with_work(move || tk.alphafold.build_msa(&receptor, mode))
}

/// Stage 4b: AlphaFold inference — predict the complex, rank candidate
/// models by pTM, return the best (Stage 5's metrics ride along in the
/// prediction report).
pub fn stage4_inference(
    tk: &Arc<TargetToolkit>,
    receptor: Sequence,
    msa: Msa,
    config: AlphaFoldConfig,
    iteration: u32,
    cost: &CostModel,
    mut rng: SimRng,
) -> TaskDescription {
    let duration = tk.alphafold.inference_duration(&config, &mut rng);
    let tk = tk.clone();
    TaskDescription::new(
        "af2-inference",
        ResourceRequest::with_gpus(cost.inference_cores, cost.inference_gpus),
        duration,
    )
    .with_gpu_busy_fraction(cost.inference_gpu_busy)
    .with_kind(TaskKind::Ml)
    .with_work(move || {
        let mut rng = rng;
        let complex = tk.start.complex.with_receptor_sequence(receptor);
        tk.alphafold
            .predict(&complex, &msa, &config, iteration, &mut rng)
    })
}

/// Stages 5+6: gather metrics and compare with the previous iteration. The
/// comparison logic itself lives in the pipeline state machine (it needs
/// lineage state); this task models the stage's compute cost and carries
/// the prediction through.
pub fn stage5_6_assess(prediction: Prediction, cost: &CostModel) -> TaskDescription {
    TaskDescription::new("assess", ResourceRequest::cores(1), cost.small_task)
        .with_work(move || prediction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_pilot::backend::SimulatedBackend;
    use impress_pilot::{ExecutionBackend, PilotConfig};
    use impress_proteins::datasets::named_pdz_domains;

    fn toolkit() -> Arc<TargetToolkit> {
        TargetToolkit::for_target(&named_pdz_domains(42)[0], 7)
    }

    fn run_one(desc: TaskDescription) -> impress_pilot::Completion {
        let mut b = SimulatedBackend::new(PilotConfig::default());
        b.submit(desc);
        b.next_completion().expect("task completes")
    }

    #[test]
    fn stage1_produces_ten_scored_sequences() {
        let tk = toolkit();
        let cost = CostModel::imrp();
        let desc = stage1_mpnn(
            &tk,
            tk.start.clone(),
            MpnnConfig::default(),
            &cost,
            SimRng::from_seed(1),
        );
        assert_eq!(desc.request.gpus, 1);
        let out = run_one(desc).output::<Vec<ScoredSequence>>();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn stage2_3_ranked_orders_by_log_likelihood() {
        let tk = toolkit();
        let cost = CostModel::imrp();
        let mut rng = SimRng::from_seed(2);
        let proposals = tk
            .generator
            .generate(&tk.start, &MpnnConfig::default(), &mut rng);
        let out = run_one(stage2_3_select(
            &tk,
            proposals,
            true,
            &cost,
            SimRng::from_seed(3),
        ))
        .output::<SelectOutput>();
        for w in out.ordered.windows(2) {
            assert!(w[0].log_likelihood >= w[1].log_likelihood);
        }
        assert!(out.fasta.starts_with(">NHERF3"));
        assert!(out.fasta.contains(':'), "multimer fasta");
    }

    #[test]
    fn stage2_3_unranked_is_a_permutation_not_a_sort() {
        let tk = toolkit();
        let cost = CostModel::cont_v();
        let mut rng = SimRng::from_seed(4);
        let proposals = tk
            .generator
            .generate(&tk.start, &MpnnConfig::default(), &mut rng);
        let lls: Vec<f64> = proposals.iter().map(|p| p.log_likelihood).collect();
        let out = run_one(stage2_3_select(
            &tk,
            proposals,
            false,
            &cost,
            SimRng::from_seed(5),
        ))
        .output::<SelectOutput>();
        let mut out_lls: Vec<f64> = out.ordered.iter().map(|p| p.log_likelihood).collect();
        let mut orig = lls.clone();
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out_lls.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(orig, out_lls, "same multiset of candidates");
    }

    #[test]
    fn stage4_pair_runs_msa_then_inference() {
        let tk = toolkit();
        let cost = CostModel::imrp();
        let receptor = tk.start.complex.receptor.sequence.clone();
        let msa_task = stage4_msa(
            &tk,
            receptor.clone(),
            MsaMode::Full,
            &cost,
            SimRng::from_seed(6),
        );
        assert!(msa_task.duration.as_hours_f64() > 0.3, "MSA takes hours");
        assert_eq!(msa_task.request.cores, 6);
        let msa = run_one(msa_task).output::<Msa>();
        assert!(msa.depth > 0);
        let inf = stage4_inference(
            &tk,
            receptor,
            msa,
            AlphaFoldConfig::default(),
            1,
            &cost,
            SimRng::from_seed(7),
        );
        assert_eq!(inf.request.gpus, 1);
        let pred = run_one(inf).output::<Prediction>();
        assert_eq!(pred.candidates.len(), 5);
        assert_eq!(pred.structure.iteration, 1);
    }

    #[test]
    fn assess_carries_the_prediction_through() {
        let tk = toolkit();
        let cost = CostModel::imrp();
        let mut rng = SimRng::from_seed(8);
        let msa = tk
            .alphafold
            .build_msa(&tk.start.complex.receptor.sequence, MsaMode::Full);
        let pred = tk.alphafold.predict(
            &tk.start.complex,
            &msa,
            &AlphaFoldConfig::default(),
            0,
            &mut rng,
        );
        let out = run_one(stage5_6_assess(pred.clone(), &cost)).output::<Prediction>();
        assert_eq!(out, pred);
    }
}
