//! Protocol and cost-model configuration.

use impress_proteins::msa::MsaMode;
use impress_proteins::{AlphaFoldConfig, MpnnConfig};
use impress_json::json_struct;
use impress_sim::SimDuration;

/// Resource shapes and durations of the pipeline's tasks on the simulated
/// node. Calibrated against the paper's testbed observations: MSA
/// construction is the CPU-hours elephant; inference holds a GPU slot for
/// ~12 min per candidate model of which roughly a third is actual kernel
/// time; everything else is small.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cores per ProteinMPNN task.
    pub mpnn_cores: u32,
    /// GPUs per ProteinMPNN task (IM-RP runs it on GPU; CONT-V on CPU).
    pub mpnn_gpus: u32,
    /// ProteinMPNN wall time.
    pub mpnn_duration: SimDuration,
    /// Fraction of the MPNN window the GPU is actually busy.
    pub mpnn_gpu_busy: f64,
    /// Cores per MSA-construction task.
    pub msa_cores: u32,
    /// Cores per inference task.
    pub inference_cores: u32,
    /// GPUs per inference task.
    pub inference_gpus: u32,
    /// Fraction of the inference window the GPU is actually busy
    /// (`nvidia-smi` semantics; see `impress_proteins::alphafold`).
    pub inference_gpu_busy: f64,
    /// Duration of each small bookkeeping task (select / fasta / compare).
    pub small_task: SimDuration,
}
json_struct!(CostModel {
    mpnn_cores,
    mpnn_gpus,
    mpnn_duration,
    mpnn_gpu_busy,
    msa_cores,
    inference_cores,
    inference_gpus,
    inference_gpu_busy,
    small_task
});

impl CostModel {
    /// The IM-RP cost model: MPNN on GPU, everything pilot-scheduled.
    pub fn imrp() -> CostModel {
        CostModel {
            mpnn_cores: 2,
            mpnn_gpus: 1,
            mpnn_duration: SimDuration::from_mins(6),
            mpnn_gpu_busy: 0.9,
            msa_cores: 6,
            inference_cores: 2,
            inference_gpus: 1,
            inference_gpu_busy: impress_proteins::alphafold::calibration::GPU_BUSY_FRACTION,
            small_task: SimDuration::from_secs(15),
        }
    }

    /// The CONT-V cost model: vanilla scripts, MPNN on CPU.
    pub fn cont_v() -> CostModel {
        CostModel {
            mpnn_gpus: 0,
            mpnn_gpu_busy: 0.0,
            ..Self::imrp()
        }
    }
}

/// Full protocol configuration for one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolConfig {
    /// Design cycles per lineage (paper: `M = 4`).
    pub cycles: u32,
    /// Alternate-candidate retries per cycle before the lineage terminates
    /// (paper: "up to 10 times").
    pub retry_budget: u32,
    /// ProteinMPNN sampling settings (10 sequences, temperature, fixed
    /// positions).
    pub mpnn: MpnnConfig,
    /// AlphaFold settings (models per prediction, MSA mode).
    pub alphafold: AlphaFoldConfig,
    /// Whether Stage 6 adaptive selection is active (IM-RP `true`;
    /// CONT-V `false`).
    pub adaptive: bool,
    /// Whether adaptivity is enforced in the *final* cycle. The paper's
    /// expanded experiment (Fig. 3) disabled it there, producing the
    /// quality dip in iteration 4.
    pub adaptive_final_cycle: bool,
    /// Speculative evaluation width: how many ranked candidates Stage 4
    /// evaluates concurrently per decision round. Acceptance semantics are
    /// unchanged (candidates are still considered strictly in rank order);
    /// widths > 1 prefetch likely retries onto idle resources — the
    /// runtime-level optimization behind IM-RP "evaluating more
    /// trajectories" while keeping devices busy. CONT-V uses 1.
    pub speculation: u32,
    /// Submit speculative alternates at reduced scheduler priority so they
    /// never delay primary (critical-path) tasks when slots are scarce.
    /// Off by default: on the paper's single saturated node, strict
    /// prioritization serializes the retry rounds and *lowers* utilization;
    /// it pays off on larger clusters (see the `ablations` bench).
    pub deprioritize_speculation: bool,
    /// Task cost model.
    pub cost: CostModel,
    /// Master seed; every stochastic choice forks deterministically from it.
    pub seed: u64,
}
json_struct!(ProtocolConfig {
    cycles,
    retry_budget,
    mpnn,
    alphafold,
    adaptive,
    adaptive_final_cycle,
    speculation,
    deprioritize_speculation,
    cost,
    seed
});

impl ProtocolConfig {
    /// The paper's IM-RP configuration.
    pub fn imrp(seed: u64) -> ProtocolConfig {
        ProtocolConfig {
            cycles: 4,
            retry_budget: 10,
            mpnn: MpnnConfig::default(),
            alphafold: AlphaFoldConfig::default(),
            adaptive: true,
            adaptive_final_cycle: true,
            speculation: 3,
            deprioritize_speculation: false,
            cost: CostModel::imrp(),
            seed,
        }
    }

    /// The paper's CONT-V configuration: same stages, no adaptivity, one
    /// (randomly chosen) candidate predicted per cycle with a single model.
    pub fn cont_v(seed: u64) -> ProtocolConfig {
        ProtocolConfig {
            adaptive: false,
            adaptive_final_cycle: false,
            speculation: 1,
            deprioritize_speculation: false,
            alphafold: AlphaFoldConfig {
                num_models: 1,
                msa_mode: MsaMode::Full,
                mode: impress_proteins::alphafold::PredictionMode::Multimer,
            },
            cost: CostModel::cont_v(),
            ..Self::imrp(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imrp_defaults_match_paper() {
        let c = ProtocolConfig::imrp(1);
        assert_eq!(c.cycles, 4);
        assert_eq!(c.retry_budget, 10);
        assert_eq!(c.mpnn.num_sequences, 10);
        assert_eq!(c.alphafold.num_models, 5);
        assert!(c.adaptive);
        assert!(c.adaptive_final_cycle);
        assert_eq!(c.cost.mpnn_gpus, 1);
    }

    #[test]
    fn cont_v_strips_adaptivity_and_gpu_mpnn() {
        let c = ProtocolConfig::cont_v(1);
        assert!(!c.adaptive);
        assert_eq!(c.alphafold.num_models, 1);
        assert_eq!(c.cost.mpnn_gpus, 0);
        assert_eq!(c.cycles, 4, "same cycle count as IM-RP");
        assert_eq!(c.mpnn.num_sequences, 10, "same generation budget");
    }

    #[test]
    fn cost_models_are_cpu_heavy_on_msa() {
        for cm in [CostModel::imrp(), CostModel::cont_v()] {
            assert!(cm.msa_cores > cm.inference_cores);
            assert!(cm.small_task < SimDuration::from_mins(1));
        }
    }
}
