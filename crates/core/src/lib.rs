//! # impress-core
//!
//! The IMPRESS adaptive protein design protocol (§II-C of the paper), built
//! on the `impress-workflow` coordinator, the `impress-pilot` runtime, and
//! the `impress-proteins` surrogates.
//!
//! ## The pipeline (per design lineage)
//!
//! 1. **Stage 1** — ProteinMPNN generates 10 sequences conditioned on the
//!    current structure.
//! 2. **Stage 2** — sequences are sorted by log-likelihood.
//! 3. **Stage 3** — the selected sequence is compiled into a FASTA record.
//! 4. **Stage 4** — AlphaFold predicts the structure: an MSA-construction
//!    task (CPU-bound, hours) followed by an inference task (GPU), ranking
//!    candidate models by pTM.
//! 5. **Stage 5** — quality metrics (pLDDT, pTM, inter-chain pAE) gathered.
//! 6. **Stage 6** — metrics compared with the previous iteration: on
//!    improvement the new model seeds the next cycle; on decline stages 4–5
//!    repeat with the next-ranked sequence, up to 10 alternates, after which
//!    the pipeline terminates.
//! 7. **Stage 6M+7** — the cycle repeats `M` times; final candidates and
//!    statistics are returned.
//!
//! ## The two protocols under comparison
//!
//! * [`protocol::DesignPipeline`] + [`adaptive::ImpressDecision`] implement
//!   **IM-RP**: concurrent single-structure pipelines, adaptive selection,
//!   pruning, and quality-ranked sub-pipeline spawning.
//! * [`control::run_cont_v`] implements **CONT-V**: the same stages run
//!   strictly sequentially, one random (unranked) candidate per cycle, no
//!   comparison, no pruning, no runtime system.
//!
//! [`experiment`] drives both over the simulated Amarel node and returns
//! everything the Table I / Fig. 2–5 harnesses need.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod ablation;
pub mod adaptive;
pub mod campaign;
pub mod config;
pub mod control;
pub mod experiment;
pub mod generator;
pub mod genetic;
pub mod protocol;
pub mod quality;
pub mod results;
pub mod spec;
pub mod stages;
pub mod toolkit;

pub use ablation::{run_ablation, standard_suite, AblationRow};
pub use adaptive::ImpressDecision;
pub use campaign::{export_campaign, load_results, CampaignOutput};
pub use config::{CostModel, ProtocolConfig};
pub use control::run_cont_v;
pub use experiment::{
    imrp_journal, resume_imrp, run_imrp, run_imrp_journaled, ExperimentResult, JournaledRun,
};
pub use generator::{MpnnGenerator, RandomMutagenesis, SequenceGenerator};
pub use protocol::{DesignOutcome, DesignPipeline, IterationRecord};
pub use quality::{IterationSeries, NetDeltas};
pub use results::{Table1Row, TABLE1_HEADER};
pub use spec::{CampaignRun, CampaignSpec};
pub use toolkit::TargetToolkit;
