//! Pluggable sequence generation (Stage 1).
//!
//! "The IMPRESS framework allows any sequence generation method to be
//! plugged into the design pipeline, enabling both LLMs and graph-based
//! models to fully exploit the rich functional information available in
//! protein structures" (§IV). This trait is that plug point: Stage 1 calls
//! whatever [`SequenceGenerator`] the target's toolkit carries.
//!
//! Two implementations ship:
//!
//! * [`MpnnGenerator`] — the default, wrapping the ProteinMPNN surrogate
//!   (backbone-conditioned, log-likelihood-scored).
//! * [`RandomMutagenesis`] — EvoPro's alternative operator (§IV): blind
//!   point mutations with no informative scores, leaving candidate
//!   discrimination entirely to AlphaFold. Useful as a generation-quality
//!   ablation.

use impress_proteins::{MpnnConfig, ScoredSequence, Structure, SurrogateMpnn};
use impress_sim::SimRng;

/// A Stage-1 sequence generation method.
pub trait SequenceGenerator: Send + Sync {
    /// Method name (for reports).
    fn name(&self) -> &str;

    /// Produce `config.num_sequences` candidate receptor sequences
    /// conditioned on `structure`, each with a selection score
    /// (higher = preferred by Stage 2's ranking).
    fn generate(
        &self,
        structure: &Structure,
        config: &MpnnConfig,
        rng: &mut SimRng,
    ) -> Vec<ScoredSequence>;
}

/// The default generator: the ProteinMPNN surrogate.
pub struct MpnnGenerator(pub SurrogateMpnn);

impl SequenceGenerator for MpnnGenerator {
    fn name(&self) -> &str {
        "ProteinMPNN"
    }

    fn generate(
        &self,
        structure: &Structure,
        config: &MpnnConfig,
        rng: &mut SimRng,
    ) -> Vec<ScoredSequence> {
        self.0.sample(structure, config, rng)
    }
}

/// EvoPro-style random mutagenesis: uniform point mutations, uninformative
/// (constant) scores. Respects `fixed_positions`.
pub struct RandomMutagenesis {
    /// Per-position mutation probability (per proposal).
    pub rate: f64,
}

impl Default for RandomMutagenesis {
    fn default() -> Self {
        RandomMutagenesis { rate: 0.05 }
    }
}

impl SequenceGenerator for RandomMutagenesis {
    fn name(&self) -> &str {
        "random-mutagenesis"
    }

    fn generate(
        &self,
        structure: &Structure,
        config: &MpnnConfig,
        rng: &mut SimRng,
    ) -> Vec<ScoredSequence> {
        (0..config.num_sequences)
            .map(|i| {
                let mut prop_rng = rng.fork_idx("random-mut", i as u64);
                let mut seq = structure.complex.receptor.sequence.clone();
                for pos in 0..seq.len() {
                    if config.fixed_positions.contains(&pos) || !prop_rng.chance(self.rate) {
                        continue;
                    }
                    seq.set(pos, *prop_rng.choose(&impress_proteins::amino::ALL));
                }
                ScoredSequence {
                    sequence: seq,
                    // No model, no likelihood: every candidate scores alike,
                    // so Stage 2's ranking is arbitrary and all selection
                    // pressure comes from AlphaFold (EvoPro's regime).
                    log_likelihood: -1.0,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_proteins::datasets::named_pdz_domains;

    fn structure() -> (Structure, impress_proteins::DesignLandscape) {
        let t = named_pdz_domains(42).remove(0);
        (t.start, t.landscape)
    }

    #[test]
    fn mpnn_generator_delegates() {
        let (s, landscape) = structure();
        let g = MpnnGenerator(SurrogateMpnn::new(landscape));
        let out = g.generate(&s, &MpnnConfig::default(), &mut SimRng::from_seed(1));
        assert_eq!(out.len(), 10);
        assert_eq!(g.name(), "ProteinMPNN");
        let distinct: std::collections::HashSet<u64> =
            out.iter().map(|p| p.log_likelihood.to_bits()).collect();
        assert!(distinct.len() > 1, "MPNN scores are informative");
    }

    #[test]
    fn random_mutagenesis_mutates_without_information() {
        let (s, _) = structure();
        let g = RandomMutagenesis { rate: 0.10 };
        let out = g.generate(&s, &MpnnConfig::default(), &mut SimRng::from_seed(2));
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|p| p.log_likelihood == -1.0));
        let parent = &s.complex.receptor.sequence;
        assert!(out.iter().any(|p| parent.hamming(&p.sequence) > 0));
        for p in &out {
            let d = parent.hamming(&p.sequence) as f64 / parent.len() as f64;
            assert!(d < 0.35, "mutation load too high: {d}");
        }
    }

    #[test]
    fn random_mutagenesis_respects_fixed_positions() {
        let (s, _) = structure();
        let g = RandomMutagenesis { rate: 1.0 };
        let fixed = vec![0, 5, 10];
        let cfg = MpnnConfig {
            fixed_positions: fixed.clone(),
            ..MpnnConfig::default()
        };
        let parent = s.complex.receptor.sequence.clone();
        for p in g.generate(&s, &cfg, &mut SimRng::from_seed(3)) {
            for &pos in &fixed {
                assert_eq!(p.sequence.at(pos), parent.at(pos));
            }
        }
    }
}
