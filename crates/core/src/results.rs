//! Paper-shaped result rows: the exact cells of Table I, serializable and
//! printable, so the bench harness and downstream tooling share one format.

use crate::experiment::ExperimentResult;
use impress_json::json_struct;
use impress_sim::stats::relative_improvement_pct;
use std::fmt;

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Approach label (`CONT-V` / `IM-RP`).
    pub approach: String,
    /// Root pipelines.
    pub pipelines: usize,
    /// Spawned sub-pipelines (`None` renders as "N/A").
    pub sub_pipelines: Option<usize>,
    /// Structures handled per root pipeline.
    pub structures_per_pipeline: usize,
    /// Accepted design points.
    pub trajectories: u32,
    /// Mean CPU occupancy, percent.
    pub cpu_pct: f64,
    /// GPU utilization, percent — slot semantics for the pilot-run arm,
    /// hardware semantics for the vanilla arm (see `impress-pilot`'s
    /// profiler docs; this mirrors how the paper's two numbers were
    /// measured).
    pub gpu_pct: f64,
    /// Makespan in hours.
    pub time_h: f64,
    /// Net Δ pTM over the run.
    pub ptm_delta: f64,
    /// Net Δ pLDDT over the run.
    pub plddt_delta: f64,
    /// Net Δ inter-chain pAE over the run.
    pub pae_delta: f64,
}
json_struct!(Table1Row {
    approach,
    pipelines,
    sub_pipelines,
    structures_per_pipeline,
    trajectories,
    cpu_pct,
    gpu_pct,
    time_h,
    ptm_delta,
    plddt_delta,
    pae_delta
});

impl Table1Row {
    /// Build a row from an experiment result. `structures` is the number of
    /// design targets in the run.
    pub fn from_result(result: &ExperimentResult, structures: usize) -> Table1Row {
        let d = result.net_deltas();
        let pilot_run = result.label == "IM-RP";
        Table1Row {
            approach: result.label.clone(),
            pipelines: result.run.root_pipelines,
            sub_pipelines: pilot_run.then_some(result.run.sub_pipelines),
            structures_per_pipeline: structures
                .checked_div(result.run.root_pipelines)
                .unwrap_or(0),
            trajectories: result.trajectories,
            cpu_pct: result.run.cpu_utilization * 100.0,
            gpu_pct: if pilot_run {
                result.run.gpu_slot_utilization * 100.0
            } else {
                result.run.gpu_hardware_utilization * 100.0
            },
            time_h: result.run.makespan.as_hours_f64(),
            ptm_delta: d.ptm,
            plddt_delta: d.plddt,
            pae_delta: d.pae,
        }
    }

    /// Relative improvements of `self` over `baseline`, as percentages in
    /// the order (pTM, pLDDT, pAE) — the parenthesized Table I numbers.
    pub fn improvement_over(&self, baseline: &Table1Row) -> (f64, f64, f64) {
        (
            relative_improvement_pct(baseline.ptm_delta, self.ptm_delta),
            relative_improvement_pct(baseline.plddt_delta, self.plddt_delta),
            // pAE is lower-better; improvement = reduction relative to the
            // baseline's (negative) delta magnitude.
            relative_improvement_pct(-baseline.pae_delta, -self.pae_delta),
        )
    }
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} | {:>4} | {:>6} | {:>13} | {:>12} | {:>6.1}% | {:>6.1}% | {:>8.1} | {:>7.2} | {:>8.1} | {:>7.2}",
            self.approach,
            self.pipelines,
            self.sub_pipelines
                .map(|s| s.to_string())
                .unwrap_or_else(|| "N/A".into()),
            self.structures_per_pipeline,
            self.trajectories,
            self.cpu_pct,
            self.gpu_pct,
            self.time_h,
            self.ptm_delta,
            self.plddt_delta,
            self.pae_delta,
        )
    }
}

/// Header matching [`Table1Row`]'s `Display` columns.
pub const TABLE1_HEADER: &str = "Approach |  #PL | #SubPL | #Structures/PL | Trajectories |   CPU %  |  GPU %  | Time (h) | ΔpTM | ΔpLDDT | ΔpAE";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::run_cont_v_experiment;
    use crate::ProtocolConfig;
    use impress_proteins::datasets::named_pdz_domains;

    #[test]
    fn row_from_cont_v_result() {
        let targets: Vec<_> = named_pdz_domains(42).into_iter().take(2).collect();
        let result = run_cont_v_experiment(&targets, ProtocolConfig::cont_v(1));
        let row = Table1Row::from_result(&result, 2);
        assert_eq!(row.approach, "CONT-V");
        assert_eq!(row.pipelines, 1);
        assert_eq!(row.sub_pipelines, None);
        assert_eq!(row.structures_per_pipeline, 2);
        assert_eq!(row.trajectories, 8);
        let s = row.to_string();
        assert!(s.contains("N/A"), "{s}");
    }

    #[test]
    fn improvements_match_paper_arithmetic() {
        let base = Table1Row {
            approach: "CONT-V".into(),
            pipelines: 1,
            sub_pipelines: None,
            structures_per_pipeline: 4,
            trajectories: 16,
            cpu_pct: 18.3,
            gpu_pct: 1.0,
            time_h: 27.7,
            ptm_delta: 0.28,
            plddt_delta: 5.8,
            pae_delta: -6.7,
        };
        let ours = Table1Row {
            approach: "IM-RP".into(),
            ptm_delta: 0.32,
            plddt_delta: 7.7,
            pae_delta: -6.61,
            sub_pipelines: Some(7),
            ..base.clone()
        };
        let (ptm, plddt, pae) = ours.improvement_over(&base);
        assert!((ptm - 14.29).abs() < 0.1, "{ptm}");
        assert!((plddt - 32.76).abs() < 0.1, "{plddt}");
        assert!((pae + 1.34).abs() < 0.1, "{pae}"); // paper: +1.3% (sign: less reduction)
    }
}
