//! The coordinator-level adaptive policy (IM-RP's decision engine).
//!
//! "The coordinator maintains a global perspective on each pipeline's
//! results and the quality of the resulting sequences, which are later used
//! to determine if there is a need to re-process 'low-quality' sequences
//! with a new pipeline" (§II-B). This engine implements that policy:
//!
//! * every completed lineage whose final score trails the best score seen
//!   so far is re-processed by a refinement **sub-pipeline** continuing the
//!   lineage for a few more cycles;
//! * lineages that terminated early (retry budget exhausted) are
//!   re-processed with a higher sampling temperature — exploration instead
//!   of refinement;
//! * a sub-pipeline budget bounds the total extra work.

use crate::config::ProtocolConfig;
use crate::protocol::{DesignOutcome, DesignPipeline};
use crate::toolkit::TargetToolkit;
use impress_proteins::Structure;
use impress_workflow::decision::Spawn;
use impress_workflow::{CoordinatorView, DecisionEngine, PipelineId};
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of the sub-pipeline policy.
#[derive(Debug, Clone, Copy)]
pub struct AdaptivePolicy {
    /// Maximum sub-pipelines to spawn across the run.
    pub sub_budget: usize,
    /// Cycles each refinement sub-pipeline runs.
    pub sub_cycles: u32,
    /// Score margin below the best-seen score that triggers re-processing.
    pub margin: f64,
    /// Temperature multiplier for exploration respawns of terminated
    /// lineages.
    pub exploration_temperature: f64,
    /// Speculation width for sub-pipelines ("explore alternative
    /// conformations", §II-D): refinement runs evaluate more ranked
    /// candidates concurrently than root pipelines, soaking up the
    /// resources that free as roots drain.
    pub sub_speculation: u32,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            sub_budget: 7,
            sub_cycles: 1,
            margin: 0.003,
            exploration_temperature: 1.5,
            sub_speculation: 4,
        }
    }
}

/// The IM-RP decision engine.
pub struct ImpressDecision {
    base: ProtocolConfig,
    policy: AdaptivePolicy,
    toolkits: HashMap<String, Arc<TargetToolkit>>,
    best_score: f64,
    spawned: usize,
    /// Completed outcomes not yet re-processed, with their pipeline ids.
    completed: Vec<(PipelineId, DesignOutcome)>,
    /// Labels already used as a sub-pipeline parent.
    processed: std::collections::HashSet<String>,
}

impl ImpressDecision {
    /// An engine spawning sub-pipelines with `base`-derived configurations
    /// over the given toolkits (keyed by target name).
    pub fn new(
        base: ProtocolConfig,
        policy: AdaptivePolicy,
        toolkits: impl IntoIterator<Item = Arc<TargetToolkit>>,
    ) -> Self {
        ImpressDecision {
            base,
            policy,
            toolkits: toolkits
                .into_iter()
                .map(|tk| (tk.name.clone(), tk))
                .collect(),
            best_score: f64::NEG_INFINITY,
            spawned: 0,
            completed: Vec::new(),
            processed: std::collections::HashSet::new(),
        }
    }

    /// Sub-pipelines spawned so far.
    pub fn spawned(&self) -> usize {
        self.spawned
    }

    fn spawn_for(
        &mut self,
        outcome: &DesignOutcome,
        explore: bool,
    ) -> Option<Spawn<DesignOutcome>> {
        if self.spawned >= self.policy.sub_budget {
            return None;
        }
        let tk = self.toolkits.get(&outcome.target)?.clone();
        let mut config = self.base.clone();
        config.cycles = self.policy.sub_cycles;
        config.speculation = self.policy.sub_speculation;
        if explore {
            config.mpnn.temperature *= self.policy.exploration_temperature;
        }
        let structure = Structure::refined(
            tk.start
                .complex
                .with_receptor_sequence(outcome.final_receptor.clone()),
            outcome.final_backbone_quality,
            outcome.iterations.last().map(|r| r.iteration).unwrap_or(0),
        );
        let sub = DesignPipeline::continuation(tk, config, outcome, structure, self.spawned as u64);
        self.spawned += 1;
        Some(Spawn::root(Box::new(sub))) // parent id attached by caller
    }
}

impl DecisionEngine<DesignOutcome> for ImpressDecision {
    fn on_pipeline_complete(
        &mut self,
        id: PipelineId,
        outcome: &DesignOutcome,
        _view: &CoordinatorView<'_>,
    ) -> Vec<Spawn<DesignOutcome>> {
        let score = outcome
            .final_report()
            .map(|r| r.score())
            .unwrap_or(f64::NEG_INFINITY);
        let prev_best = self.best_score;
        self.best_score = self.best_score.max(score);
        self.completed.push((id, outcome.clone()));
        let explore = outcome.terminated_early;
        // Eagerly re-process lineages that trail the best seen so far
        // (refinement) and lineages that terminated early (exploration);
        // anything missed here is swept up by `on_all_idle`.
        let trails_best = score < prev_best - self.policy.margin;
        if !trails_best && !explore {
            return Vec::new();
        }
        self.processed.insert(outcome.label.clone());
        match self.spawn_for(outcome, explore) {
            Some(mut spawn) => {
                spawn.parent = Some(id);
                vec![spawn]
            }
            None => Vec::new(),
        }
    }

    fn on_pipeline_aborted(
        &mut self,
        id: PipelineId,
        _reason: &str,
        view: &CoordinatorView<'_>,
    ) -> Vec<Spawn<DesignOutcome>> {
        // A crashed lineage is restarted from its target's starting
        // structure with exploration settings, within the sub budget.
        if self.spawned >= self.policy.sub_budget {
            return Vec::new();
        }
        let name = view.registry().get(id).name.clone();
        let target = name.split('/').next().unwrap_or(&name);
        let Some(tk) = self.toolkits.get(target).cloned() else {
            return Vec::new();
        };
        let mut config = self.base.clone();
        config.mpnn.temperature *= self.policy.exploration_temperature;
        let sub = DesignPipeline::restart(tk, config, self.spawned as u64);
        self.spawned += 1;
        vec![Spawn::sub_of(id, Box::new(sub))]
    }

    fn on_all_idle(&mut self, _view: &CoordinatorView<'_>) -> Vec<Spawn<DesignOutcome>> {
        // Global sweep: the workload drained, so every completed lineage
        // that still trails the best and has not been refined yet is
        // re-processed *now*, as one concurrent wave — "offloading the newly
        // created pipelines … to the idle resources" (§III-B).
        let mut eligible: Vec<(PipelineId, DesignOutcome)> = self
            .completed
            .iter()
            .filter(|(_, o)| !self.processed.contains(&o.label))
            .filter(|(_, o)| {
                o.final_report()
                    .map(|r| r.score() < self.best_score - self.policy.margin)
                    .unwrap_or(true)
            })
            .map(|(id, o)| (*id, o.clone()))
            .collect();
        // Worst first, so the budget goes to the neediest lineages.
        eligible.sort_by(|(_, a), (_, b)| {
            let sa = a
                .final_report()
                .map(|r| r.score())
                .unwrap_or(f64::NEG_INFINITY);
            let sb = b
                .final_report()
                .map(|r| r.score())
                .unwrap_or(f64::NEG_INFINITY);
            sa.partial_cmp(&sb).expect("finite scores")
        });
        let mut spawns = Vec::new();
        for (id, outcome) in eligible {
            if self.spawned >= self.policy.sub_budget {
                break;
            }
            self.processed.insert(outcome.label.clone());
            let explore = outcome.terminated_early;
            if let Some(mut spawn) = self.spawn_for(&outcome, explore) {
                spawn.parent = Some(id);
                spawns.push(spawn);
            }
        }
        spawns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_pilot::backend::SimulatedBackend;
    use impress_pilot::PilotConfig;
    use impress_proteins::datasets::named_pdz_domains;
    use impress_workflow::Coordinator;

    fn toolkits() -> Vec<Arc<TargetToolkit>> {
        named_pdz_domains(42)
            .iter()
            .map(|t| TargetToolkit::for_target(t, 7))
            .collect()
    }

    #[test]
    fn sub_pipelines_are_spawned_and_bounded() {
        let config = ProtocolConfig::imrp(3);
        let tks = toolkits();
        let policy = AdaptivePolicy::default();
        let decision = ImpressDecision::new(config.clone(), policy, tks.clone());
        let backend = SimulatedBackend::new(PilotConfig::with_seed(3));
        let mut c = Coordinator::new(backend, decision);
        for (i, tk) in tks.iter().enumerate() {
            c.add_pipeline(Box::new(DesignPipeline::root(
                tk.clone(),
                config.clone(),
                i as u64,
            )));
        }
        let report = c.run();
        assert_eq!(report.root_pipelines, 4);
        assert!(
            report.sub_pipelines >= 1,
            "quality-ranked policy must re-process laggards"
        );
        assert!(
            report.sub_pipelines <= policy.sub_budget,
            "budget exceeded: {}",
            report.sub_pipelines
        );
        // Every sub outcome continues its parent's iteration numbering.
        for (id, outcome) in c.outcomes() {
            if c.registry().get(*id).parent.is_some() {
                assert!(outcome.start_iteration > 1, "{}", outcome.label);
            }
        }
    }

    #[test]
    fn total_trajectories_exceed_root_only_count() {
        let config = ProtocolConfig::imrp(5);
        let tks = toolkits();
        let decision = ImpressDecision::new(config.clone(), AdaptivePolicy::default(), tks.clone());
        let backend = SimulatedBackend::new(PilotConfig::with_seed(5));
        let mut c = Coordinator::new(backend, decision);
        for (i, tk) in tks.iter().enumerate() {
            c.add_pipeline(Box::new(DesignPipeline::root(
                tk.clone(),
                config.clone(),
                i as u64,
            )));
        }
        c.run();
        let trajectories: u32 = c.outcomes().iter().map(|(_, o)| o.trajectories()).sum();
        assert!(
            trajectories > 12,
            "roots alone give up to 16; adaptivity must add more or roots must mostly finish (got {trajectories})"
        );
    }

    #[test]
    fn budget_zero_means_no_subs() {
        let config = ProtocolConfig::imrp(7);
        let tks = toolkits();
        let decision = ImpressDecision::new(
            config.clone(),
            AdaptivePolicy {
                sub_budget: 0,
                ..AdaptivePolicy::default()
            },
            tks.clone(),
        );
        let backend = SimulatedBackend::new(PilotConfig::with_seed(7));
        let mut c = Coordinator::new(backend, decision);
        for (i, tk) in tks.iter().enumerate() {
            c.add_pipeline(Box::new(DesignPipeline::root(
                tk.clone(),
                config.clone(),
                i as u64,
            )));
        }
        let report = c.run();
        assert_eq!(report.sub_pipelines, 0);
    }
}
