//! Programmatic ablation studies over the protocol's design choices.
//!
//! The Criterion `ablations` bench measures replay cost; this module is the
//! typed API behind it: run a named set of protocol variants on the same
//! targets and collect comparable quality/cost rows. Used by the bench, the
//! integration tests, and anyone extending the protocol who wants a quick
//! "did my change help" table.

use crate::adaptive::AdaptivePolicy;
use crate::config::ProtocolConfig;
use crate::experiment::{run_imrp, ExperimentResult};
use impress_proteins::datasets::DesignTarget;
use impress_json::json_struct;
use impress_sim::Summary;
use std::fmt;

/// A labelled mutation of the base protocol configuration.
pub type Variant<'a> = (&'a str, Box<dyn Fn(&mut ProtocolConfig)>);

/// One ablation variant's outcome.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label (e.g. `"retry_budget=5"`).
    pub variant: String,
    /// Median final design score across lineages (0–1; see
    /// `ConfidenceReport::score`).
    pub median_final_score: f64,
    /// Total AlphaFold evaluations executed.
    pub evaluations: u32,
    /// Virtual makespan in hours.
    pub makespan_hours: f64,
    /// Mean CPU occupancy (0–1).
    pub cpu: f64,
    /// Mean GPU slot occupancy (0–1).
    pub gpu_slot: f64,
    /// Lineages that terminated early.
    pub early_terminations: usize,
}
json_struct!(AblationRow {
    variant,
    median_final_score,
    evaluations,
    makespan_hours,
    cpu,
    gpu_slot,
    early_terminations
});

impl AblationRow {
    /// Summarize one experiment result under a label.
    pub fn from_result(variant: impl Into<String>, result: &ExperimentResult) -> AblationRow {
        let scores: Vec<f64> = result
            .outcomes
            .iter()
            .filter_map(|o| o.final_report().map(|r| r.score()))
            .collect();
        AblationRow {
            variant: variant.into(),
            median_final_score: Summary::of(&scores).median,
            evaluations: result.evaluations,
            makespan_hours: result.run.makespan.as_hours_f64(),
            cpu: result.run.cpu_utilization,
            gpu_slot: result.run.gpu_slot_utilization,
            early_terminations: result
                .outcomes
                .iter()
                .filter(|o| o.terminated_early)
                .count(),
        }
    }
}

impl fmt::Display for AblationRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} score {:.4} | {:>4} evals | {:>6.1} h | CPU {:>4.0}% | GPU {:>4.0}% | {} early",
            self.variant,
            self.median_final_score,
            self.evaluations,
            self.makespan_hours,
            self.cpu * 100.0,
            self.gpu_slot * 100.0,
            self.early_terminations
        )
    }
}

/// Run a set of labelled protocol variants on the same targets with the
/// same adaptive policy; returns one row per variant, in input order.
pub fn run_ablation(
    targets: &[DesignTarget],
    base: &ProtocolConfig,
    policy: AdaptivePolicy,
    variants: &[Variant<'_>],
) -> Vec<AblationRow> {
    variants
        .iter()
        .map(|(label, mutate)| {
            let mut config = base.clone();
            mutate(&mut config);
            let result = run_imrp(targets, config, policy);
            AblationRow::from_result(*label, &result)
        })
        .collect()
}

/// The standard ablation suite from DESIGN.md: adaptivity, retry budget,
/// MSA mode, speculation width.
pub fn standard_suite(targets: &[DesignTarget], seed: u64) -> Vec<AblationRow> {
    use impress_proteins::msa::MsaMode;
    let base = ProtocolConfig::imrp(seed);
    let variants: Vec<Variant<'_>> = vec![
        ("baseline (IM-RP defaults)", Box::new(|_| {})),
        ("adaptive=off", Box::new(|c| c.adaptive = false)),
        ("retry_budget=1", Box::new(|c| c.retry_budget = 1)),
        ("retry_budget=5", Box::new(|c| c.retry_budget = 5)),
        (
            "msa=single-sequence",
            Box::new(|c| c.alphafold.msa_mode = MsaMode::SingleSequence),
        ),
        ("speculation=1", Box::new(|c| c.speculation = 1)),
        ("speculation=4", Box::new(|c| c.speculation = 4)),
        (
            "deprioritized-speculation",
            Box::new(|c| c.deprioritize_speculation = true),
        ),
    ];
    run_ablation(targets, &base, AdaptivePolicy::default(), &variants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_proteins::datasets::named_pdz_domains;

    #[test]
    fn standard_suite_produces_ordered_rows() {
        let targets: Vec<_> = named_pdz_domains(11).into_iter().take(2).collect();
        let rows = standard_suite(&targets, 11);
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].variant, "baseline (IM-RP defaults)");
        for row in &rows {
            assert!(row.median_final_score > 0.0 && row.median_final_score <= 1.0);
            assert!(row.makespan_hours > 0.0);
            assert!(!row.to_string().is_empty());
        }
    }

    #[test]
    fn adaptivity_off_scores_below_baseline() {
        let targets: Vec<_> = named_pdz_domains(13).into_iter().take(3).collect();
        let rows = standard_suite(&targets, 13);
        let score = |label: &str| {
            rows.iter()
                .find(|r| r.variant.starts_with(label))
                .unwrap()
                .median_final_score
        };
        assert!(
            score("baseline") > score("adaptive=off"),
            "adaptive selection must help: {} vs {}",
            score("baseline"),
            score("adaptive=off")
        );
    }

    #[test]
    fn single_sequence_mode_is_much_faster_in_virtual_time() {
        let targets: Vec<_> = named_pdz_domains(17).into_iter().take(2).collect();
        let rows = standard_suite(&targets, 17);
        let hours = |label: &str| {
            rows.iter()
                .find(|r| r.variant.starts_with(label))
                .unwrap()
                .makespan_hours
        };
        // Not a full collapse: the noisier single-sequence metrics trigger
        // many more retries, so GPU inference hours partially replace the
        // saved CPU MSA hours — the same accuracy/throughput tension the
        // paper raises about EvoPro (§IV).
        assert!(
            hours("msa=single-sequence") < hours("baseline") / 2.0,
            "skipping the MSA must still shorten the makespan substantially: {} vs {}",
            hours("msa=single-sequence"),
            hours("baseline")
        );
    }

    #[test]
    fn wider_speculation_never_reduces_evaluations() {
        let targets: Vec<_> = named_pdz_domains(19).into_iter().take(2).collect();
        let rows = standard_suite(&targets, 19);
        let evals = |label: &str| {
            rows.iter()
                .find(|r| r.variant.starts_with(label))
                .unwrap()
                .evaluations
        };
        assert!(evals("speculation=4") >= evals("speculation=1"));
    }
}
