//! CONT-V: the non-adaptive sequential control (§III-A).
//!
//! "We also prepared a control pipeline (CONT-V), which consists of all the
//! IM-RP stages but lacks adaptive decision-making between cycles. … Ten
//! sequences for each complex were generated with ProteinMPNN … One was
//! chosen randomly to have its structure predicted with AlphaFold. The new
//! structure was fed into ProteinMPNN for the next cycle. Performance was
//! not compared between iterations, and trajectories were not pruned."
//!
//! CONT-V does not use the pilot's concurrency: it submits exactly one task
//! at a time and waits for it — a vanilla sequential script. That is what
//! produces Fig. 4's idle-resource profile.

use crate::config::ProtocolConfig;
use crate::protocol::{DesignOutcome, IterationRecord};
use crate::stages::{
    stage1_mpnn, stage2_3_select, stage4_inference, stage4_msa, stage5_6_assess, SelectOutput,
};
use crate::toolkit::TargetToolkit;
use impress_pilot::{ExecutionBackend, Session, TaskDescription, TaskError};
use impress_proteins::msa::Msa;
use impress_proteins::{Prediction, ScoredSequence};
use impress_sim::SimRng;
use std::sync::Arc;

/// Run one task and wait for it — the sequential execution model. A task
/// that fails terminally (retry budget exhausted under fault injection)
/// surfaces as `Err` instead of panicking, so the lineage can abort cleanly.
fn run_blocking<B: ExecutionBackend, T: 'static>(
    session: &mut Session<B>,
    desc: TaskDescription,
) -> Result<T, TaskError> {
    let id = session.submit(desc);
    loop {
        let c = session.wait_next().expect("submitted task must complete");
        if c.task == id {
            return c.try_output::<T>();
        }
    }
}

/// Run the CONT-V protocol for `toolkits` over `session`, strictly
/// sequentially. Returns one outcome per structure.
pub fn run_cont_v<B: ExecutionBackend>(
    session: &mut Session<B>,
    toolkits: &[Arc<TargetToolkit>],
    config: &ProtocolConfig,
) -> Vec<DesignOutcome> {
    assert!(
        !config.adaptive,
        "CONT-V is the non-adaptive control; use ProtocolConfig::cont_v"
    );
    let root_rng = SimRng::from_seed(config.seed).fork("cont-v");
    toolkits
        .iter()
        .map(|tk| {
            let rng = root_rng.fork(&tk.name);
            run_lineage(session, tk, config, rng)
        })
        .collect()
}

fn run_lineage<B: ExecutionBackend>(
    session: &mut Session<B>,
    tk: &Arc<TargetToolkit>,
    config: &ProtocolConfig,
    rng: SimRng,
) -> DesignOutcome {
    let mut current = tk.start.clone();
    let baseline_report = tk.baseline_report();
    let mut records = Vec::new();
    let mut aborted = false;
    'cycles: for cycle in 1..=config.cycles {
        // A vanilla sequential script dies with its first unrecoverable
        // task: record the lineage as terminated early and keep whatever
        // cycles already finished.
        macro_rules! try_stage {
            ($expr:expr) => {
                match $expr {
                    Ok(v) => v,
                    // Fault outcomes (budget-exhausted retries, quarantine
                    // verdicts) are legal lineage terminations. A work
                    // panic or a cancellation nobody issued is a bug in
                    // the protocol itself — surface it instead of filing
                    // it under "aborted". Exhaustive on purpose: a new
                    // error variant must pick a side here.
                    Err(
                        TaskError::TimedOut { .. }
                        | TaskError::Injected
                        | TaskError::NodeCrashed { .. }
                        | TaskError::LeaseExpired { .. }
                        | TaskError::Poisoned { .. }
                        | TaskError::ShapeCircuitOpen { .. },
                    ) => {
                        aborted = true;
                        break 'cycles;
                    }
                    Err(e @ (TaskError::Canceled | TaskError::WorkPanicked(_))) => {
                        panic!("CONT-V stage died on a non-fault error: {e}")
                    }
                }
            };
        }
        // Stage 1: generate.
        let proposals: Vec<ScoredSequence> = try_stage!(run_blocking(
            session,
            stage1_mpnn(
                tk,
                current.clone(),
                config.mpnn.clone(),
                &config.cost,
                rng.fork_idx("mpnn", cycle as u64),
            ),
        ));
        // Stages 2+3: random (unranked) choice, compiled to FASTA.
        let selected: SelectOutput = try_stage!(run_blocking(
            session,
            stage2_3_select(
                tk,
                proposals,
                false,
                &config.cost,
                rng.fork_idx("select", cycle as u64),
            ),
        ));
        let candidate = selected.ordered[0].sequence.clone();
        // Stage 4: MSA then inference.
        let msa: Msa = try_stage!(run_blocking(
            session,
            stage4_msa(
                tk,
                candidate.clone(),
                config.alphafold.msa_mode,
                &config.cost,
                rng.fork_idx("msa", cycle as u64),
            ),
        ));
        let prediction: Prediction = try_stage!(run_blocking(
            session,
            stage4_inference(
                tk,
                candidate,
                msa,
                config.alphafold,
                cycle,
                &config.cost,
                rng.fork_idx("fold", cycle as u64),
            ),
        ));
        // Stages 5+6: metrics gathered; no comparison, no pruning.
        let prediction: Prediction =
            try_stage!(run_blocking(session, stage5_6_assess(prediction, &config.cost)));
        let truth = tk
            .landscape
            .fitness(&prediction.structure.complex.receptor.sequence);
        records.push(IterationRecord {
            iteration: cycle,
            report: prediction.report,
            true_quality: truth.quality,
            bind_quality: truth.bind_quality,
            evaluations: 1,
            accepted_rank: 0,
        });
        current = prediction.structure;
    }
    let completed = records.len() as u32;
    DesignOutcome {
        target: tk.name.clone(),
        label: format!("{}/cont-v", tk.name),
        iterations: records,
        final_receptor: current.complex.receptor.sequence.clone(),
        final_backbone_quality: current.backbone_quality,
        total_evaluations: completed,
        terminated_early: aborted,
        baseline_report,
        start_iteration: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_pilot::backend::SimulatedBackend;
    use impress_pilot::PilotConfig;
    use impress_proteins::datasets::named_pdz_domains;

    fn toolkits(n: usize) -> Vec<Arc<TargetToolkit>> {
        named_pdz_domains(42)
            .iter()
            .take(n)
            .map(|t| TargetToolkit::for_target(t, 7))
            .collect()
    }

    #[test]
    fn cont_v_produces_four_iterations_per_structure() {
        let config = ProtocolConfig::cont_v(1);
        let mut session = Session::new(SimulatedBackend::new(PilotConfig::with_seed(1)));
        let outcomes = run_cont_v(&mut session, &toolkits(2), &config);
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert_eq!(o.iterations.len(), 4);
            assert_eq!(o.total_evaluations, 4);
            assert!(!o.terminated_early);
        }
    }

    #[test]
    fn cont_v_is_strictly_sequential() {
        // With one task in flight at a time, CPU occupancy can never exceed
        // the largest single-task request (6 MSA cores of 28 ≈ 21%).
        let config = ProtocolConfig::cont_v(2);
        let mut session = Session::new(SimulatedBackend::new(PilotConfig::with_seed(2)));
        let _ = run_cont_v(&mut session, &toolkits(1), &config);
        let r = session.observe().utilization().clone();
        assert!(
            r.cpu < 0.25,
            "sequential execution must leave CPUs idle, got {}",
            r.cpu
        );
        assert!(
            r.gpu_hardware < 0.05,
            "vanilla AF2 barely touches the GPUs, got {}",
            r.gpu_hardware
        );
    }

    #[test]
    #[should_panic(expected = "non-adaptive control")]
    fn adaptive_config_is_rejected() {
        let config = ProtocolConfig::imrp(1);
        let mut session = Session::new(SimulatedBackend::new(PilotConfig::with_seed(1)));
        let _ = run_cont_v(&mut session, &toolkits(1), &config);
    }

    #[test]
    fn cont_v_is_deterministic() {
        let run = |seed: u64| {
            let config = ProtocolConfig::cont_v(seed);
            let mut session = Session::new(SimulatedBackend::new(PilotConfig::with_seed(seed)));
            run_cont_v(&mut session, &toolkits(1), &config)
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a[0].final_receptor, b[0].final_receptor);
        assert_eq!(a[0].iterations, b[0].iterations);
    }
}
