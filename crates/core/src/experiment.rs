//! Experiment drivers: run IM-RP and CONT-V end-to-end on the simulated
//! Amarel node and package everything the paper's tables and figures need.

use crate::adaptive::{AdaptivePolicy, ImpressDecision};
use crate::config::ProtocolConfig;
use crate::control::run_cont_v;
use crate::protocol::{DesignOutcome, DesignPipeline};
use crate::quality::{IterationSeries, NetDeltas};
use crate::toolkit::TargetToolkit;
use impress_pilot::backend::SimulatedBackend;
use impress_pilot::{FaultConfig, FaultPlan, PilotConfig, RetryPolicy, Session};
use impress_proteins::datasets::DesignTarget;
use impress_proteins::MetricKind;
use impress_sim::SimDuration;
use impress_json::json_struct;
use impress_workflow::{Coordinator, RunReport};
use std::sync::Arc;

/// The complete result of one experiment arm.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Arm label (`"IM-RP"` or `"CONT-V"`).
    pub label: String,
    /// All lineage outcomes (roots then sub-pipelines, completion order).
    pub outcomes: Vec<DesignOutcome>,
    /// Computational run report.
    pub run: RunReport,
    /// Σ accepted design points across lineages (Table I "Trajectories").
    pub trajectories: u32,
    /// Σ AlphaFold evaluations (accepted + declined candidates).
    pub evaluations: u32,
    /// Utilization time series for Figs. 4–5 (bin = 10 virtual minutes):
    /// CPU occupancy per bin.
    pub cpu_series: Vec<f64>,
    /// GPU slot occupancy per bin.
    pub gpu_slot_series: Vec<f64>,
    /// GPU hardware-busy fraction per bin.
    pub gpu_hw_series: Vec<f64>,
}
json_struct!(ExperimentResult {
    label,
    outcomes,
    run,
    trajectories,
    evaluations,
    cpu_series,
    gpu_slot_series,
    gpu_hw_series
});

/// Time-series bin width used for the utilization figures.
pub const SERIES_BIN: SimDuration = SimDuration::from_mins(10);

impl ExperimentResult {
    /// Per-iteration series for one metric (a Fig. 2/3 panel).
    pub fn series(&self, metric: MetricKind) -> IterationSeries {
        IterationSeries::build(&self.outcomes, metric)
    }

    /// Net metric deltas (Table I science columns).
    pub fn net_deltas(&self) -> NetDeltas {
        NetDeltas::build(&self.outcomes)
    }
}

fn toolkits(targets: &[DesignTarget], seed: u64) -> Vec<Arc<TargetToolkit>> {
    // One shared MSA-database identity per experiment, like one filesystem
    // copy of the genetic databases on the real cluster.
    targets
        .iter()
        .map(|t| TargetToolkit::for_target(t, seed ^ 0xdb))
        .collect()
}

/// Run the adaptive IM-RP arm: concurrent pipelines over the pilot
/// coordinator with the quality-ranked sub-pipeline policy, on the paper's
/// single Amarel node.
pub fn run_imrp(
    targets: &[DesignTarget],
    config: ProtocolConfig,
    policy: AdaptivePolicy,
) -> ExperimentResult {
    let pilot = PilotConfig::with_seed(config.seed);
    run_imrp_on(targets, config, policy, pilot)
}

/// Run IM-RP on an arbitrary pilot configuration (e.g. a multi-node
/// cluster for scaling studies).
pub fn run_imrp_on(
    targets: &[DesignTarget],
    config: ProtocolConfig,
    policy: AdaptivePolicy,
    pilot: PilotConfig,
) -> ExperimentResult {
    run_imrp_with_backend(targets, config, policy, SimulatedBackend::new(pilot))
}

/// Run IM-RP under an injected fault environment: the same protocol, but
/// the pilot realizes the given fault plan (transient failures, hangs,
/// node crash/recover windows) and retry policy. With
/// [`FaultConfig::none`] and [`RetryPolicy::none`] this is bit-identical
/// to [`run_imrp_on`].
pub fn run_imrp_resilient(
    targets: &[DesignTarget],
    config: ProtocolConfig,
    policy: AdaptivePolicy,
    pilot: PilotConfig,
    faults: FaultConfig,
    retry: RetryPolicy,
) -> ExperimentResult {
    let plan = FaultPlan::new(faults, pilot.seed);
    run_imrp_with_backend(
        targets,
        config,
        policy,
        SimulatedBackend::with_faults(pilot, plan, retry),
    )
}

fn run_imrp_with_backend(
    targets: &[DesignTarget],
    config: ProtocolConfig,
    policy: AdaptivePolicy,
    backend: SimulatedBackend,
) -> ExperimentResult {
    // `config.adaptive == false` is allowed here: it gives the
    // concurrent-but-non-selective ablation variant (pipelines still run
    // under the coordinator, but Stage 6 accepts unconditionally). The
    // paper's CONT-V additionally removes concurrency — use
    // `run_cont_v_experiment` for that arm.
    let tks = toolkits(targets, config.seed);
    let decision = ImpressDecision::new(config.clone(), policy, tks.clone());
    let mut coordinator = Coordinator::new(backend, decision);
    for (i, tk) in tks.iter().enumerate() {
        coordinator.add_pipeline(Box::new(DesignPipeline::root(
            tk.clone(),
            config.clone(),
            i as u64,
        )));
    }
    let run = coordinator.run();
    let backend = coordinator.session().backend();
    let cpu_series = backend.cpu_series(SERIES_BIN);
    let gpu_slot_series = backend.gpu_slot_series(SERIES_BIN);
    let gpu_hw_series = backend.gpu_hw_series(SERIES_BIN);
    let outcomes: Vec<DesignOutcome> = coordinator
        .outcomes()
        .iter()
        .map(|(_, o)| o.clone())
        .collect();
    package(
        "IM-RP",
        outcomes,
        run,
        cpu_series,
        gpu_slot_series,
        gpu_hw_series,
    )
}

/// Run the sequential CONT-V arm on its own simulated node.
pub fn run_cont_v_experiment(targets: &[DesignTarget], config: ProtocolConfig) -> ExperimentResult {
    let backend = SimulatedBackend::new(PilotConfig::with_seed(config.seed));
    run_cont_v_with_backend(targets, config, backend)
}

/// Run CONT-V under an injected fault environment. A lineage whose task
/// exhausts the retry budget terminates early (a vanilla sequential script
/// dies with its first unrecoverable task) and is counted as aborted.
pub fn run_cont_v_resilient(
    targets: &[DesignTarget],
    config: ProtocolConfig,
    pilot: PilotConfig,
    faults: FaultConfig,
    retry: RetryPolicy,
) -> ExperimentResult {
    let plan = FaultPlan::new(faults, pilot.seed);
    let backend = SimulatedBackend::with_faults(pilot, plan, retry);
    run_cont_v_with_backend(targets, config, backend)
}

fn run_cont_v_with_backend(
    targets: &[DesignTarget],
    config: ProtocolConfig,
    backend: SimulatedBackend,
) -> ExperimentResult {
    assert!(!config.adaptive, "CONT-V is the non-adaptive arm");
    let tks = toolkits(targets, config.seed);
    let mut session = Session::new(backend);
    let outcomes = run_cont_v(&mut session, &tks, &config);
    let backend = session.backend();
    let cpu_series = backend.cpu_series(SERIES_BIN);
    let gpu_slot_series = backend.gpu_slot_series(SERIES_BIN);
    let gpu_hw_series = backend.gpu_hw_series(SERIES_BIN);
    // CONT-V has no coordinator; build the equivalent report directly.
    let registry = {
        let mut r = impress_workflow::Registry::new();
        let id = r.register("cont-v".into(), None, impress_sim::SimTime::ZERO);
        r.note_stage_submitted(id, session.utilization().tasks);
        r
    };
    let aborted = outcomes.iter().filter(|o| o.terminated_early).count();
    let run = RunReport::build(
        &registry,
        session.utilization(),
        session.phase_breakdown(),
        session.now(),
        aborted,
    );
    package(
        "CONT-V",
        outcomes,
        run,
        cpu_series,
        gpu_slot_series,
        gpu_hw_series,
    )
}

fn package(
    label: &str,
    outcomes: Vec<DesignOutcome>,
    run: RunReport,
    cpu_series: Vec<f64>,
    gpu_slot_series: Vec<f64>,
    gpu_hw_series: Vec<f64>,
) -> ExperimentResult {
    let trajectories = outcomes.iter().map(|o| o.trajectories()).sum();
    let evaluations = outcomes.iter().map(|o| o.total_evaluations).sum();
    ExperimentResult {
        label: label.to_string(),
        outcomes,
        run,
        trajectories,
        evaluations,
        cpu_series,
        gpu_slot_series,
        gpu_hw_series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_proteins::datasets::named_pdz_domains;

    fn small_targets() -> Vec<DesignTarget> {
        named_pdz_domains(42).into_iter().take(2).collect()
    }

    #[test]
    fn imrp_experiment_end_to_end() {
        let targets = small_targets();
        let result = run_imrp(
            &targets,
            ProtocolConfig::imrp(1),
            AdaptivePolicy {
                sub_budget: 2,
                ..AdaptivePolicy::default()
            },
        );
        assert_eq!(result.label, "IM-RP");
        assert_eq!(result.run.root_pipelines, 2);
        assert!(result.trajectories >= 4);
        assert!(result.evaluations >= result.trajectories);
        assert!(!result.cpu_series.is_empty());
        assert!(result.run.cpu_utilization > 0.0);
    }

    #[test]
    fn cont_v_experiment_end_to_end() {
        let targets = small_targets();
        let result = run_cont_v_experiment(&targets, ProtocolConfig::cont_v(1));
        assert_eq!(result.label, "CONT-V");
        assert_eq!(result.trajectories, 8); // 2 structures × 4 cycles
        assert_eq!(result.evaluations, 8);
        assert_eq!(result.run.root_pipelines, 1);
        assert_eq!(result.run.sub_pipelines, 0);
    }

    #[test]
    fn imrp_beats_cont_v_on_utilization() {
        // Needs the full 4-target workload — the utilization gap comes from
        // inter-pipeline concurrency.
        let targets = named_pdz_domains(42);
        let imrp = run_imrp(&targets, ProtocolConfig::imrp(3), AdaptivePolicy::default());
        let cont = run_cont_v_experiment(&targets, ProtocolConfig::cont_v(3));
        assert!(
            imrp.run.cpu_utilization > cont.run.cpu_utilization * 1.5,
            "IM-RP CPU {} vs CONT-V {}",
            imrp.run.cpu_utilization,
            cont.run.cpu_utilization
        );
        assert!(
            imrp.run.gpu_slot_utilization > cont.run.gpu_hardware_utilization * 3.0,
            "IM-RP GPU {} vs CONT-V {}",
            imrp.run.gpu_slot_utilization,
            cont.run.gpu_hardware_utilization
        );
    }

    #[test]
    fn series_and_deltas_are_available() {
        let targets = small_targets();
        let result = run_cont_v_experiment(&targets, ProtocolConfig::cont_v(5));
        let series = result.series(MetricKind::Plddt);
        assert_eq!(series.iterations, vec![1, 2, 3, 4]);
        let d = result.net_deltas();
        assert!(d.plddt.is_finite());
    }
}
