//! Experiment drivers: run IM-RP and CONT-V end-to-end on the simulated
//! Amarel node and package everything the paper's tables and figures need.

use crate::adaptive::{AdaptivePolicy, ImpressDecision};
use crate::config::ProtocolConfig;
use crate::control::run_cont_v;
use crate::protocol::{DesignOutcome, DesignPipeline};
use crate::quality::{IterationSeries, NetDeltas};
use crate::spec::CampaignSpec;
use crate::toolkit::TargetToolkit;
use impress_pilot::backend::SimulatedBackend;
use impress_pilot::{FaultConfig, FaultPlan, PilotConfig, RetryPolicy, RuntimeConfig, Session};
use impress_proteins::datasets::DesignTarget;
use impress_proteins::MetricKind;
use impress_json::json_struct;
use impress_sim::{SimDuration, SimTime};
use impress_telemetry::Telemetry;
use impress_workflow::journal::{Journal, JournalError, JournalStore, ReplayPlan};
use impress_workflow::{Coordinator, RunReport};
use std::sync::Arc;

/// The complete result of one experiment arm.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Arm label (`"IM-RP"` or `"CONT-V"`).
    pub label: String,
    /// All lineage outcomes (roots then sub-pipelines, completion order).
    pub outcomes: Vec<DesignOutcome>,
    /// Computational run report.
    pub run: RunReport,
    /// Σ accepted design points across lineages (Table I "Trajectories").
    pub trajectories: u32,
    /// Σ AlphaFold evaluations (accepted + declined candidates).
    pub evaluations: u32,
    /// Utilization time series for Figs. 4–5 (bin = 10 virtual minutes):
    /// CPU occupancy per bin.
    pub cpu_series: Vec<f64>,
    /// GPU slot occupancy per bin.
    pub gpu_slot_series: Vec<f64>,
    /// GPU hardware-busy fraction per bin.
    pub gpu_hw_series: Vec<f64>,
}
json_struct!(ExperimentResult {
    label,
    outcomes,
    run,
    trajectories,
    evaluations,
    cpu_series,
    gpu_slot_series,
    gpu_hw_series
});

/// Time-series bin width used for the utilization figures.
pub const SERIES_BIN: SimDuration = SimDuration::from_mins(10);

impl ExperimentResult {
    /// Per-iteration series for one metric (a Fig. 2/3 panel).
    pub fn series(&self, metric: MetricKind) -> IterationSeries {
        IterationSeries::build(&self.outcomes, metric)
    }

    /// Net metric deltas (Table I science columns).
    pub fn net_deltas(&self) -> NetDeltas {
        NetDeltas::build(&self.outcomes)
    }
}

/// Toolkits for each target, sharing one MSA-database identity per
/// experiment — like one filesystem copy of the genetic databases on the
/// real cluster. Public so integration tests can drive the coordinator
/// directly (e.g. over the threaded backend) with the exact toolkit set
/// the experiment drivers use.
pub fn toolkits(targets: &[DesignTarget], seed: u64) -> Vec<Arc<TargetToolkit>> {
    targets
        .iter()
        .map(|t| TargetToolkit::for_target(t, seed ^ 0xdb))
        .collect()
}

/// Run the adaptive IM-RP arm: concurrent pipelines over the pilot
/// coordinator with the quality-ranked sub-pipeline policy, on the paper's
/// single Amarel node. Thin wrapper over [`CampaignSpec::run`].
pub fn run_imrp(
    targets: &[DesignTarget],
    config: ProtocolConfig,
    policy: AdaptivePolicy,
) -> ExperimentResult {
    CampaignSpec::imrp(targets, config)
        .policy(policy)
        .run()
        .expect("no resume plan to reject")
        .result
}

/// Run IM-RP on an arbitrary pilot configuration (e.g. a multi-node
/// cluster for scaling studies). Thin wrapper over [`CampaignSpec::run`].
pub fn run_imrp_on(
    targets: &[DesignTarget],
    config: ProtocolConfig,
    policy: AdaptivePolicy,
    pilot: PilotConfig,
) -> ExperimentResult {
    CampaignSpec::imrp(targets, config)
        .policy(policy)
        .pilot(pilot)
        .run()
        .expect("no resume plan to reject")
        .result
}

/// Run IM-RP under an injected fault environment: the same protocol, but
/// the pilot realizes the given fault plan (transient failures, hangs,
/// node crash/recover windows) and retry policy. With
/// [`FaultConfig::none`] and [`RetryPolicy::none`] this is bit-identical
/// to [`run_imrp_on`]. Thin wrapper over [`CampaignSpec::run`].
pub fn run_imrp_resilient(
    targets: &[DesignTarget],
    config: ProtocolConfig,
    policy: AdaptivePolicy,
    pilot: PilotConfig,
    faults: FaultConfig,
    retry: RetryPolicy,
) -> ExperimentResult {
    CampaignSpec::imrp(targets, config)
        .policy(policy)
        .pilot(pilot)
        .faults(faults, retry)
        .run()
        .expect("no resume plan to reject")
        .result
}

/// Run IM-RP with a live [`Telemetry`] handle wired through the pilot:
/// every scheduler decision, task attempt, pipeline, stage, and adaptive
/// decision lands in the handle's sink (pair with
/// [`Telemetry::recording`] to capture a Chrome-exportable trace).
/// Telemetry never perturbs the simulation — with a disabled handle this
/// is bit-identical to [`run_imrp_on`]. Thin wrapper over
/// [`CampaignSpec::run`].
pub fn run_imrp_traced(
    targets: &[DesignTarget],
    config: ProtocolConfig,
    policy: AdaptivePolicy,
    pilot: PilotConfig,
    telemetry: Telemetry,
) -> ExperimentResult {
    CampaignSpec::imrp(targets, config)
        .policy(policy)
        .pilot(pilot)
        .telemetry(telemetry)
        .run()
        .expect("no resume plan to reject")
        .result
}

/// The IM-RP coordinator type the experiment drivers build.
pub(crate) type ImrpCoordinator = Coordinator<DesignOutcome, SimulatedBackend, ImpressDecision>;

pub(crate) fn add_imrp_roots(
    coordinator: &mut ImrpCoordinator,
    tks: &[Arc<TargetToolkit>],
    config: &ProtocolConfig,
) {
    for (i, tk) in tks.iter().enumerate() {
        coordinator.add_pipeline(Box::new(DesignPipeline::root(
            tk.clone(),
            config.clone(),
            i as u64,
        )));
    }
}

/// Drive the coordinator to completion and package the result — the shared
/// tail of the plain, journaled, and resumed IM-RP drivers, so all three
/// produce byte-identical artifacts by construction.
pub(crate) fn finish_imrp(mut coordinator: ImrpCoordinator) -> (ExperimentResult, ImrpCoordinator) {
    let run = coordinator.run();
    let backend = coordinator.session().backend();
    let cpu_series = backend.cpu_series(SERIES_BIN);
    let gpu_slot_series = backend.gpu_slot_series(SERIES_BIN);
    let gpu_hw_series = backend.gpu_hw_series(SERIES_BIN);
    let outcomes: Vec<DesignOutcome> = coordinator
        .outcomes()
        .iter()
        .map(|(_, o)| o.clone())
        .collect();
    let result = package(
        "IM-RP",
        outcomes,
        run,
        cpu_series,
        gpu_slot_series,
        gpu_hw_series,
    );
    (result, coordinator)
}

/// The campaign label journaled IM-RP runs stamp into the journal header;
/// [`resume_imrp`] refuses a plan with any other label.
pub const IMRP_JOURNAL_LABEL: &str = "IM-RP";

/// A write-ahead journal on `store` stamped with the campaign identity
/// (label + protocol seed) that [`resume_imrp`] validates.
pub fn imrp_journal(
    store: Box<dyn JournalStore>,
    config: &ProtocolConfig,
) -> Result<Journal, JournalError> {
    Journal::new(store, IMRP_JOURNAL_LABEL, config.seed)
}

/// What a journaled IM-RP run produced: the packaged result (identical to
/// an unjournaled run) plus the crash-consistency facts the recovery study
/// reports.
pub struct JournaledRun {
    /// The experiment result.
    pub result: ExperimentResult,
    /// Whether the walltime deadline forced a graceful drain before the
    /// campaign finished.
    pub drained: bool,
    /// Journal records appended (excluding Begin/Snapshot frames).
    pub records: u64,
    /// Snapshot compactions performed.
    pub snapshots: u64,
}

/// Run IM-RP with a write-ahead journal, and optionally an allocation
/// walltime deadline after which the pilot stops launching tasks that
/// cannot finish, drains in-flight work, and leaves the journal as the
/// checkpoint ([`JournaledRun::drained`] reports this). Without a deadline
/// the run is byte-identical to [`run_imrp_on`].
pub fn run_imrp_journaled(
    targets: &[DesignTarget],
    config: ProtocolConfig,
    policy: AdaptivePolicy,
    pilot: PilotConfig,
    journal: Journal,
    deadline: Option<SimTime>,
) -> JournaledRun {
    let mut spec = CampaignSpec::imrp(targets, config)
        .policy(policy)
        .pilot(pilot)
        .journal(journal);
    if let Some(d) = deadline {
        spec = spec.deadline(d);
    }
    let run = spec.run().expect("no resume plan to reject");
    JournaledRun {
        result: run.result,
        drained: run.drained,
        records: run.records,
        snapshots: run.snapshots,
    }
}

/// Resume an interrupted IM-RP campaign from a replayed journal
/// ([`impress_workflow::journal::load_plan`]) and drive it to completion.
///
/// The resumed run re-simulates from `t = 0` on a fresh pilot: journaled
/// terminal pipelines replay as work-free ghosts, everything else re-runs
/// for real, and the result is byte-identical to an uninterrupted run. The
/// plan's campaign identity must match `config` — a journal from a
/// different campaign (or a corrupt one) is a typed error, not a panic.
pub fn resume_imrp(
    targets: &[DesignTarget],
    config: ProtocolConfig,
    policy: AdaptivePolicy,
    pilot: PilotConfig,
    plan: &ReplayPlan,
) -> Result<ExperimentResult, JournalError> {
    CampaignSpec::imrp(targets, config)
        .policy(policy)
        .pilot(pilot)
        .resume_from(plan.clone())
        .run()
        .map(|run| run.result)
}

/// Run the sequential CONT-V arm on its own simulated node.
pub fn run_cont_v_experiment(targets: &[DesignTarget], config: ProtocolConfig) -> ExperimentResult {
    let backend = SimulatedBackend::new(PilotConfig::with_seed(config.seed));
    run_cont_v_with_backend(targets, config, backend)
}

/// Run CONT-V under an injected fault environment. A lineage whose task
/// exhausts the retry budget terminates early (a vanilla sequential script
/// dies with its first unrecoverable task) and is counted as aborted.
pub fn run_cont_v_resilient(
    targets: &[DesignTarget],
    config: ProtocolConfig,
    pilot: PilotConfig,
    faults: FaultConfig,
    retry: RetryPolicy,
) -> ExperimentResult {
    let plan = FaultPlan::new(faults, pilot.seed);
    let backend = RuntimeConfig::new(pilot).faults(plan, retry).simulated();
    run_cont_v_with_backend(targets, config, backend)
}

fn run_cont_v_with_backend(
    targets: &[DesignTarget],
    config: ProtocolConfig,
    backend: SimulatedBackend,
) -> ExperimentResult {
    assert!(!config.adaptive, "CONT-V is the non-adaptive arm");
    let tks = toolkits(targets, config.seed);
    let mut session = Session::new(backend);
    let outcomes = run_cont_v(&mut session, &tks, &config);
    let backend = session.backend();
    let cpu_series = backend.cpu_series(SERIES_BIN);
    let gpu_slot_series = backend.gpu_slot_series(SERIES_BIN);
    let gpu_hw_series = backend.gpu_hw_series(SERIES_BIN);
    // CONT-V has no coordinator; build the equivalent report directly.
    let obs = session.observe();
    let registry = {
        let mut r = impress_workflow::Registry::new();
        let id = r.register("cont-v".into(), None, impress_sim::SimTime::ZERO);
        r.note_stage_submitted(id, obs.utilization().tasks);
        r
    };
    let aborted = outcomes.iter().filter(|o| o.terminated_early).count();
    let run = RunReport::build(
        &registry,
        *obs.utilization(),
        *obs.phase_breakdown(),
        obs.at(),
        aborted,
    );
    package(
        "CONT-V",
        outcomes,
        run,
        cpu_series,
        gpu_slot_series,
        gpu_hw_series,
    )
}

fn package(
    label: &str,
    outcomes: Vec<DesignOutcome>,
    run: RunReport,
    cpu_series: Vec<f64>,
    gpu_slot_series: Vec<f64>,
    gpu_hw_series: Vec<f64>,
) -> ExperimentResult {
    let trajectories = outcomes.iter().map(|o| o.trajectories()).sum();
    let evaluations = outcomes.iter().map(|o| o.total_evaluations).sum();
    ExperimentResult {
        label: label.to_string(),
        outcomes,
        run,
        trajectories,
        evaluations,
        cpu_series,
        gpu_slot_series,
        gpu_hw_series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use impress_proteins::datasets::named_pdz_domains;

    fn small_targets() -> Vec<DesignTarget> {
        named_pdz_domains(42).into_iter().take(2).collect()
    }

    #[test]
    fn imrp_experiment_end_to_end() {
        let targets = small_targets();
        let result = run_imrp(
            &targets,
            ProtocolConfig::imrp(1),
            AdaptivePolicy {
                sub_budget: 2,
                ..AdaptivePolicy::default()
            },
        );
        assert_eq!(result.label, "IM-RP");
        assert_eq!(result.run.root_pipelines, 2);
        assert!(result.trajectories >= 4);
        assert!(result.evaluations >= result.trajectories);
        assert!(!result.cpu_series.is_empty());
        assert!(result.run.cpu_utilization > 0.0);
    }

    #[test]
    fn cont_v_experiment_end_to_end() {
        let targets = small_targets();
        let result = run_cont_v_experiment(&targets, ProtocolConfig::cont_v(1));
        assert_eq!(result.label, "CONT-V");
        assert_eq!(result.trajectories, 8); // 2 structures × 4 cycles
        assert_eq!(result.evaluations, 8);
        assert_eq!(result.run.root_pipelines, 1);
        assert_eq!(result.run.sub_pipelines, 0);
    }

    #[test]
    fn imrp_beats_cont_v_on_utilization() {
        // Needs the full 4-target workload — the utilization gap comes from
        // inter-pipeline concurrency.
        let targets = named_pdz_domains(42);
        let imrp = run_imrp(&targets, ProtocolConfig::imrp(3), AdaptivePolicy::default());
        let cont = run_cont_v_experiment(&targets, ProtocolConfig::cont_v(3));
        assert!(
            imrp.run.cpu_utilization > cont.run.cpu_utilization * 1.5,
            "IM-RP CPU {} vs CONT-V {}",
            imrp.run.cpu_utilization,
            cont.run.cpu_utilization
        );
        assert!(
            imrp.run.gpu_slot_utilization > cont.run.gpu_hardware_utilization * 3.0,
            "IM-RP GPU {} vs CONT-V {}",
            imrp.run.gpu_slot_utilization,
            cont.run.gpu_hardware_utilization
        );
    }

    #[test]
    fn journaled_run_is_byte_identical_to_plain_and_resume_replays_it() {
        use impress_workflow::journal::{load_plan, MemoryJournal};
        let targets = small_targets();
        let config = ProtocolConfig::imrp(1);
        let policy = AdaptivePolicy {
            sub_budget: 2,
            ..AdaptivePolicy::default()
        };
        let pilot = PilotConfig::with_seed(config.seed);
        let plain = run_imrp_on(&targets, config.clone(), policy.clone(), pilot.clone());
        let store = MemoryJournal::new();
        let journaled = run_imrp_journaled(
            &targets,
            config.clone(),
            policy.clone(),
            pilot.clone(),
            imrp_journal(Box::new(store.clone()), &config).unwrap(),
            None,
        );
        assert!(!journaled.drained);
        assert!(journaled.records > 0);
        assert_eq!(
            impress_json::to_string(&plain),
            impress_json::to_string(&journaled.result),
            "journaling must not perturb the run"
        );
        // Resume from the completed journal: all ghosts, zero real work,
        // byte-identical artifacts.
        let plan = load_plan(&store).unwrap().plan;
        assert_eq!(plan.live_pipelines(), 0);
        let resumed = resume_imrp(&targets, config, policy, pilot, &plan).unwrap();
        assert_eq!(
            impress_json::to_string(&plain),
            impress_json::to_string(&resumed)
        );
    }

    #[test]
    fn resume_rejects_a_foreign_campaign_journal() {
        let targets = small_targets();
        let config = ProtocolConfig::imrp(1);
        let plan = ReplayPlan::new("CONT-V", config.seed);
        let err = resume_imrp(
            &targets,
            config.clone(),
            AdaptivePolicy::default(),
            PilotConfig::with_seed(config.seed),
            &plan,
        )
        .unwrap_err();
        assert!(matches!(err, JournalError::Corrupt(_)), "{err}");
    }

    #[test]
    fn series_and_deltas_are_available() {
        let targets = small_targets();
        let result = run_cont_v_experiment(&targets, ProtocolConfig::cont_v(5));
        let series = result.series(MetricKind::Plddt);
        assert_eq!(series.iterations, vec![1, 2, 3, 4]);
        let d = result.net_deltas();
        assert!(d.plddt.is_finite());
    }
}
