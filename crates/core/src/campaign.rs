//! Campaign output: persist a finished experiment to a directory the way a
//! real design campaign hands results to wet-lab collaborators — one FASTA
//! and Cα-PDB per final design, a JSON result bundle, and a human-readable
//! summary.

use crate::experiment::ExperimentResult;
use impress_proteins::datasets::DesignTarget;
use impress_proteins::fasta::{write_fasta, FastaRecord};
use impress_proteins::pdb::write_pdb;
use impress_proteins::Structure;
use std::io;
use std::path::{Path, PathBuf};

/// Files written for one experiment arm.
#[derive(Debug, Clone)]
pub struct CampaignOutput {
    /// The directory everything was written into.
    pub dir: PathBuf,
    /// Paths of the per-design FASTA files.
    pub fasta_files: Vec<PathBuf>,
    /// Paths of the per-design PDB files.
    pub pdb_files: Vec<PathBuf>,
    /// Path of the JSON result bundle.
    pub results_json: PathBuf,
    /// Path of the summary text file.
    pub summary: PathBuf,
}

/// Write `result` into `dir` (created if missing). `targets` supplies the
/// peptide chains for complex reconstruction.
pub fn export_campaign(
    dir: impl AsRef<Path>,
    result: &ExperimentResult,
    targets: &[DesignTarget],
) -> io::Result<CampaignOutput> {
    let dir = dir.as_ref().to_path_buf();
    std::fs::create_dir_all(&dir)?;

    let mut fasta_files = Vec::new();
    let mut pdb_files = Vec::new();
    for outcome in &result.outcomes {
        let Some(target) = targets.iter().find(|t| t.name == outcome.target) else {
            continue;
        };
        let complex = target
            .start
            .complex
            .with_receptor_sequence(outcome.final_receptor.clone());
        let stem = outcome.label.replace('/', "_");

        let fasta = write_fasta(&[FastaRecord {
            header: format!(
                "{} final design ({}; {} iterations, {} evaluations)",
                outcome.target,
                result.label,
                outcome.iterations.len(),
                outcome.total_evaluations
            ),
            chains: vec![
                complex.receptor.sequence.clone(),
                complex.peptide.sequence.clone(),
            ],
        }]);
        let fasta_path = dir.join(format!("{stem}.fasta"));
        std::fs::write(&fasta_path, fasta)?;
        fasta_files.push(fasta_path);

        let structure = Structure::refined(
            complex,
            outcome.final_backbone_quality,
            outcome.iterations.last().map(|r| r.iteration).unwrap_or(0),
        );
        let pdb_path = dir.join(format!("{stem}.pdb"));
        std::fs::write(&pdb_path, write_pdb(&structure))?;
        pdb_files.push(pdb_path);
    }

    let results_json = dir.join("results.json");
    std::fs::write(&results_json, impress_json::to_string_pretty(result))?;

    let summary = dir.join("SUMMARY.txt");
    let mut text = format!(
        "{} campaign: {} lineages, {} trajectories, {} evaluations\n\
         makespan {:.1} h | CPU {:.1}% | GPU {:.1}% (slot)\n\n",
        result.label,
        result.outcomes.len(),
        result.trajectories,
        result.evaluations,
        result.run.makespan.as_hours_f64(),
        result.run.cpu_utilization * 100.0,
        result.run.gpu_slot_utilization * 100.0
    );
    for outcome in &result.outcomes {
        text.push_str(&format!(
            "{:<28} {}  ({} iterations{})\n",
            outcome.label,
            outcome
                .final_report()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "no accepted iteration".into()),
            outcome.iterations.len(),
            if outcome.terminated_early {
                ", terminated early"
            } else {
                ""
            }
        ));
    }
    std::fs::write(&summary, text)?;

    Ok(CampaignOutput {
        dir,
        fasta_files,
        pdb_files,
        results_json,
        summary,
    })
}

/// Load a previously exported result bundle.
pub fn load_results(path: impl AsRef<Path>) -> io::Result<ExperimentResult> {
    let text = std::fs::read_to_string(path)?;
    impress_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptivePolicy;
    use crate::experiment::run_cont_v_experiment;
    use crate::ProtocolConfig;
    use impress_proteins::datasets::named_pdz_domains;
    use impress_proteins::pdb::parse_pdb;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("impress-campaign-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn export_writes_every_artifact_and_round_trips() {
        let targets: Vec<_> = named_pdz_domains(3).into_iter().take(2).collect();
        let result = run_cont_v_experiment(&targets, ProtocolConfig::cont_v(3));
        let dir = tmpdir("export");
        let out = export_campaign(&dir, &result, &targets).expect("export");
        assert_eq!(out.fasta_files.len(), 2);
        assert_eq!(out.pdb_files.len(), 2);
        assert!(out.results_json.exists());
        assert!(out.summary.exists());

        // PDB parses back to the exported design.
        let pdb_text = std::fs::read_to_string(&out.pdb_files[0]).unwrap();
        let chains = parse_pdb(&pdb_text).expect("valid pdb");
        assert_eq!(chains.len(), 2);
        assert_eq!(&chains[0].sequence, &result.outcomes[0].final_receptor);

        // JSON round trip.
        let loaded = load_results(&out.results_json).expect("load");
        assert_eq!(loaded.label, result.label);
        assert_eq!(loaded.trajectories, result.trajectories);
        assert_eq!(loaded.outcomes.len(), result.outcomes.len());

        // Summary mentions every lineage.
        let summary = std::fs::read_to_string(&out.summary).unwrap();
        for o in &result.outcomes {
            assert!(summary.contains(&o.label), "{summary}");
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = AdaptivePolicy::default();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = tmpdir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "not json").unwrap();
        assert!(load_results(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
