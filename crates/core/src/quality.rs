//! Scientific aggregation: per-iteration metric series (Figs. 2–3) and
//! net-Δ statistics (Table I).

use crate::protocol::DesignOutcome;
use impress_proteins::MetricKind;
use impress_json::json_struct;
use impress_sim::Summary;
use std::collections::BTreeMap;

/// Per-iteration summaries of one metric across many lineages: the data
/// behind one panel of Fig. 2 / Fig. 3 (bars = medians, error bars = σ/2).
#[derive(Debug, Clone)]
pub struct IterationSeries {
    /// The metric summarized.
    pub metric: MetricKind,
    /// Iteration numbers present (1-based, ascending).
    pub iterations: Vec<u32>,
    /// Summary of the metric across lineages at each iteration.
    pub summaries: Vec<Summary>,
}
json_struct!(IterationSeries {
    metric,
    iterations,
    summaries
});

impl IterationSeries {
    /// Build the series for `metric` from outcomes. Iterations are grouped
    /// by their global number, so sub-pipeline records extend their
    /// parents' series rather than restarting at 1.
    pub fn build(outcomes: &[DesignOutcome], metric: MetricKind) -> IterationSeries {
        let mut by_iter: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
        for o in outcomes {
            for rec in &o.iterations {
                by_iter
                    .entry(rec.iteration)
                    .or_default()
                    .push(rec.report.get(metric));
            }
        }
        let (iterations, summaries) = by_iter
            .into_iter()
            .map(|(it, vals)| (it, Summary::of(&vals)))
            .unzip();
        IterationSeries {
            metric,
            iterations,
            summaries,
        }
    }

    /// Median values per iteration (bar heights).
    pub fn medians(&self) -> Vec<f64> {
        self.summaries.iter().map(|s| s.median).collect()
    }

    /// Half-σ error bars per iteration.
    pub fn half_stds(&self) -> Vec<f64> {
        self.summaries.iter().map(|s| s.half_std()).collect()
    }
}

/// Net change per metric from the first to the last iteration (the Table I
/// "Net Δ" columns), aggregated as the mean over targets.
#[derive(Debug, Clone, Copy)]
pub struct NetDeltas {
    /// Δ pTM (positive = improvement).
    pub ptm: f64,
    /// Δ pLDDT (positive = improvement).
    pub plddt: f64,
    /// Δ inter-chain pAE (negative = improvement).
    pub pae: f64,
}
json_struct!(NetDeltas { ptm, plddt, pae });

impl NetDeltas {
    /// Compute the deltas from outcomes, grouping lineages by target so a
    /// sub-pipeline's final iteration extends its target's trajectory. The
    /// "first" point is the iteration-0 baseline (the starting structure's
    /// known metrics), so the delta spans the whole design campaign.
    pub fn build(outcomes: &[DesignOutcome]) -> NetDeltas {
        // (iteration, pTM, pLDDT, pAE) at a trajectory endpoint.
        type Point = (u32, f64, f64, f64);
        let mut per_target: BTreeMap<&str, (Option<Point>, Option<Point>)> = BTreeMap::new();
        for o in outcomes {
            let entry = per_target.entry(o.target.as_str()).or_insert((None, None));
            let baseline = (
                0,
                o.baseline_report.ptm,
                o.baseline_report.plddt,
                o.baseline_report.inter_chain_pae,
            );
            if entry.0.is_none() {
                entry.0 = Some(baseline);
            }
            for rec in &o.iterations {
                let tuple = (
                    rec.iteration,
                    rec.report.ptm,
                    rec.report.plddt,
                    rec.report.inter_chain_pae,
                );
                match &mut entry.1 {
                    Some(last) if last.0 >= rec.iteration => {}
                    slot => *slot = Some(tuple),
                }
            }
        }
        let mut dptm = Vec::new();
        let mut dplddt = Vec::new();
        let mut dpae = Vec::new();
        for (first, last) in per_target.values() {
            if let (Some(f), Some(l)) = (first, last) {
                dptm.push(l.1 - f.1);
                dplddt.push(l.2 - f.2);
                dpae.push(l.3 - f.3);
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        NetDeltas {
            ptm: mean(&dptm),
            plddt: mean(&dplddt),
            pae: mean(&dpae),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::IterationRecord;
    use impress_proteins::ConfidenceReport;

    fn outcome(target: &str, label: &str, recs: Vec<(u32, f64, f64, f64)>) -> DesignOutcome {
        DesignOutcome {
            target: target.into(),
            label: label.into(),
            iterations: recs
                .into_iter()
                .map(|(it, plddt, ptm, pae)| IterationRecord {
                    iteration: it,
                    report: ConfidenceReport::new(plddt, ptm, pae),
                    true_quality: 0.0,
                    bind_quality: 0.0,
                    evaluations: 1,
                    accepted_rank: 0,
                })
                .collect(),
            final_receptor: impress_proteins::Sequence::parse("AA").unwrap(),
            final_backbone_quality: 0.5,
            total_evaluations: 1,
            terminated_early: false,
            baseline_report: ConfidenceReport::new(58.0, 0.38, 21.0),
            start_iteration: 1,
        }
    }

    #[test]
    fn series_groups_by_global_iteration() {
        let outcomes = vec![
            outcome(
                "A",
                "A/root",
                vec![(1, 60.0, 0.4, 20.0), (2, 65.0, 0.5, 18.0)],
            ),
            outcome(
                "B",
                "B/root",
                vec![(1, 62.0, 0.42, 19.0), (2, 67.0, 0.52, 17.0)],
            ),
            // Sub-pipeline extends to iteration 3.
            outcome("A", "A/root/sub0", vec![(3, 70.0, 0.6, 15.0)]),
        ];
        let s = IterationSeries::build(&outcomes, MetricKind::Plddt);
        assert_eq!(s.iterations, vec![1, 2, 3]);
        assert_eq!(s.summaries[0].n, 2);
        assert_eq!(s.summaries[2].n, 1);
        assert!((s.medians()[0] - 61.0).abs() < 1e-9);
        assert!((s.medians()[2] - 70.0).abs() < 1e-9);
    }

    #[test]
    fn net_deltas_span_baseline_to_last_across_lineages() {
        let outcomes = vec![
            outcome(
                "A",
                "A/root",
                vec![(1, 60.0, 0.40, 20.0), (4, 66.0, 0.70, 14.0)],
            ),
            outcome("A", "A/root/sub0", vec![(5, 68.0, 0.72, 13.0)]),
            outcome(
                "B",
                "B/root",
                vec![(1, 61.0, 0.45, 19.0), (4, 65.0, 0.71, 12.0)],
            ),
        ];
        let d = NetDeltas::build(&outcomes);
        // Baseline for every target: (58.0 pLDDT, 0.38 pTM, 21.0 pAE).
        // Target A ends at iteration 5: +10, +0.34, −8.
        // Target B ends at iteration 4: +7, +0.33, −9. Means: +8.5, +0.335, −8.5.
        assert!((d.plddt - 8.5).abs() < 1e-9, "{}", d.plddt);
        assert!((d.ptm - 0.335).abs() < 1e-9, "{}", d.ptm);
        assert!((d.pae + 8.5).abs() < 1e-9, "{}", d.pae);
    }

    #[test]
    fn empty_outcomes_are_defined() {
        let s = IterationSeries::build(&[], MetricKind::Ptm);
        assert!(s.iterations.is_empty());
        let d = NetDeltas::build(&[]);
        assert_eq!(d.ptm, 0.0);
    }

    #[test]
    fn half_stds_match_summary() {
        let outcomes = vec![
            outcome("A", "a", vec![(1, 60.0, 0.4, 20.0)]),
            outcome("B", "b", vec![(1, 64.0, 0.5, 18.0)]),
        ];
        let s = IterationSeries::build(&outcomes, MetricKind::Plddt);
        assert!((s.half_stds()[0] - 1.0).abs() < 1e-9); // σ=2 → σ/2=1
    }
}
