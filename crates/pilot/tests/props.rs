//! Property-based tests for the pilot runtime: no oversubscription, slot
//! conservation, and full completion under arbitrary task streams. Runs on
//! the in-repo `props!` harness.

use impress_pilot::backend::SimulatedBackend;
use impress_pilot::{
    ExecutionBackend, NodeSpec, PilotConfig, PlacementPolicy, ResourceRequest, Scheduler,
    TaskDescription, TaskId,
};
use impress_sim::{props, SimDuration, SimRng};

#[derive(Debug, Clone)]
struct TaskSpec {
    cores: u32,
    gpus: u32,
    secs: u64,
}

fn arb_tasks(rng: &mut SimRng, max_cores: u32, max_gpus: u32) -> Vec<TaskSpec> {
    let len = 1 + rng.below(59);
    (0..len)
        .map(|_| TaskSpec {
            cores: 1 + rng.below(max_cores as usize) as u32,
            gpus: rng.below(max_gpus as usize + 1) as u32,
            secs: 1 + rng.below(499) as u64,
        })
        .collect()
}

props! {
    /// The scheduler never grants more devices than exist, never grants the
    /// same device twice concurrently, and eventually places every task.
    fn scheduler_conserves_devices(rng, cases = 64) {
        let tasks = arb_tasks(rng, 8, 2);
        let policy = if rng.chance(0.5) {
            PlacementPolicy::Fifo
        } else {
            PlacementPolicy::Backfill
        };
        let node = NodeSpec::new(8, 2, 64);
        let mut s = Scheduler::new(node, policy);
        for (i, t) in tasks.iter().enumerate() {
            s.enqueue(TaskId(i as u64), ResourceRequest::with_gpus(t.cores, t.gpus));
        }
        let mut running: Vec<(TaskId, impress_pilot::Allocation)> = Vec::new();
        let mut placed_total = 0usize;
        // Alternate placing and releasing the oldest running task until done.
        loop {
            let placed = s.place_ready();
            placed_total += placed.len();
            for (id, alloc) in &placed {
                // Device conservation: no overlap with running allocations.
                for (_, other) in &running {
                    for c in &alloc.core_ids {
                        assert!(!other.core_ids.contains(c), "core {c} double-granted");
                    }
                    for g in &alloc.gpu_ids {
                        assert!(!other.gpu_ids.contains(g), "gpu {g} double-granted");
                    }
                }
                running.push((*id, alloc.clone()));
            }
            let used_cores: usize = running.iter().map(|(_, a)| a.core_ids.len()).sum();
            let used_gpus: usize = running.iter().map(|(_, a)| a.gpu_ids.len()).sum();
            assert!(used_cores <= 8, "cores oversubscribed: {used_cores}");
            assert!(used_gpus <= 2, "gpus oversubscribed: {used_gpus}");
            if running.is_empty() {
                break;
            }
            let (_, alloc) = running.remove(0);
            s.release(&alloc);
        }
        assert_eq!(placed_total, tasks.len(), "every task must eventually place");
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.cores_free(), 8);
        assert_eq!(s.gpus_free(), 2);
    }

    /// Every submitted task completes exactly once on the simulated backend,
    /// and per-device busy time never exceeds the makespan.
    fn simulated_backend_completes_everything(rng, cases = 64) {
        let tasks = arb_tasks(rng, 6, 2);
        let mut backend = SimulatedBackend::new(PilotConfig {
            node: NodeSpec::new(6, 2, 64),
            bootstrap: SimDuration::from_secs(5),
            exec_setup_per_task: SimDuration::from_secs(1),
            ..PilotConfig::default()
        });
        let n = tasks.len();
        for (i, t) in tasks.iter().enumerate() {
            backend.submit(TaskDescription::new(
                format!("t{i}"),
                ResourceRequest::with_gpus(t.cores, t.gpus),
                SimDuration::from_secs(t.secs),
            ));
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(c) = backend.next_completion() {
            assert!(seen.insert(c.task), "duplicate completion for {}", c.task);
            assert!(c.finished >= c.started);
        }
        assert_eq!(seen.len(), n);
        assert_eq!(backend.in_flight(), 0);
        let report = backend.utilization();
        assert!(report.cpu <= 1.0 + 1e-9);
        assert!(report.gpu_slot <= 1.0 + 1e-9);
        assert!(report.gpu_hardware <= report.gpu_slot + 1e-9);
    }

    /// Makespan lower bounds: no schedule beats the critical-path and
    /// total-work bounds.
    fn makespan_respects_work_bounds(rng, cases = 64) {
        let tasks = arb_tasks(rng, 4, 1);
        let cores = 4u64;
        let mut backend = SimulatedBackend::new(PilotConfig {
            node: NodeSpec::new(cores as u32, 1, 64),
            bootstrap: SimDuration::ZERO,
            exec_setup_per_task: SimDuration::ZERO,
            ..PilotConfig::default()
        });
        for (i, t) in tasks.iter().enumerate() {
            backend.submit(TaskDescription::new(
                format!("t{i}"),
                ResourceRequest::with_gpus(t.cores, t.gpus),
                SimDuration::from_secs(t.secs),
            ));
        }
        while backend.next_completion().is_some() {}
        let makespan = backend.now().as_secs_f64();
        let longest = tasks.iter().map(|t| t.secs).max().unwrap() as f64;
        let core_work: u64 = tasks.iter().map(|t| t.secs * t.cores as u64).sum();
        assert!(makespan + 1e-6 >= longest, "makespan {makespan} < longest task {longest}");
        assert!(
            makespan + 1e-6 >= core_work as f64 / cores as f64,
            "makespan {makespan} beats total-work bound"
        );
    }
}
