//! Property-based tests for the pilot runtime: no oversubscription, slot
//! conservation, and full completion under arbitrary task streams. Runs on
//! the in-repo `props!` harness.

use impress_pilot::backend::SimulatedBackend;
use impress_pilot::{
    ExecutionBackend, FaultConfig, FaultPlan, NodeSpec, PilotConfig, PlacementPolicy,
    ResourceRequest, RetryPolicy, RuntimeConfig, Scheduler, ScriptedCrash, TaskDescription,
    TaskId,
};
use impress_sim::{props, SimDuration, SimRng, SimTime};

#[derive(Debug, Clone)]
struct TaskSpec {
    cores: u32,
    gpus: u32,
    secs: u64,
}

fn arb_tasks(rng: &mut SimRng, max_cores: u32, max_gpus: u32) -> Vec<TaskSpec> {
    let len = 1 + rng.below(59);
    (0..len)
        .map(|_| TaskSpec {
            cores: 1 + rng.below(max_cores as usize) as u32,
            gpus: rng.below(max_gpus as usize + 1) as u32,
            secs: 1 + rng.below(499) as u64,
        })
        .collect()
}

props! {
    /// The scheduler never grants more devices than exist, never grants the
    /// same device twice concurrently, and eventually places every task.
    fn scheduler_conserves_devices(rng, cases = 64) {
        let tasks = arb_tasks(rng, 8, 2);
        let policy = if rng.chance(0.5) {
            PlacementPolicy::Fifo
        } else {
            PlacementPolicy::Backfill
        };
        let node = NodeSpec::new(8, 2, 64);
        let mut s = Scheduler::new(node, policy);
        for (i, t) in tasks.iter().enumerate() {
            s.enqueue(TaskId(i as u64), ResourceRequest::with_gpus(t.cores, t.gpus));
        }
        let mut running: Vec<(TaskId, impress_pilot::Allocation)> = Vec::new();
        let mut placed_total = 0usize;
        // Alternate placing and releasing the oldest running task until done.
        loop {
            let placed = s.place_ready();
            placed_total += placed.len();
            for (id, alloc) in &placed {
                // Device conservation: no overlap with running allocations.
                for (_, other) in &running {
                    for c in &alloc.core_ids {
                        assert!(!other.core_ids.contains(c), "core {c} double-granted");
                    }
                    for g in &alloc.gpu_ids {
                        assert!(!other.gpu_ids.contains(g), "gpu {g} double-granted");
                    }
                }
                running.push((*id, alloc.clone()));
            }
            let used_cores: usize = running.iter().map(|(_, a)| a.core_ids.len()).sum();
            let used_gpus: usize = running.iter().map(|(_, a)| a.gpu_ids.len()).sum();
            assert!(used_cores <= 8, "cores oversubscribed: {used_cores}");
            assert!(used_gpus <= 2, "gpus oversubscribed: {used_gpus}");
            if running.is_empty() {
                break;
            }
            let (_, alloc) = running.remove(0);
            s.release(&alloc);
        }
        assert_eq!(placed_total, tasks.len(), "every task must eventually place");
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.cores_free(), 8);
        assert_eq!(s.gpus_free(), 2);
    }

    /// Every submitted task completes exactly once on the simulated backend,
    /// and per-device busy time never exceeds the makespan.
    fn simulated_backend_completes_everything(rng, cases = 64) {
        let tasks = arb_tasks(rng, 6, 2);
        let mut backend = SimulatedBackend::new(PilotConfig {
            node: NodeSpec::new(6, 2, 64),
            bootstrap: SimDuration::from_secs(5),
            exec_setup_per_task: SimDuration::from_secs(1),
            ..PilotConfig::default()
        });
        let n = tasks.len();
        for (i, t) in tasks.iter().enumerate() {
            backend.submit(TaskDescription::new(
                format!("t{i}"),
                ResourceRequest::with_gpus(t.cores, t.gpus),
                SimDuration::from_secs(t.secs),
            ));
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(c) = backend.next_completion() {
            assert!(seen.insert(c.task), "duplicate completion for {}", c.task);
            assert!(c.finished >= c.started);
        }
        assert_eq!(seen.len(), n);
        assert_eq!(backend.in_flight(), 0);
        let report = backend.utilization();
        assert!(report.cpu <= 1.0 + 1e-9);
        assert!(report.gpu_slot <= 1.0 + 1e-9);
        assert!(report.gpu_hardware <= report.gpu_slot + 1e-9);
    }

    /// Makespan lower bounds: no schedule beats the critical-path and
    /// total-work bounds.
    fn makespan_respects_work_bounds(rng, cases = 64) {
        let tasks = arb_tasks(rng, 4, 1);
        let cores = 4u64;
        let mut backend = SimulatedBackend::new(PilotConfig {
            node: NodeSpec::new(cores as u32, 1, 64),
            bootstrap: SimDuration::ZERO,
            exec_setup_per_task: SimDuration::ZERO,
            ..PilotConfig::default()
        });
        for (i, t) in tasks.iter().enumerate() {
            backend.submit(TaskDescription::new(
                format!("t{i}"),
                ResourceRequest::with_gpus(t.cores, t.gpus),
                SimDuration::from_secs(t.secs),
            ));
        }
        while backend.next_completion().is_some() {}
        let makespan = backend.now().as_secs_f64();
        let longest = tasks.iter().map(|t| t.secs).max().unwrap() as f64;
        let core_work: u64 = tasks.iter().map(|t| t.secs * t.cores as u64).sum();
        assert!(makespan + 1e-6 >= longest, "makespan {makespan} < longest task {longest}");
        assert!(
            makespan + 1e-6 >= core_work as f64 / cores as f64,
            "makespan {makespan} beats total-work bound"
        );
    }

    /// Under arbitrary injected faults (transient failures, hangs, node
    /// crashes, walltime limits) and an arbitrary retry budget, every
    /// submission still reaches exactly one terminal completion, no attempt
    /// count ever exceeds the budget, and the backend drains clean.
    fn faulted_backend_always_terminates_within_budget(rng, cases = 48) {
        let tasks = arb_tasks(rng, 6, 2);
        let budget = rng.below(4) as u32;
        let faults = FaultConfig {
            task_failure_rate: rng.uniform() * 0.6,
            task_hang_rate: rng.uniform() * 0.3,
            node_mtbf: if rng.chance(0.5) {
                Some(SimDuration::from_secs(300 + rng.below(1500) as u64))
            } else {
                None
            },
            node_outage: SimDuration::from_secs(30 + rng.below(300) as u64),
            ..FaultConfig::none()
        };
        let seed = rng.next_u64();
        let config = PilotConfig {
            node: NodeSpec::new(6, 2, 64),
            nodes: 2,
            bootstrap: SimDuration::from_secs(5),
            exec_setup_per_task: SimDuration::from_secs(1),
            seed,
            ..PilotConfig::default()
        };
        let plan = FaultPlan::new(faults, seed);
        let mut backend = RuntimeConfig::new(config)
            .faults(plan, RetryPolicy::retries(budget))
            .simulated();
        let n = tasks.len();
        for (i, t) in tasks.iter().enumerate() {
            let mut desc = TaskDescription::new(
                format!("t{i}"),
                ResourceRequest::with_gpus(t.cores, t.gpus),
                SimDuration::from_secs(t.secs),
            );
            // A third of the tasks get a walltime tight enough that a hang
            // (×hang_factor dilation) blows it, exercising the timeout path.
            if i % 3 == 0 {
                desc = desc.with_walltime(SimDuration::from_secs(t.secs * 2 + 10));
            }
            backend.submit(desc);
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(c) = backend.next_completion() {
            assert!(seen.insert(c.task), "duplicate completion for {}", c.task);
            assert!(
                c.attempts <= budget,
                "task {} used {} retries, budget {budget}",
                c.task,
                c.attempts
            );
            assert!(c.finished >= c.started);
        }
        assert_eq!(seen.len(), n, "every submission must terminate");
        assert_eq!(backend.in_flight(), 0);
        let report = backend.utilization();
        assert!(report.cpu <= 1.0 + 1e-9, "cpu occupancy {} > 1", report.cpu);
        assert!(report.gpu_slot <= 1.0 + 1e-9);
        assert!(report.retries <= n * budget as usize);
        assert!(report.wasted_core_seconds >= 0.0);
        assert!(report.wasted_gpu_seconds >= 0.0);
    }

    /// Requeued tasks never double-occupy slots: across arbitrary scripted
    /// node crashes the scheduler's pool stays conserved (its internal
    /// asserts fire on any double grant), utilization — which counts wasted
    /// attempts as busy time — never exceeds 1.0, and crash windows are
    /// well-formed (ordered, disjoint, positive-length).
    fn crash_requeue_preserves_slot_conservation(rng, cases = 48) {
        let tasks = arb_tasks(rng, 4, 1);
        let nodes = 2 + rng.below(2) as u32;
        let seed = rng.next_u64();
        // 1–3 scripted crashes per run, anywhere in the first simulated hour.
        let scripted = (0..1 + rng.below(3))
            .map(|_| ScriptedCrash {
                node: rng.below(nodes as usize) as u32,
                at: SimTime::ZERO + SimDuration::from_secs(10 + rng.below(3600) as u64),
                outage: SimDuration::from_secs(20 + rng.below(600) as u64),
            })
            .collect();
        let faults = FaultConfig {
            scripted_crashes: scripted,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::new(faults.clone(), seed);
        for node in 0..nodes {
            let windows = plan.crash_windows(node);
            let mut last_end = SimTime::ZERO;
            for (start, end) in &windows {
                assert!(start < end, "empty crash window");
                assert!(
                    *start >= last_end,
                    "crash windows overlap after merging"
                );
                last_end = *end;
            }
        }
        let config = PilotConfig {
            node: NodeSpec::new(4, 1, 64),
            nodes,
            bootstrap: SimDuration::from_secs(5),
            exec_setup_per_task: SimDuration::from_secs(1),
            seed,
            ..PilotConfig::default()
        };
        let mut backend = RuntimeConfig::new(config)
            .faults(FaultPlan::new(faults, seed), RetryPolicy::retries(6))
            .simulated();
        let n = tasks.len();
        for (i, t) in tasks.iter().enumerate() {
            backend.submit(TaskDescription::new(
                format!("t{i}"),
                ResourceRequest::with_gpus(t.cores, t.gpus),
                SimDuration::from_secs(t.secs),
            ));
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(c) = backend.next_completion() {
            assert!(seen.insert(c.task), "duplicate completion for {}", c.task);
        }
        assert_eq!(seen.len(), n);
        assert_eq!(backend.in_flight(), 0);
        let report = backend.utilization();
        assert!(
            report.cpu <= 1.0 + 1e-9,
            "requeue double-occupied cores: occupancy {}",
            report.cpu
        );
        assert!(report.gpu_slot <= 1.0 + 1e-9);
    }
}
