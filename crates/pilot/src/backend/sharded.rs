//! The sharded parallel-DES backend: virtual-time execution for
//! 10k-node campaigns.
//!
//! [`SimulatedBackend`](crate::backend::SimulatedBackend) drives one
//! engine whose events are boxed closures capturing an `Rc<RefCell<…>>`
//! of the whole backend state — perfectly fine at workstation scale, but
//! at 10k nodes and a million tasks the per-event allocation, the
//! refcount churn, and the single monolithic priority queue dominate the
//! run. This backend keeps the *semantics* and changes the engine
//! underneath:
//!
//! * **Typed events, slab state.** Events are a small `Copy` enum; all
//!   mutable state lives in flat storage (`Vec`-indexed task records, a
//!   [`Slab`] of running attempts) addressed by integer handles. No
//!   closure boxing, no `Rc`, no per-event allocation on the hot path.
//! * **Sharded event queues.** The event set is partitioned across
//!   `shards` independent [`EventQueue`]s — completion, crash, and
//!   recover events hash to their node's shard; global events (bootstrap,
//!   placement scans, retry requeues) live on shard 0. The driver
//!   advances all shards to a conservative lookahead horizon (the minimum
//!   head time across shards), drains every event at that instant, and
//!   applies them in global sequence order.
//! * **Deterministic merge.** Every scheduled event carries a global
//!   sequence number assigned in scheduling order — the same order the
//!   sequential engine assigns its `EventId`s. Sorting each instant's
//!   batch by sequence therefore replays the sequential engine's event
//!   order *exactly*: the sharded backend is bit-identical to
//!   [`SimulatedBackend`](crate::backend::SimulatedBackend) (completions,
//!   virtual clocks, metrics, and the full telemetry trace), which the
//!   256-case differential test below proves on random campaigns.
//! * **Optional parallel drive.** With
//!   [`RuntimeConfig::parallel_shards`](crate::RuntimeConfig), each shard
//!   queue is owned by a worker thread (on the same `crate::sync` channel
//!   substrate as the threaded backend) and the per-horizon queue
//!   operations — batched inserts, cancellations, drains — run
//!   concurrently. Both drive modes execute the same `sync_queue`
//!   routine, so the event stream is identical; only queue ownership
//!   changes.
//!
//! Granularity caveat: the sequential engine interleaves driver calls
//! (submit/cancel between `next_completion`s) *between* same-instant
//! events; this backend delivers a whole instant's completions before the
//! driver runs again. Drivers that submit in reaction to a completion see
//! identical placements as long as they do not race other events at that
//! exact microsecond — the standard submit-then-drain protocols (and all
//! repo workloads) satisfy this.

use crate::backend::{Completion, ExecutionBackend, TaskError};
use crate::control::{ControlPlane, ControlStats};
use crate::fault::{
    dilate_span, AttemptFault, FaultPlan, HedgePolicy, QuarantinePolicy, RetryPolicy, SlowWindow,
};
use crate::pilot::{PhaseBreakdown, PilotConfig};
use crate::profiler::UtilizationReport;
use crate::resources::Allocation;
use crate::runtime::RuntimeConfig;
use crate::scheduler::Scheduler;
use crate::states::{StateCell, TaskState};
use crate::task::{TaskDescription, TaskId, TaskWork};
use impress_sim::{EventId, EventQueue, SimDuration, SimRng, SimTime, Slab, SlotId};
use impress_telemetry::{track, SpanCat, SpanId, Stamp, Telemetry};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

use super::{msg_key, MSG_CANCEL, MSG_DONE, MSG_HEDGE, MSG_RETRY, MSG_SUBMIT};

/// A simulation event. `Copy`, six machine words: scheduling one costs a
/// heap-free push into a shard's outbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Pilot bootstrap completes; placement may begin.
    Bootstrap,
    /// Coalesced submit-triggered placement scan.
    PlaceScan,
    /// A placed attempt reaches its modeled end. Stale deliveries (the
    /// attempt was evicted in the same instant's batch) are suppressed by
    /// the `attempt` check against the running record.
    Complete { task: u64, attempt: u32 },
    /// A faulted task's retry backoff expires; re-enqueue it.
    Requeue { task: u64 },
    /// A node crashes: drain it and evict resident attempts.
    Crash { node: u32 },
    /// A crashed node recovers.
    Recover { node: u32 },
    /// A hedge check: if the armed attempt is still running, place a
    /// speculative duplicate. Stale deliveries are suppressed by the
    /// `attempt` comparison, exactly like [`Ev::Complete`].
    HedgeCheck { task: u64, attempt: u32 },
    /// A hedge duplicate reaches its modeled end and wins the race.
    HedgeWin { task: u64, attempt: u32 },
    /// Control plane on: a routed submit command arrives at the
    /// coordinator — the task enters the queue here, not at the client
    /// call. Duplicated arrivals are absorbed by the dedup set.
    SubmitArrive { task: u64 },
    /// Control plane on: a routed completion report arrives. The dedup
    /// set makes duplicated reports apply once; the lease fence (attempt
    /// epoch vs the running record) turns away reports superseded by a
    /// suspicion eviction.
    DeliverDone { task: u64, attempt: u32 },
    /// Control plane on: a routed hedge-completion report arrives, with
    /// the same dedup/fence discipline as [`Ev::DeliverDone`].
    DeliverHedge { task: u64, attempt: u32 },
    /// Control plane on: a routed retry verdict arrives; requeue the task
    /// (duplicated verdicts requeue once via dedup).
    RetryArrive { task: u64, attempt: u32 },
    /// Control plane on: a cancel acknowledgment arrives at the client;
    /// the terminal `Canceled` completion surfaces here.
    CancelAck { task: u64, attempt: u32 },
    /// Control plane on: one heartbeat tick for a node — draw the seeded
    /// delivery verdict, arm the suspicion check, schedule the next tick.
    HeartbeatSend { node: u32 },
    /// Control plane on: a heartbeat reached the coordinator.
    HeartbeatArrive { node: u32 },
    /// Control plane on: the suspicion check armed one timeout after a
    /// heartbeat send.
    SuspectCheck { node: u32 },
}

/// Queue payload: global sequence number (the deterministic merge key,
/// mirroring the sequential engine's `EventId` order) plus the event.
type Item = (u64, Ev);

/// Attempt outcome decided at placement, held in the running record so
/// the completion event itself stays `Copy`.
#[derive(Debug, Clone, Copy)]
enum Planned {
    /// Runs to completion; execute the work closure at the end.
    Finish,
    /// Injected transient fault after full occupancy.
    Injected,
    /// Walltime expiry at the stored limit.
    TimedOut(SimDuration),
}

/// Span bookkeeping for one in-flight task (all `SpanId::NONE` when
/// telemetry is disabled).
#[derive(Clone, Copy)]
struct TaskSpans {
    task: SpanId,
    queue: SpanId,
    attempt: SpanId,
    queued_at: SimTime,
}

/// One submitted task, indexed by its id in the flat task table.
struct Task {
    name: String,
    tag: String,
    request: crate::resources::ResourceRequest,
    priority: i32,
    duration: SimDuration,
    gpu_busy_fraction: f64,
    kind: crate::task::TaskKind,
    walltime: Option<SimDuration>,
    attempts: u32,
    work: Option<TaskWork>,
    state: StateCell,
    spans: TaskSpans,
    /// Slab handle of the current running attempt, if placed.
    running: Option<SlotId>,
    /// Whether a hedged duplicate was ever placed for this task.
    hedged: bool,
}

/// A placed attempt: everything needed to complete, evict, or waste it.
struct Running {
    task: u64,
    attempt: u32,
    alloc: Allocation,
    started: SimTime,
    setup: SimDuration,
    outcome: Planned,
    /// Where the completion event lives, for cancellation on eviction.
    shard: usize,
    event: EventId,
}

/// A live hedge duplicate (at most one per task).
struct HedgeRun {
    /// The main attempt number this duplicate shadows.
    attempt: u32,
    alloc: Allocation,
    started: SimTime,
    setup: SimDuration,
    /// Where the [`Ev::HedgeWin`] event lives, for cancellation when the
    /// main attempt settles first.
    shard: usize,
    event: EventId,
}

/// Aggregate utilization accounting. The per-device
/// [`Profiler`](crate::profiler::Profiler) keeps a busy-interval list per
/// core and per GPU — ~1.3 GB of trackers at 10k nodes. Campaign reports
/// only need cluster-wide means, which a running occupancy integral
/// (`Σ busy_devices × dt`) computes in O(1) per placement/completion:
/// mathematically identical to the mean over per-device ratios, since
/// every device shares the same `[0, end]` window.
struct AggregateUtil {
    cores_total: u64,
    gpus_total: u64,
    busy_cores: u64,
    busy_gpus: u64,
    last: SimTime,
    core_busy_us: u128,
    gpu_slot_busy_us: u128,
    /// GPU hardware-busy device-microseconds (fraction-weighted).
    gpu_hw_us: f64,
    tasks: usize,
    retries: usize,
    wasted_core_seconds: f64,
    wasted_gpu_seconds: f64,
    hedges: usize,
    hedge_wasted_core_seconds: f64,
    hedge_wasted_gpu_seconds: f64,
}

impl AggregateUtil {
    fn new(cores: u32, gpus: u32, nodes: u32) -> Self {
        AggregateUtil {
            cores_total: cores as u64 * nodes as u64,
            gpus_total: gpus as u64 * nodes as u64,
            busy_cores: 0,
            busy_gpus: 0,
            last: SimTime::ZERO,
            core_busy_us: 0,
            gpu_slot_busy_us: 0,
            gpu_hw_us: 0.0,
            tasks: 0,
            retries: 0,
            wasted_core_seconds: 0.0,
            wasted_gpu_seconds: 0.0,
            hedges: 0,
            hedge_wasted_core_seconds: 0.0,
            hedge_wasted_gpu_seconds: 0.0,
        }
    }

    /// Integrate occupancy up to `now`.
    fn tick(&mut self, now: SimTime) {
        let dt = now.since(self.last).as_micros() as u128;
        self.core_busy_us += self.busy_cores as u128 * dt;
        self.gpu_slot_busy_us += self.busy_gpus as u128 * dt;
        self.last = now;
    }

    fn place(&mut self, alloc: &Allocation, now: SimTime) {
        self.tick(now);
        self.busy_cores += alloc.core_ids.len() as u64;
        self.busy_gpus += alloc.gpu_ids.len() as u64;
    }

    fn finish(&mut self, alloc: &Allocation, started: SimTime, now: SimTime, fraction: f64) {
        self.tick(now);
        self.busy_cores -= alloc.core_ids.len() as u64;
        self.busy_gpus -= alloc.gpu_ids.len() as u64;
        let busy = now.since(started).mul_f64(fraction.clamp(0.0, 1.0));
        self.gpu_hw_us += busy.as_micros() as f64 * alloc.gpu_ids.len() as f64;
        self.tasks += 1;
    }

    fn waste(&mut self, alloc: &Allocation, started: SimTime, at: SimTime) {
        self.tick(at);
        self.busy_cores -= alloc.core_ids.len() as u64;
        self.busy_gpus -= alloc.gpu_ids.len() as u64;
        let secs = at.since(started).as_secs_f64();
        self.wasted_core_seconds += secs * alloc.core_ids.len() as f64;
        self.wasted_gpu_seconds += secs * alloc.gpu_ids.len() as f64;
    }

    fn note_retry(&mut self) {
        self.retries += 1;
    }

    fn note_hedge(&mut self) {
        self.hedges += 1;
    }

    /// End a hedge loser's occupancy, booking it into the hedge-waste
    /// pools (kept apart from retry waste in the report).
    fn hedge_waste(&mut self, alloc: &Allocation, started: SimTime, at: SimTime) {
        self.tick(at);
        self.busy_cores -= alloc.core_ids.len() as u64;
        self.busy_gpus -= alloc.gpu_ids.len() as u64;
        let secs = at.since(started).as_secs_f64();
        self.hedge_wasted_core_seconds += secs * alloc.core_ids.len() as f64;
        self.hedge_wasted_gpu_seconds += secs * alloc.gpu_ids.len() as f64;
    }

    fn report(&self, end: SimTime) -> UtilizationReport {
        let end_us = end.as_micros() as f64;
        let tail = end.since(self.last).as_micros() as u128;
        let core_us = (self.core_busy_us + self.busy_cores as u128 * tail) as f64;
        let gpu_us = (self.gpu_slot_busy_us + self.busy_gpus as u128 * tail) as f64;
        let frac = |busy_us: f64, devices: u64| {
            if devices == 0 || end_us == 0.0 {
                0.0
            } else {
                busy_us / (devices as f64 * end_us)
            }
        };
        UtilizationReport {
            cpu: frac(core_us, self.cores_total),
            gpu_slot: frac(gpu_us, self.gpus_total),
            gpu_hardware: frac(self.gpu_hw_us, self.gpus_total),
            makespan: end.since(SimTime::ZERO),
            tasks: self.tasks,
            retries: self.retries,
            wasted_core_seconds: self.wasted_core_seconds,
            wasted_gpu_seconds: self.wasted_gpu_seconds,
            hedges: self.hedges,
            hedge_wasted_core_seconds: self.hedge_wasted_core_seconds,
            hedge_wasted_gpu_seconds: self.hedge_wasted_gpu_seconds,
        }
    }
}

/// One shard queue sync: apply staged inserts, then cancellations (so a
/// cancel may target an id staged in the same sync), then optionally
/// drain every event at exactly `drain`. Returns the drained events and
/// the queue's next head time. Both drive modes — in-process and worker
/// thread — run exactly this routine, which is what makes them
/// event-identical.
fn sync_queue(
    q: &mut EventQueue<Item>,
    pushes: Vec<(SimTime, Item)>,
    cancels: Vec<EventId>,
    drain: Option<SimTime>,
) -> Reply {
    let _ = q.schedule_batch(pushes);
    for id in cancels {
        // A cancel may race an event already delivered in this instant's
        // batch; the queue's exact-cancel contract makes that a clean no-op.
        let _ = q.cancel(id);
    }
    let mut events = Vec::new();
    if let Some(t) = drain {
        while q.peek_time() == Some(t) {
            events.push(q.pop().expect("peeked event pops").payload);
        }
    }
    Reply {
        events,
        next: q.peek_time(),
    }
}

/// Command to a shard (worker thread mode).
enum Cmd {
    Sync {
        pushes: Vec<(SimTime, Item)>,
        cancels: Vec<EventId>,
        drain: Option<SimTime>,
    },
    Shutdown,
}

/// A shard's answer to [`Cmd::Sync`].
struct Reply {
    events: Vec<Item>,
    next: Option<SimTime>,
}

/// Worker threads owning the shard queues (parallel drive mode).
struct WorkerPool {
    txs: Vec<crate::sync::Sender<Cmd>>,
    rxs: Vec<crate::sync::Receiver<Reply>>,
    joins: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(n: usize) -> Self {
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        let mut joins = Vec::with_capacity(n);
        for _ in 0..n {
            let (ctx, crx) = crate::sync::channel::<Cmd>();
            let (rtx, rrx) = crate::sync::channel::<Reply>();
            joins.push(std::thread::spawn(move || {
                let mut q: EventQueue<Item> = EventQueue::new();
                while let Ok(cmd) = crx.recv() {
                    match cmd {
                        Cmd::Sync {
                            pushes,
                            cancels,
                            drain,
                        } => {
                            if rtx.send(sync_queue(&mut q, pushes, cancels, drain)).is_err() {
                                break;
                            }
                        }
                        Cmd::Shutdown => break,
                    }
                }
            }));
            txs.push(ctx);
            rxs.push(rrx);
        }
        WorkerPool { txs, rxs, joins }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for tx in &self.txs {
            let _ = tx.send(Cmd::Shutdown);
        }
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

/// Who owns the shard queues.
enum ShardStore {
    /// In-process: the driver syncs each queue inline.
    Serial(Vec<EventQueue<Item>>),
    /// Worker threads: syncs for all selected shards run concurrently.
    Parallel(WorkerPool),
}

/// Driver-side bookkeeping for one shard.
#[derive(Default)]
struct ShardMeta {
    /// Events staged since the last sync.
    outbox: Vec<(SimTime, Item)>,
    /// Cancellations staged since the last sync.
    cancels: Vec<EventId>,
    /// Mirror of the queue's id counter: ids are assigned in push order,
    /// so the driver predicts each staged event's [`EventId`] without a
    /// round trip.
    next_id: u64,
    /// Head time after the last sync (the shard's lookahead bound).
    peek: Option<SimTime>,
    /// Whether `outbox`/`cancels` hold anything.
    dirty: bool,
}

/// The sharded virtual-time pilot backend. Behavior (and, for a given
/// seed, the exact event stream) matches
/// [`SimulatedBackend`](crate::backend::SimulatedBackend); see the module
/// docs for what differs underneath.
pub struct ShardedBackend {
    nshards: usize,
    store: ShardStore,
    shards: Vec<ShardMeta>,
    now: SimTime,
    /// Global scheduling sequence — the deterministic merge key.
    next_seq: u64,
    scheduler: Scheduler,
    util: AggregateUtil,
    breakdown: PhaseBreakdown,
    /// Task records indexed by task id (ids are assigned densely from 0).
    tasks: Vec<Option<Task>>,
    running: Slab<Running>,
    completions: VecDeque<Completion>,
    in_flight: usize,
    exec_setup: SimDuration,
    bootstrapped: bool,
    faults: FaultPlan,
    retry: RetryPolicy,
    backoff_rng: SimRng,
    deadline: Option<SimTime>,
    held: Vec<u64>,
    place_event_pending: bool,
    telemetry: Telemetry,
    config: PilotConfig,
    /// Scratch: the current instant's merged event batch.
    batch: Vec<Item>,
    /// Scratch: queue-wait samples for one placement round, flushed via
    /// a single batched histogram observation.
    queue_waits: Vec<f64>,
    /// Hedged speculative execution policy (`None` = off, a strict no-op).
    hedge: Option<HedgePolicy>,
    /// Poison-task quarantine policy (`None` = off, a strict no-op).
    quarantine: Option<QuarantinePolicy>,
    /// Per-node slowdown windows; empty when no slowdowns are configured.
    slow: Vec<Vec<SlowWindow>>,
    /// Shape-class runtime estimates from useful completions:
    /// `(cores, gpus) → (completions, total span micros)`.
    estimates: HashMap<(u32, u32), (u64, u128)>,
    /// Live hedge duplicates, keyed by task id (at most one per task).
    hedge_running: HashMap<u64, HedgeRun>,
    /// Distinct nodes each task has failed on (quarantine only).
    failed_nodes: HashMap<u64, Vec<u32>>,
    /// Poisoned lineage count per shape class (quarantine breaker).
    shape_poison: HashMap<(u32, u32), u32>,
    /// The seeded control plane (`None` = link faults off, a strict
    /// no-op: no extra events, no randomness, no routing).
    control: Option<ControlPlane>,
    /// Control-plane resilience counters (all zero while `control` is
    /// `None`).
    cstats: ControlStats,
    /// Failure detector: last heartbeat arrival per node.
    last_heard: Vec<SimTime>,
    /// Nodes currently declared suspect by the detector.
    suspected: Vec<bool>,
    /// Ground-truth node health (set by crash/recover events); a crashed
    /// node emits no heartbeats and cannot be resynced by one.
    crashed: Vec<bool>,
    /// Per-node heartbeat sequence numbers (message identity).
    hb_seq: Vec<u64>,
    /// Whether heartbeat chains are currently ticking. Chains retire
    /// themselves when the coordinator goes idle and restart on submit,
    /// so a drained run still exhausts its event queues.
    hb_live: bool,
    /// Idempotent-dedup set: message identities whose effects have been
    /// applied. A second arrival of the same identity is absorbed.
    seen: HashSet<(u64, u32, u8)>,
    /// Cancel acks in flight: `Ev` is `Copy`, so the completion's strings
    /// are stashed here between the cancel call and the ack's delivery.
    canceled_acks: HashMap<u64, (String, String, bool)>,
}

impl ShardedBackend {
    /// Start a pilot with default sharding (8 shards, in-process drive).
    /// Bootstrap begins at `t = 0`; no task can start before
    /// `config.bootstrap` has elapsed.
    pub fn new(config: PilotConfig) -> Self {
        Self::from_config(RuntimeConfig::new(config))
    }

    /// Start a pilot under a full [`RuntimeConfig`] — fault plan + retry
    /// policy, walltime deadline, telemetry, shard count, and drive mode.
    pub fn from_config(runtime: RuntimeConfig) -> Self {
        let RuntimeConfig {
            pilot: config,
            faults,
            retry,
            deadline,
            telemetry,
            shards,
            parallel_shards,
            hedge,
            quarantine,
            ..
        } = runtime;
        let nshards = shards.max(1);
        // Per-node slowdown schedules, realized once — the same
        // `fork_idx("node-slow", n)` draws as the sequential backend, so
        // both engines see identical windows.
        let slow: Vec<Vec<SlowWindow>> = (0..config.nodes)
            .map(|n| faults.slowdown_windows(n))
            .collect();
        let backoff_rng = SimRng::from_seed(config.seed).fork("retry-backoff");
        let control = ControlPlane::from_plan(&faults);
        let node_count = config.nodes as usize;
        // Bootstrap completes at a known instant: record its span up front.
        let boot = telemetry.span(
            SpanCat::Pilot,
            "bootstrap",
            SpanId::NONE,
            track::PILOT,
            Stamp::virt(SimTime::ZERO),
            &[],
        );
        telemetry.end(boot, Stamp::virt(SimTime::ZERO + config.bootstrap));
        let store = if parallel_shards {
            ShardStore::Parallel(WorkerPool::spawn(nshards))
        } else {
            ShardStore::Serial((0..nshards).map(|_| EventQueue::new()).collect())
        };
        let mut backend = ShardedBackend {
            nshards,
            store,
            shards: (0..nshards).map(|_| ShardMeta::default()).collect(),
            now: SimTime::ZERO,
            next_seq: 0,
            scheduler: Scheduler::new_cluster(config.cluster(), config.policy),
            util: AggregateUtil::new(config.node.cores, config.node.gpus, config.nodes),
            breakdown: PhaseBreakdown {
                bootstrap: config.bootstrap,
                ..Default::default()
            },
            tasks: Vec::new(),
            running: Slab::new(),
            completions: VecDeque::new(),
            in_flight: 0,
            exec_setup: config.exec_setup_per_task,
            bootstrapped: false,
            faults,
            retry,
            backoff_rng,
            deadline,
            held: Vec::new(),
            place_event_pending: false,
            telemetry,
            config,
            batch: Vec::new(),
            queue_waits: Vec::new(),
            hedge,
            quarantine,
            slow,
            estimates: HashMap::new(),
            hedge_running: HashMap::new(),
            failed_nodes: HashMap::new(),
            shape_poison: HashMap::new(),
            control,
            cstats: ControlStats::default(),
            last_heard: vec![SimTime::ZERO; node_count],
            suspected: vec![false; node_count],
            crashed: vec![false; node_count],
            hb_seq: vec![0; node_count],
            hb_live: false,
            seen: HashSet::new(),
            canceled_acks: HashMap::new(),
        };
        // Event construction order mirrors the sequential engine exactly:
        // bootstrap first, then each node's crash/recover windows — so
        // global sequence numbers coincide with its EventIds.
        backend.schedule(SimTime::ZERO + backend.config.bootstrap, Ev::Bootstrap);
        for node in 0..backend.config.nodes {
            let windows = backend.faults.crash_windows(node);
            for (crash_at, recover_at) in windows {
                backend.schedule(crash_at, Ev::Crash { node });
                backend.schedule(recover_at, Ev::Recover { node });
            }
        }
        backend
    }

    /// The pilot configuration this backend runs.
    pub fn config(&self) -> &PilotConfig {
        &self.config
    }

    /// Number of event-queue shards.
    pub fn shard_count(&self) -> usize {
        self.nshards
    }

    /// Stage an event on `shard`, returning its predicted queue id.
    fn schedule_on(&mut self, shard: usize, at: SimTime, ev: Ev) -> (usize, EventId) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let meta = &mut self.shards[shard];
        let id = EventId(meta.next_id);
        meta.next_id += 1;
        meta.outbox.push((at, (seq, ev)));
        meta.dirty = true;
        (shard, id)
    }

    /// Stage an event on its home shard: node-owned events hash to their
    /// node, global (hub-link) events live on shard 0.
    fn schedule(&mut self, at: SimTime, ev: Ev) -> (usize, EventId) {
        let shard = match ev {
            Ev::Crash { node }
            | Ev::Recover { node }
            | Ev::HeartbeatSend { node }
            | Ev::HeartbeatArrive { node }
            | Ev::SuspectCheck { node } => node as usize % self.nshards,
            _ => 0,
        };
        self.schedule_on(shard, at, ev)
    }

    /// Stage a cancellation for the next sync of `shard`.
    fn cancel_event(&mut self, shard: usize, id: EventId) {
        let meta = &mut self.shards[shard];
        meta.cancels.push(id);
        meta.dirty = true;
    }

    /// Sync shard queues. With `drain = None` this flushes staged work on
    /// dirty shards and refreshes their head times. With `drain = Some(t)`
    /// it additionally selects shards whose head is at `t` and pulls every
    /// event at that instant into `self.batch`. In parallel mode all
    /// selected shards sync concurrently (fan out, then collect).
    fn sync_shards(&mut self, drain: Option<SimTime>) {
        match &mut self.store {
            ShardStore::Serial(queues) => {
                for (meta, q) in self.shards.iter_mut().zip(queues.iter_mut()) {
                    if !meta.dirty && !(drain.is_some() && meta.peek == drain) {
                        continue;
                    }
                    let reply = sync_queue(
                        q,
                        std::mem::take(&mut meta.outbox),
                        std::mem::take(&mut meta.cancels),
                        drain,
                    );
                    meta.dirty = false;
                    meta.peek = reply.next;
                    self.batch.extend(reply.events);
                }
            }
            ShardStore::Parallel(pool) => {
                let mut sent: Vec<usize> = Vec::new();
                for (i, meta) in self.shards.iter_mut().enumerate() {
                    if !meta.dirty && !(drain.is_some() && meta.peek == drain) {
                        continue;
                    }
                    pool.txs[i]
                        .send(Cmd::Sync {
                            pushes: std::mem::take(&mut meta.outbox),
                            cancels: std::mem::take(&mut meta.cancels),
                            drain,
                        })
                        .expect("shard worker alive");
                    sent.push(i);
                }
                for i in sent {
                    let reply = pool.rxs[i].recv().expect("shard worker replies");
                    let meta = &mut self.shards[i];
                    meta.dirty = false;
                    meta.peek = reply.next;
                    self.batch.extend(reply.events);
                }
            }
        }
    }

    /// The conservative lookahead horizon: flush staged work, then take
    /// the earliest head time across shards. No shard can hold an event
    /// earlier than this, so the whole instant is safe to process.
    fn horizon(&mut self) -> Option<SimTime> {
        self.sync_shards(None);
        self.shards.iter().filter_map(|m| m.peek).min()
    }

    /// Advance to the next event instant and process *all* of it: drain
    /// every shard's events at the horizon, sort by global sequence, and
    /// apply — repeating while handlers schedule more work at the same
    /// instant. Returns `false` when no events remain anywhere.
    fn pump(&mut self) -> bool {
        let Some(t) = self.horizon() else {
            return false;
        };
        self.now = t;
        loop {
            self.sync_shards(Some(t));
            let mut batch = std::mem::take(&mut self.batch);
            if batch.is_empty() {
                self.batch = batch;
                return true;
            }
            batch.sort_unstable_by_key(|&(seq, _)| seq);
            for &(_, ev) in &batch {
                self.apply(ev, t);
            }
            batch.clear();
            self.batch = batch;
        }
    }

    /// Dispatch one event — the bodies mirror the sequential backend's
    /// event closures statement for statement.
    fn apply(&mut self, ev: Ev, now: SimTime) {
        match ev {
            Ev::Bootstrap => {
                self.bootstrapped = true;
                self.place_ready(now);
            }
            Ev::PlaceScan => {
                self.place_event_pending = false;
                self.place_ready(now);
            }
            Ev::Complete { task, attempt } => self.complete(task, attempt, now),
            Ev::Requeue { task } => self.requeue(task, now),
            Ev::Crash { node } => self.crash(node, now),
            Ev::Recover { node } => self.recover(node, now),
            Ev::HedgeCheck { task, attempt } => self.hedge_check(task, attempt, now),
            Ev::HedgeWin { task, attempt } => self.hedge_win(task, attempt, now),
            Ev::SubmitArrive { task } => self.deliver_submit(task, now),
            Ev::DeliverDone { task, attempt } => self.deliver_done(task, attempt, now),
            Ev::DeliverHedge { task, attempt } => self.deliver_hedge(task, attempt, now),
            Ev::RetryArrive { task, attempt } => self.deliver_retry(task, attempt, now),
            Ev::CancelAck { task, attempt } => self.deliver_cancel(task, attempt, now),
            Ev::HeartbeatSend { node } => self.heartbeat_send(node, now),
            Ev::HeartbeatArrive { node } => self.heartbeat_arrive(node, now),
            Ev::SuspectCheck { node } => self.suspect_check(node, now),
        }
    }

    /// A completion event fires: finish the attempt (running its work) or
    /// end a doomed one. Stale deliveries — the attempt was evicted by a
    /// crash earlier in this same instant's batch — are dropped here,
    /// exactly where the sequential engine's `cancel` would have
    /// suppressed them.
    fn complete(&mut self, task: u64, attempt: u32, now: SimTime) {
        let slot = match self.tasks[task as usize].as_ref().and_then(|t| t.running) {
            Some(slot) if self.running.get(slot).is_some_and(|r| r.attempt == attempt) => slot,
            _ => return,
        };
        let run = self.running.remove(slot);
        self.tasks[task as usize]
            .as_mut()
            .expect("running task has a record")
            .running = None;
        // A live hedge duplicate lost the race to this settlement (or
        // shares the attempt's failure): cancel it first.
        self.settle_hedge_loser(task, true, now);
        match run.outcome {
            Planned::Finish => {
                self.finish_task(TaskId(task), run.alloc, run.started, now, run.setup);
            }
            Planned::Injected | Planned::TimedOut(_) => {
                let err = match run.outcome {
                    Planned::Injected => TaskError::Injected,
                    Planned::TimedOut(limit) => TaskError::TimedOut { limit },
                    Planned::Finish => unreachable!("finish handled above"),
                };
                let node = run.alloc.node;
                self.util.waste(&run.alloc, run.started, now);
                self.scheduler.release_owned(run.alloc);
                self.fail_attempt(TaskId(task), err, run.started, now, node);
            }
        }
        self.place_ready(now);
    }

    /// Route a control message through the plane: `Some((primary,
    /// duplicate))` arrival instants with delivery stats booked, or `None`
    /// when the plane is off and the caller must take its direct
    /// (pre-control-plane) path.
    fn route(
        &mut self,
        label: &str,
        key: u64,
        node: Option<u32>,
        sent: SimTime,
    ) -> Option<(SimTime, Option<SimTime>)> {
        let cp = self.control.as_ref()?;
        let d = cp.deliveries(label, key, node, sent);
        self.cstats.messages += 1;
        self.cstats.retransmits += u64::from(d.transmissions.saturating_sub(1));
        if d.duplicate.is_some() {
            self.cstats.duplicates += 1;
        }
        Some((d.primary, d.duplicate))
    }

    /// At-least-once meets exactly-once: the first arrival of a message
    /// identity claims it and applies; a repeat arrival is absorbed here.
    /// Returns true when this arrival is the duplicate.
    fn dedup(&mut self, task: u64, attempt: u32, kind: u8, at: SimTime) -> bool {
        if self.seen.insert((task, attempt, kind)) {
            return false;
        }
        self.cstats.dedup_hits += 1;
        if self.telemetry.enabled() {
            let owner = self.tasks[task as usize]
                .as_ref()
                .map(|t| t.spans.task)
                .unwrap_or(SpanId::NONE);
            self.telemetry.instant(
                SpanCat::Control,
                "dedup-hit",
                owner,
                track::task(task),
                Stamp::virt(at),
                &[("attempt", attempt as i64), ("kind", kind as i64)],
            );
            self.telemetry.count("dedup_hits", 1);
        }
        true
    }

    /// Book a fenced completion: a report whose lease epoch no longer
    /// matches the coordinator's record (the attempt was evicted and
    /// superseded). Its effects are discarded — the core of the
    /// no-split-brain guarantee.
    fn fence(&mut self, task: u64, attempt: u32, at: SimTime) {
        self.cstats.fenced_completions += 1;
        if self.telemetry.enabled() {
            let owner = self.tasks[task as usize]
                .as_ref()
                .map(|t| t.spans.task)
                .unwrap_or(SpanId::NONE);
            self.telemetry.instant(
                SpanCat::Control,
                "fenced-completion",
                owner,
                track::task(task),
                Stamp::virt(at),
                &[("attempt", attempt as i64)],
            );
            self.telemetry.count("fenced_completions", 1);
        }
    }

    /// Arrival of a completion report at the coordinator (control plane
    /// on): the routed twin of [`ShardedBackend::complete`], with dedup
    /// and the lease fence in front of the settlement.
    fn deliver_done(&mut self, task: u64, attempt: u32, now: SimTime) {
        if self.dedup(task, attempt, MSG_DONE, now) {
            return;
        }
        let slot = match self.tasks[task as usize].as_ref().and_then(|t| t.running) {
            Some(slot) if self.running.get(slot).is_some_and(|r| r.attempt == attempt) => slot,
            _ => {
                self.fence(task, attempt, now);
                return;
            }
        };
        let run = self.running.remove(slot);
        self.tasks[task as usize]
            .as_mut()
            .expect("running task has a record")
            .running = None;
        // A live hedge duplicate lost the race to this settlement.
        self.settle_hedge_loser(task, true, now);
        match run.outcome {
            Planned::Finish => {
                self.finish_task(TaskId(task), run.alloc, run.started, now, run.setup);
            }
            Planned::Injected | Planned::TimedOut(_) => {
                let err = match run.outcome {
                    Planned::Injected => TaskError::Injected,
                    Planned::TimedOut(limit) => TaskError::TimedOut { limit },
                    Planned::Finish => unreachable!("finish handled above"),
                };
                let node = run.alloc.node;
                self.util.waste(&run.alloc, run.started, now);
                self.scheduler.release_owned(run.alloc);
                self.fail_attempt(TaskId(task), err, run.started, now, node);
            }
        }
        self.place_ready(now);
    }

    /// Arrival of a submit command at the coordinator (control plane on):
    /// the task enters the scheduler queue here, not at the client call.
    fn deliver_submit(&mut self, task: u64, now: SimTime) {
        if self.dedup(task, 0, MSG_SUBMIT, now) {
            return;
        }
        let (request, priority) = {
            let t = self.tasks[task as usize]
                .as_ref()
                .expect("submitted task has a record");
            (t.request, t.priority)
        };
        self.scheduler
            .enqueue_with_priority(TaskId(task), request, priority);
        if self.telemetry.enabled() {
            self.telemetry
                .gauge("queue_depth", self.scheduler.queue_len() as f64);
        }
        self.place_ready(now);
    }

    /// Arrival of a retry verdict (control plane on): requeue the task for
    /// its next attempt. Duplicated verdicts requeue once.
    fn deliver_retry(&mut self, task: u64, attempt: u32, now: SimTime) {
        if self.dedup(task, attempt, MSG_RETRY, now) {
            return;
        }
        let (request, priority) = {
            let t = self.tasks[task as usize]
                .as_ref()
                .expect("requeued task has a record");
            (t.request, t.priority)
        };
        self.scheduler
            .enqueue_with_priority(TaskId(task), request, priority);
        if self.telemetry.enabled() {
            let tele = self.telemetry.clone();
            let at = Stamp::virt(now);
            let t = self.tasks[task as usize]
                .as_mut()
                .expect("requeued task has a record");
            let queue = tele.span(
                SpanCat::Queue,
                "queue",
                t.spans.task,
                track::task(task),
                at,
                &[("attempt", attempt as i64)],
            );
            t.spans.queue = queue;
            t.spans.queued_at = now;
            tele.gauge("queue_depth", self.scheduler.queue_len() as f64);
        }
        self.place_ready(now);
    }

    /// Arrival of a cancel acknowledgment at the client (control plane
    /// on): the terminal `Canceled` completion surfaces here.
    fn deliver_cancel(&mut self, task: u64, attempt: u32, now: SimTime) {
        if self.dedup(task, attempt, MSG_CANCEL, now) {
            return;
        }
        let (name, tag, hedged) = self
            .canceled_acks
            .remove(&task)
            .expect("ack delivery has a stashed cancel");
        self.in_flight -= 1;
        if self.telemetry.enabled() {
            self.telemetry.gauge("in_flight", self.in_flight as f64);
        }
        self.completions.push_back(Completion {
            task: TaskId(task),
            name,
            tag,
            result: Err(TaskError::Canceled),
            started: now,
            finished: now,
            attempts: attempt,
            hedged,
        });
    }

    /// Arrival of a hedge duplicate's completion report (control plane
    /// on): the routed twin of [`ShardedBackend::hedge_win`], with the
    /// same dedup/fence discipline as main-attempt reports.
    fn deliver_hedge(&mut self, task: u64, attempt: u32, now: SimTime) {
        if self.dedup(task, attempt, MSG_HEDGE, now) {
            return;
        }
        let hedge = match self.hedge_running.get(&task) {
            Some(h) if h.attempt == attempt => {
                self.hedge_running.remove(&task).expect("probed just above")
            }
            _ => {
                self.fence(task, attempt, now);
                return;
            }
        };
        let slot = self.tasks[task as usize].as_mut().and_then(|t| t.running.take());
        let Some(slot) = slot else {
            // No live main to rescue (it was evicted between the hedge's
            // finish and this delivery): book the duplicate as waste. The
            // freed slots can admit queued work, so re-scan.
            self.util.hedge_waste(&hedge.alloc, hedge.started, now);
            self.scheduler.release_owned(hedge.alloc);
            self.fence(task, attempt, now);
            self.place_ready(now);
            return;
        };
        let run = self.running.remove(slot);
        self.cancel_event(run.shard, run.event);
        self.util.hedge_waste(&run.alloc, run.started, now);
        self.scheduler.release_owned(run.alloc);
        if self.telemetry.enabled() {
            let tele = self.telemetry.clone();
            let owner = self.tasks[task as usize]
                .as_ref()
                .map(|t| t.spans.attempt)
                .unwrap_or(SpanId::NONE);
            tele.instant(
                SpanCat::Hedge,
                "hedge-win",
                owner,
                track::task(task),
                Stamp::virt(now),
                &[("node", hedge.alloc.node as i64)],
            );
            tele.count("hedge_wins", 1);
        }
        self.finish_task(TaskId(task), hedge.alloc, hedge.started, now, hedge.setup);
        self.place_ready(now);
    }

    /// (Re)start heartbeat chains under an active failure detector.
    /// Chains run only while work is in flight — each node's chain retires
    /// itself at the first tick with an idle coordinator — so a drained
    /// run still exhausts its event queues.
    fn ensure_heartbeats(&mut self, now: SimTime) {
        let interval = {
            let Some(cp) = &self.control else {
                return;
            };
            let link = cp.link();
            let (Some(interval), Some(_)) = (link.heartbeat_interval, link.heartbeat_timeout)
            else {
                return;
            };
            if self.hb_live {
                return;
            }
            interval
        };
        self.hb_live = true;
        // A (re)started detector grants every node a fresh grace period —
        // nothing can be suspected for silence that predates the detector.
        for t in self.last_heard.iter_mut() {
            *t = now;
        }
        for node in 0..self.config.nodes {
            self.schedule(now + interval, Ev::HeartbeatSend { node });
        }
    }

    /// One heartbeat tick for `node`: draw the seeded delivery verdict,
    /// schedule the arrival (if any), the suspicion check one timeout out,
    /// and the next tick one interval out — in that order on both
    /// deterministic engines.
    fn heartbeat_send(&mut self, node: u32, now: SimTime) {
        if self.in_flight == 0 {
            self.hb_live = false;
            return;
        }
        let tick = {
            let Some(cp) = &self.control else {
                return;
            };
            let link = cp.link();
            let (Some(interval), Some(timeout)) = (link.heartbeat_interval, link.heartbeat_timeout)
            else {
                return;
            };
            let seq = self.hb_seq[node as usize];
            // A crashed node emits nothing this tick; the schedule keeps
            // ticking so heartbeats resume the instant it recovers.
            let sent = !self.crashed[node as usize];
            let arrive = if sent {
                cp.best_effort("hb", (u64::from(node) << 32) | seq, node, now)
            } else {
                None
            };
            (arrive, sent, interval, timeout)
        };
        let (arrive, sent, interval, timeout) = tick;
        self.hb_seq[node as usize] += 1;
        if sent {
            self.cstats.heartbeats_sent += 1;
            if arrive.is_some() {
                self.cstats.heartbeats_delivered += 1;
            }
        }
        if let Some(at) = arrive {
            self.schedule(at, Ev::HeartbeatArrive { node });
        }
        self.schedule(now + timeout, Ev::SuspectCheck { node });
        self.schedule(now + interval, Ev::HeartbeatSend { node });
    }

    /// A heartbeat reached the coordinator: refresh the node's liveness
    /// and, if it was falsely suspected (partition, dropped heartbeats),
    /// resync — re-admit the node to placement.
    fn heartbeat_arrive(&mut self, node: u32, now: SimTime) {
        self.last_heard[node as usize] = now;
        if self.suspected[node as usize] && !self.crashed[node as usize] {
            self.suspected[node as usize] = false;
            self.cstats.resyncs += 1;
            self.scheduler.recover_node(node);
            if self.telemetry.enabled() {
                self.telemetry.instant(
                    SpanCat::Control,
                    "resync",
                    SpanId::NONE,
                    track::FAULT,
                    Stamp::virt(now),
                    &[("node", node as i64)],
                );
                self.telemetry.count("resyncs", 1);
            }
            self.place_ready(now);
        }
    }

    /// Timeout check armed one heartbeat-timeout after each send: if the
    /// node has been silent for a full timeout, declare it suspect.
    fn suspect_check(&mut self, node: u32, now: SimTime) {
        let Some(cp) = &self.control else {
            return;
        };
        let Some(timeout) = cp.link().heartbeat_timeout else {
            return;
        };
        if self.in_flight > 0
            && !self.suspected[node as usize]
            && self.scheduler.node_is_up(node)
            && self.last_heard[node as usize] + timeout <= now
        {
            self.suspect_node(node, now);
        }
    }

    /// Declare `node` suspect: stop placing on it, and evict its resident
    /// attempts — their leases are expired, so each requeues (consuming a
    /// retry) while its eventual late report is fenced out by epoch. The
    /// node-side events are *not* canceled: a falsely suspected node is
    /// healthy and its reports genuinely arrive.
    fn suspect_node(&mut self, node: u32, now: SimTime) {
        self.suspected[node as usize] = true;
        self.cstats.suspicions += 1;
        // Victims in task-id order: slab iteration order must not leak
        // into the deterministic event stream.
        let mut victims: Vec<(u64, SlotId)> = self
            .running
            .iter()
            .filter(|(_, r)| r.alloc.node == node)
            .map(|(slot, r)| (r.task, slot))
            .collect();
        victims.sort_unstable_by_key(|&(task, _)| task);
        self.scheduler.drain_node(node);
        if self.telemetry.enabled() {
            self.telemetry.instant(
                SpanCat::Control,
                "suspect",
                SpanId::NONE,
                track::FAULT,
                Stamp::virt(now),
                &[("node", node as i64)],
            );
            self.telemetry.count("suspicions", 1);
        }
        // Hedge duplicates resident on the suspected node forfeit their
        // slots exactly as under a crash (the drained pool is rebuilt).
        {
            let mut hedge_ids: Vec<u64> = self
                .hedge_running
                .iter()
                .filter(|(_, r)| r.alloc.node == node)
                .map(|(&i, _)| i)
                .collect();
            hedge_ids.sort_unstable();
            for i in hedge_ids {
                self.settle_hedge_loser(i, false, now);
            }
        }
        for (task, slot) in victims {
            let run = self.running.remove(slot);
            self.tasks[task as usize]
                .as_mut()
                .expect("victim has a record")
                .running = None;
            // The completion-report event stays live: the report genuinely
            // arrives later and is turned away by the lease fence.
            self.settle_hedge_loser(task, true, now);
            self.cstats.lease_expiries += 1;
            self.util.waste(&run.alloc, run.started, now);
            if self.telemetry.enabled() {
                let owner = self.tasks[task as usize]
                    .as_ref()
                    .map(|t| t.spans.attempt)
                    .unwrap_or(SpanId::NONE);
                self.telemetry.instant(
                    SpanCat::Control,
                    "lease-expired",
                    owner,
                    track::task(task),
                    Stamp::virt(now),
                    &[("node", node as i64), ("attempt", run.attempt as i64)],
                );
                self.telemetry.count("lease_expiries", 1);
            }
            self.fail_attempt(
                TaskId(task),
                TaskError::LeaseExpired { node },
                run.started,
                now,
                node,
            );
        }
    }

    /// Complete a successful attempt: run the work closure, free slots,
    /// book the phases, surface the completion.
    fn finish_task(
        &mut self,
        id: TaskId,
        alloc: Allocation,
        started: SimTime,
        now: SimTime,
        setup: SimDuration,
    ) {
        let mut task = self.tasks[id.0 as usize].take().expect("task record exists");
        task.state.advance(TaskState::Executing);
        let result = match task.work.take() {
            Some(work) => match catch_unwind(AssertUnwindSafe(work)) {
                Ok(out) => {
                    task.state.advance(TaskState::Done);
                    Ok(Some(out))
                }
                Err(payload) => {
                    task.state.advance(TaskState::Failed);
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic>".to_string());
                    Err(TaskError::WorkPanicked(msg))
                }
            },
            None => {
                task.state.advance(TaskState::Done);
                Ok(None)
            }
        };
        self.util
            .finish(&alloc, started, now, task.gpu_busy_fraction);
        let mut warmed = None;
        if let Some(policy) = self.hedge {
            let shape = (task.request.cores, task.request.gpus);
            let e = self.estimates.entry(shape).or_insert((0, 0));
            e.0 += 1;
            e.1 += now.since(started).as_micros() as u128;
            // Exactly the completion that makes the estimate usable:
            // attempts of this shape placed while it was cold were never
            // armed for a hedge check, so arm them below.
            if e.0 == (policy.min_samples as u64).max(1) {
                warmed = Some(shape);
            }
        }
        if self.quarantine.is_some() {
            self.failed_nodes.remove(&id.0);
        }
        self.scheduler.release_owned(alloc);
        self.breakdown
            .record_task(setup, now.since(started + setup));
        self.in_flight -= 1;
        if self.telemetry.enabled() {
            let tele = self.telemetry.clone();
            let at = Stamp::virt(now);
            tele.end(task.spans.attempt, at);
            tele.end(task.spans.task, at);
            tele.count(
                if result.is_ok() {
                    "tasks_completed"
                } else {
                    "tasks_failed"
                },
                1,
            );
            tele.gauge("in_flight", self.in_flight as f64);
            tele.observe(
                "task_run_seconds",
                0.0,
                14_400.0,
                48,
                now.since(started).as_secs_f64(),
            );
        }
        self.completions.push_back(Completion {
            task: id,
            name: task.name,
            tag: task.tag,
            result,
            started,
            finished: now,
            attempts: task.attempts,
            hedged: task.hedged,
        });
        if let Some(shape) = warmed {
            self.arm_warm_hedges(shape, now);
        }
    }

    /// A shape class's runtime estimate just became usable: attempts of
    /// the shape placed while it was cold fell back to their own span
    /// (threshold ≥ span) and were never armed, so a first-wave straggler
    /// would otherwise run unhedged forever. Arm a check for every running
    /// attempt of the shape at the instant its elapsed time crosses the
    /// threshold. Checks re-validate at fire time, so arming is idempotent;
    /// ids are sorted for a deterministic event order across engines.
    fn arm_warm_hedges(&mut self, shape: (u32, u32), now: SimTime) {
        let Some(policy) = self.hedge else {
            return;
        };
        let threshold = self
            .hedge_estimate(shape, SimDuration::ZERO, policy.min_samples)
            .mul_f64(policy.threshold);
        if threshold == SimDuration::ZERO {
            return;
        }
        let mut arms: Vec<(u64, SimDuration, u32)> = self
            .running
            .iter()
            .filter_map(|(_, run)| {
                let task = self.tasks[run.task as usize].as_ref()?;
                if (task.request.cores, task.request.gpus) != shape
                    || self.hedge_running.contains_key(&run.task)
                {
                    return None;
                }
                let elapsed = now.since(run.started);
                let wait = threshold.as_micros().saturating_sub(elapsed.as_micros());
                Some((run.task, SimDuration::from_micros(wait.max(1)), task.attempts))
            })
            .collect();
        arms.sort_unstable_by_key(|&(id, _, _)| id);
        for (task, delay, attempt) in arms {
            self.schedule(now + delay, Ev::HedgeCheck { task, attempt });
        }
    }

    /// End a failed attempt: retry within budget (after backoff, via a
    /// requeue event), or surface the error as a terminal completion.
    /// `node` is where the attempt failed (quarantine tracks distinct
    /// failing nodes per task). The attempt's slots must already be
    /// released/forfeited and its waste booked by the caller.
    fn fail_attempt(&mut self, id: TaskId, err: TaskError, started: SimTime, now: SimTime, node: u32) {
        if self.telemetry.enabled() {
            let tele = self.telemetry.clone();
            let at = Stamp::virt(now);
            let spans = self.tasks[id.0 as usize]
                .as_ref()
                .expect("failed task has a record")
                .spans;
            let fault = match &err {
                TaskError::Injected => "fault-injected",
                TaskError::TimedOut { .. } => "fault-timeout",
                TaskError::NodeCrashed { .. } => "fault-crash",
                TaskError::LeaseExpired { .. } => "fault-lease",
                TaskError::WorkPanicked(_)
                | TaskError::Canceled
                | TaskError::Poisoned { .. }
                | TaskError::ShapeCircuitOpen { .. } => "fault",
            };
            tele.instant(SpanCat::Fault, fault, spans.attempt, track::task(id.0), at, &[]);
            tele.end(spans.attempt, at);
        }
        let retry = self.retry;
        // Quarantine: record the failing node. A task failing on enough
        // *distinct* nodes is poisoned — the input, not the hardware, is
        // the likely culprit, and retrying it elsewhere is pure waste.
        let poisoned = match self.quarantine {
            Some(q) => {
                let nodes = self.failed_nodes.entry(id.0).or_default();
                if !nodes.contains(&node) {
                    nodes.push(node);
                }
                nodes.len() as u32 >= q.distinct_nodes
            }
            None => false,
        };
        let attempt = {
            let task = self.tasks[id.0 as usize]
                .as_mut()
                .expect("failed task has a record");
            task.state.advance(TaskState::Executing);
            if !poisoned && task.attempts < retry.max_retries {
                task.attempts += 1;
                task.state.advance(TaskState::Scheduling);
                Some(task.attempts)
            } else {
                None
            }
        };
        match attempt {
            Some(n) => {
                self.util.note_retry();
                self.telemetry.count("retries", 1);
                let delay = retry.backoff(n, &mut self.backoff_rng);
                // The retry verdict is a hub message sent once the backoff
                // elapses; under the control plane the requeue happens at
                // its delivery (duplicated verdicts requeue once via dedup).
                match self.route("retry", msg_key(id.0, n), None, now + delay) {
                    Some((primary, duplicate)) => {
                        self.schedule(
                            primary,
                            Ev::RetryArrive {
                                task: id.0,
                                attempt: n,
                            },
                        );
                        if let Some(dup) = duplicate {
                            self.schedule(
                                dup,
                                Ev::RetryArrive {
                                    task: id.0,
                                    attempt: n,
                                },
                            );
                        }
                    }
                    None => {
                        self.schedule(now + delay, Ev::Requeue { task: id.0 });
                    }
                }
            }
            None => {
                let mut task = self.tasks[id.0 as usize]
                    .take()
                    .expect("failed task has a record");
                task.state.advance(TaskState::Failed);
                self.in_flight -= 1;
                let distinct = self
                    .failed_nodes
                    .remove(&id.0)
                    .map(|v| v.len() as u32)
                    .unwrap_or(0);
                let err = if poisoned {
                    // Poison verdict: bump the shape class's breaker count
                    // and surface a typed terminal error.
                    let shape = (task.request.cores, task.request.gpus);
                    let count = {
                        let c = self.shape_poison.entry(shape).or_insert(0);
                        *c += 1;
                        *c
                    };
                    if self.telemetry.enabled() {
                        let tele = self.telemetry.clone();
                        let at = Stamp::virt(now);
                        tele.instant(
                            SpanCat::Quarantine,
                            "poisoned",
                            task.spans.task,
                            track::task(id.0),
                            at,
                            &[("distinct_nodes", distinct as i64)],
                        );
                        if self
                            .quarantine
                            .is_some_and(|q| q.shape_trip > 0 && count == q.shape_trip)
                        {
                            tele.instant(
                                SpanCat::Quarantine,
                                "circuit-open",
                                SpanId::NONE,
                                track::FAULT,
                                at,
                                &[("cores", shape.0 as i64), ("gpus", shape.1 as i64)],
                            );
                        }
                        tele.count("tasks_poisoned", 1);
                    }
                    TaskError::Poisoned {
                        distinct_nodes: distinct,
                    }
                } else {
                    err
                };
                if self.telemetry.enabled() {
                    let tele = self.telemetry.clone();
                    let at = Stamp::virt(now);
                    tele.end(task.spans.task, at);
                    tele.count("tasks_failed", 1);
                    tele.gauge("in_flight", self.in_flight as f64);
                }
                self.completions.push_back(Completion {
                    task: id,
                    name: task.name,
                    tag: task.tag,
                    result: Err(err),
                    started,
                    finished: now,
                    attempts: task.attempts,
                    hedged: task.hedged,
                });
            }
        }
    }

    /// The hedging threshold base for a shape class: the running mean of
    /// useful completion spans once `min_samples` have been observed, the
    /// attempt's own modeled span until then. Integer-microsecond mean, so
    /// both deterministic engines agree bit-for-bit.
    fn hedge_estimate(
        &self,
        shape: (u32, u32),
        fallback: SimDuration,
        min_samples: u32,
    ) -> SimDuration {
        match self.estimates.get(&shape) {
            Some(&(n, total)) if n >= min_samples as u64 => {
                SimDuration::from_micros((total / n as u128) as u64)
            }
            _ => fallback,
        }
    }

    /// A hedge-check event: if the attempt it was armed for is still
    /// running, place a speculative duplicate on a different node. The
    /// duplicate models a clean run — it draws *no* randomness, so the
    /// fault stream is identical with and without hedging — and whichever
    /// copy settles first wins; the loser's occupancy is booked as hedge
    /// waste. Mirrors the sequential engine statement for statement.
    fn hedge_check(&mut self, task: u64, attempt: u32, now: SimTime) {
        let Some(policy) = self.hedge else {
            return;
        };
        // Re-validate: the attempt may have settled or been superseded by a
        // retry since the check was armed, or an earlier re-arm already
        // placed a duplicate.
        let probe = match self.tasks[task as usize].as_ref() {
            Some(t) if t.attempts == attempt && !self.hedge_running.contains_key(&task) => t
                .running
                .and_then(|slot| self.running.get(slot))
                .map(|run| (t.request, run.alloc.node, t.kind, t.duration, t.walltime)),
            _ => None,
        };
        let Some((request, main_node, kind, duration, walltime)) = probe else {
            return;
        };
        let setup = self.exec_setup.saturating_add(kind.launch_overhead());
        // A node where the duplicate's own modeled span would cross the
        // straggler threshold cannot rescue anyone — a copy racing at the
        // same degraded pace loses to its head start. Skip such nodes (the
        // freed cores of an already-rescued straggler's node are the common
        // case) and keep probing the next-best allocation.
        let threshold = self
            .hedge_estimate(
                (request.cores, request.gpus),
                setup.saturating_add(duration),
                policy.min_samples,
            )
            .mul_f64(policy.threshold);
        let mut avoid = vec![main_node];
        let (alloc, span) = loop {
            let Some(alloc) = self.scheduler.alloc_avoiding(&request, &avoid) else {
                // No useful capacity off the straggler's node: re-arm after
                // roughly one estimated runtime instead of polling every
                // event.
                let est = self.hedge_estimate(
                    (request.cores, request.gpus),
                    SimDuration::from_micros(1),
                    policy.min_samples,
                );
                let delay = std::cmp::max(est, SimDuration::from_micros(1));
                self.schedule(now + delay, Ev::HedgeCheck { task, attempt });
                return;
            };
            let span = dilate_span(
                &self.slow[alloc.node as usize],
                now,
                setup.saturating_add(duration),
            );
            if span > threshold {
                avoid.push(alloc.node);
                self.scheduler.release_owned(alloc);
                continue;
            }
            break (alloc, span);
        };
        if walltime.is_some_and(|limit| limit < span) {
            // The duplicate could only time out on its own walltime — not a
            // useful hedge. Give the slots back and stand down.
            self.scheduler.release_owned(alloc);
            return;
        }
        self.tasks[task as usize]
            .as_mut()
            .expect("hedged task has a record")
            .hedged = true;
        self.util.note_hedge();
        self.util.place(&alloc, now);
        if self.telemetry.enabled() {
            let tele = self.telemetry.clone();
            let owner = self.tasks[task as usize]
                .as_ref()
                .map(|t| t.spans.attempt)
                .unwrap_or(SpanId::NONE);
            tele.instant(
                SpanCat::Hedge,
                "hedge-place",
                owner,
                track::task(task),
                Stamp::virt(now),
                &[("attempt", attempt as i64), ("node", alloc.node as i64)],
            );
            tele.count("hedges", 1);
        }
        // The hedge's completion report routes exactly like the main
        // attempt's (same link, same fence/dedup discipline).
        let home = alloc.node as usize % self.nshards;
        let (shard, event) = match self.route(
            "hedge",
            msg_key(task, attempt),
            Some(alloc.node),
            now + span,
        ) {
            Some((primary, duplicate)) => {
                let placed = self.schedule_on(home, primary, Ev::DeliverHedge { task, attempt });
                if let Some(dup) = duplicate {
                    self.schedule_on(home, dup, Ev::DeliverHedge { task, attempt });
                }
                placed
            }
            None => self.schedule_on(home, now + span, Ev::HedgeWin { task, attempt }),
        };
        self.hedge_running.insert(
            task,
            HedgeRun {
                attempt,
                alloc,
                started: now,
                setup,
                shard,
                event,
            },
        );
    }

    /// A hedge duplicate finished first: cancel the straggling main
    /// attempt, book its occupancy as hedge waste, and complete the task
    /// from the duplicate's allocation. Stale deliveries — the main
    /// settled earlier in this same instant's batch and removed the hedge
    /// record — are dropped here, exactly where the sequential engine's
    /// `cancel` would have suppressed them.
    fn hedge_win(&mut self, task: u64, attempt: u32, now: SimTime) {
        let hedge = match self.hedge_running.get(&task) {
            Some(h) if h.attempt == attempt => {
                self.hedge_running.remove(&task).expect("probed just above")
            }
            _ => return,
        };
        let slot = self.tasks[task as usize]
            .as_mut()
            .expect("hedge won for a live task")
            .running
            .take()
            .expect("hedge won over a running main attempt");
        let run = self.running.remove(slot);
        self.cancel_event(run.shard, run.event);
        self.util.hedge_waste(&run.alloc, run.started, now);
        self.scheduler.release_owned(run.alloc);
        if self.telemetry.enabled() {
            let tele = self.telemetry.clone();
            let owner = self.tasks[task as usize]
                .as_ref()
                .map(|t| t.spans.attempt)
                .unwrap_or(SpanId::NONE);
            tele.instant(
                SpanCat::Hedge,
                "hedge-win",
                owner,
                track::task(task),
                Stamp::virt(now),
                &[("node", hedge.alloc.node as i64)],
            );
            tele.count("hedge_wins", 1);
        }
        self.finish_task(TaskId(task), hedge.alloc, hedge.started, now, hedge.setup);
        self.place_ready(now);
    }

    /// The main attempt settled (completed, failed, or was evicted) while a
    /// hedge duplicate was still in flight: cancel the duplicate and book
    /// its occupancy as hedge waste. `release` is false when the hedge's
    /// own node just crashed — the drained pool is rebuilt, so forfeited
    /// slots must not be released back into it.
    fn settle_hedge_loser(&mut self, task: u64, release: bool, now: SimTime) {
        let Some(hedge) = self.hedge_running.remove(&task) else {
            return;
        };
        self.cancel_event(hedge.shard, hedge.event);
        let node = hedge.alloc.node;
        self.util.hedge_waste(&hedge.alloc, hedge.started, now);
        if release {
            self.scheduler.release_owned(hedge.alloc);
        }
        if self.telemetry.enabled() {
            let tele = self.telemetry.clone();
            let owner = self.tasks[task as usize]
                .as_ref()
                .map(|t| t.spans.attempt)
                .unwrap_or(SpanId::NONE);
            tele.instant(
                SpanCat::Hedge,
                "hedge-lose",
                owner,
                track::task(task),
                Stamp::virt(now),
                &[("node", node as i64)],
            );
            tele.count("hedge_losses", 1);
        }
    }

    /// A retry backoff expires: re-enqueue the task and scan.
    fn requeue(&mut self, task: u64, now: SimTime) {
        let (request, priority, attempt) = {
            let t = self.tasks[task as usize]
                .as_ref()
                .expect("requeued task has a record");
            (t.request, t.priority, t.attempts)
        };
        self.scheduler
            .enqueue_with_priority(TaskId(task), request, priority);
        if self.telemetry.enabled() {
            let tele = self.telemetry.clone();
            let at = Stamp::virt(now);
            let t = self.tasks[task as usize]
                .as_mut()
                .expect("requeued task has a record");
            let queue = tele.span(
                SpanCat::Queue,
                "queue",
                t.spans.task,
                track::task(task),
                at,
                &[("attempt", attempt as i64)],
            );
            t.spans.queue = queue;
            t.spans.queued_at = now;
            tele.gauge("queue_depth", self.scheduler.queue_len() as f64);
        }
        self.place_ready(now);
    }

    /// A node crash event: drain the node and evict its resident
    /// attempts. Victims forfeit their allocations (the drained pool is
    /// rebuilt, so nothing is released) and consume a retry attempt each.
    fn crash(&mut self, node: u32, now: SimTime) {
        // Victims in task-id order: slab iteration order must not leak
        // into the deterministic event stream.
        let mut victims: Vec<(u64, SlotId)> = self
            .running
            .iter()
            .filter(|(_, r)| r.alloc.node == node)
            .map(|(slot, r)| (r.task, slot))
            .collect();
        victims.sort_unstable_by_key(|&(task, _)| task);
        self.crashed[node as usize] = true;
        // A node already drained by a suspicion verdict stays drained;
        // draining twice would corrupt the pool.
        if !self.suspected[node as usize] {
            self.scheduler.drain_node(node);
        }
        if self.telemetry.enabled() {
            self.telemetry.instant(
                SpanCat::Fault,
                "node-crash",
                SpanId::NONE,
                track::FAULT,
                Stamp::virt(now),
                &[("node", node as i64)],
            );
            self.telemetry.count("node_crashes", 1);
        }
        // Hedge duplicates resident on the crashed node forfeit their
        // slots (the drained pool is rebuilt, so nothing is released), no
        // matter where their main attempt runs — the main keeps going.
        {
            let mut hedge_ids: Vec<u64> = self
                .hedge_running
                .iter()
                .filter(|(_, r)| r.alloc.node == node)
                .map(|(&i, _)| i)
                .collect();
            hedge_ids.sort_unstable();
            for i in hedge_ids {
                self.settle_hedge_loser(i, false, now);
            }
        }
        for (task, slot) in victims {
            let run = self.running.remove(slot);
            self.tasks[task as usize]
                .as_mut()
                .expect("victim has a record")
                .running = None;
            self.cancel_event(run.shard, run.event);
            // A victim's surviving hedge (on a different node by
            // construction) is settled normally before the attempt fails.
            self.settle_hedge_loser(task, true, now);
            self.util.waste(&run.alloc, run.started, now);
            self.fail_attempt(TaskId(task), TaskError::NodeCrashed { node }, run.started, now, node);
        }
    }

    /// A node recover event: re-admit the node and place waiting tasks.
    fn recover(&mut self, node: u32, now: SimTime) {
        self.crashed[node as usize] = false;
        // The healed node gets a fresh liveness grace period, and any
        // standing suspicion is cleared by this ground-truth recovery.
        self.suspected[node as usize] = false;
        self.last_heard[node as usize] = now;
        self.scheduler.recover_node(node);
        if self.telemetry.enabled() {
            self.telemetry.instant(
                SpanCat::Fault,
                "node-recover",
                SpanId::NONE,
                track::FAULT,
                Stamp::virt(now),
                &[("node", node as i64)],
            );
        }
        self.place_ready(now);
    }

    /// Place every task the scheduler allows, staging a completion event
    /// per placement. The fault plan decides each attempt's outcome *at
    /// placement*; the single event either finishes the task or ends a
    /// doomed attempt early/late.
    fn place_ready(&mut self, now: SimTime) {
        if !self.bootstrapped {
            return;
        }
        let queued = self.scheduler.queue_len();
        let placements = self.scheduler.place_ready();
        if self.telemetry.enabled() && queued > 0 {
            let tele = self.telemetry.clone();
            let at = Stamp::virt(now);
            let round = tele.span(
                SpanCat::Scheduler,
                "placement-round",
                SpanId::NONE,
                track::SCHED,
                at,
                &[
                    ("queued", queued as i64),
                    ("placed", placements.len() as i64),
                ],
            );
            tele.end(round, at);
            tele.count("placement_rounds", 1);
            tele.gauge("queue_depth", self.scheduler.queue_len() as f64);
        }
        let mut launched = 0u64;
        debug_assert!(self.queue_waits.is_empty());
        // Placements that hand their slots straight back mid-round (deadline
        // holds, shape sheds) can strand later queue entries: the freed
        // frontier is never re-scanned. Without the control plane that gap
        // is benign — the event queue drains and the run ends — and fixing
        // it would break byte-identity with the pre-control engine. With
        // the plane on, the heartbeat chain keeps the queue alive forever,
        // so a stranded entry would livelock termination; re-scan below.
        let mut stranded = false;
        for (id, mut alloc) in placements {
            let idx = id.0 as usize;
            // Quarantine: an open shape circuit breaker sheds the whole
            // shape class at the placement grant — the slots go straight
            // back and the lineage ends with a typed error instead of
            // burning a retry ladder on a poisoned shape.
            let request = self.tasks[idx].as_ref().expect("placed task exists").request;
            let shape = (request.cores, request.gpus);
            let tripped = match self.quarantine {
                Some(q) if q.shape_trip > 0 => {
                    self.shape_poison.get(&shape).copied().unwrap_or(0) >= q.shape_trip
                }
                _ => false,
            };
            if tripped {
                stranded = true;
                self.scheduler.release_owned(alloc);
                let mut task = self.tasks[idx].take().expect("placed task exists");
                task.state.advance(TaskState::Failed);
                self.in_flight -= 1;
                if self.telemetry.enabled() {
                    let tele = self.telemetry.clone();
                    let at = Stamp::virt(now);
                    tele.end(task.spans.queue, at);
                    tele.instant(
                        SpanCat::Quarantine,
                        "shape-shed",
                        task.spans.task,
                        track::task(id.0),
                        at,
                        &[
                            ("cores", request.cores as i64),
                            ("gpus", request.gpus as i64),
                        ],
                    );
                    tele.end(task.spans.task, at);
                    tele.count("tasks_shed", 1);
                    tele.gauge("in_flight", self.in_flight as f64);
                }
                self.completions.push_back(Completion {
                    task: id,
                    name: task.name,
                    tag: task.tag,
                    result: Err(TaskError::ShapeCircuitOpen {
                        cores: request.cores,
                        gpus: request.gpus,
                    }),
                    started: now,
                    finished: now,
                    attempts: task.attempts,
                    hedged: task.hedged,
                });
                continue;
            }
            // Retry steering: a retried attempt granted a node the task
            // already failed on is re-homed when any other node has
            // capacity. The alternative is claimed *before* the original
            // grant is released, so the two can never alias; with no
            // alternative the original grant is kept (a suspect node
            // beats no node).
            if self.quarantine.is_some() {
                let avoid = self.failed_nodes.get(&id.0).cloned().unwrap_or_default();
                if avoid.contains(&alloc.node) {
                    if let Some(alt) = self.scheduler.alloc_avoiding(&request, &avoid) {
                        let original = std::mem::replace(&mut alloc, alt);
                        self.scheduler.release_owned(original);
                    }
                }
            }
            let (kind, duration, task_walltime, attempts) = {
                let t = self.tasks[idx].as_ref().expect("placed task exists");
                (t.kind, t.duration, t.walltime, t.attempts)
            };
            let fault = self.faults.attempt_fault(id.0, attempts);
            let hang_factor = self.faults.config().hang_factor;
            let setup = self.exec_setup.saturating_add(kind.launch_overhead());
            let mut run = duration;
            if fault == AttemptFault::Hang {
                run = run.mul_f64(hang_factor);
            }
            let total = setup.saturating_add(run);
            // Degraded-node dilation: work overlapping one of the node's
            // slowdown windows takes `factor`× longer while inside it.
            // Without configured slowdowns every schedule is empty and
            // this is an exact identity.
            let total = dilate_span(&self.slow[alloc.node as usize], now, total);
            // Walltime counts from slot grant and wins over other faults.
            let (outcome, span) = match task_walltime {
                Some(limit) if limit < total => (Planned::TimedOut(limit), limit),
                _ => match fault {
                    AttemptFault::Transient => (Planned::Injected, total),
                    _ => (Planned::Finish, total),
                },
            };
            // Walltime-aware drain: an attempt that cannot finish inside
            // the allocation deadline is held, not launched.
            if self.deadline.is_some_and(|d| now + span > d) {
                stranded = true;
                self.scheduler.release_owned(alloc);
                self.held.push(id.0);
                if self.telemetry.enabled() {
                    let tele = self.telemetry.clone();
                    let at = Stamp::virt(now);
                    let spans = self.tasks[idx].as_ref().expect("held task exists").spans;
                    tele.end(spans.queue, at);
                    tele.instant(SpanCat::Task, "held", spans.task, track::task(id.0), at, &[]);
                    tele.count("tasks_held", 1);
                }
                continue;
            }
            self.tasks[idx]
                .as_mut()
                .expect("placed task exists")
                .state
                .advance(TaskState::ExecSetup);
            self.util.place(&alloc, now);
            launched += 1;
            if self.telemetry.enabled() {
                let tele = self.telemetry.clone();
                let at = Stamp::virt(now);
                let spans = self.tasks[idx].as_ref().expect("placed task exists").spans;
                tele.end(spans.queue, at);
                self.queue_waits
                    .push(now.since(spans.queued_at).as_secs_f64());
                let attempt_span = tele.span(
                    SpanCat::Attempt,
                    "attempt",
                    spans.task,
                    track::task(id.0),
                    at,
                    &[("attempt", attempts as i64), ("node", alloc.node as i64)],
                );
                self.tasks[idx]
                    .as_mut()
                    .expect("placed task exists")
                    .spans
                    .attempt = attempt_span;
            }
            // Under the control plane the node's completion report is sent
            // at the attempt's modeled finish and *routed*: it settles at
            // its (at-least-once) delivery instant, where the lease fence
            // and dedup set decide whether its effects apply. Without the
            // plane the report is the completion — the event fires at the
            // finish instant exactly as before.
            let home = alloc.node as usize % self.nshards;
            let (shard, event) = match self.route(
                "done",
                msg_key(id.0, attempts),
                Some(alloc.node),
                now + span,
            ) {
                Some((primary, duplicate)) => {
                    let placed = self.schedule_on(
                        home,
                        primary,
                        Ev::DeliverDone {
                            task: id.0,
                            attempt: attempts,
                        },
                    );
                    if let Some(dup) = duplicate {
                        self.schedule_on(
                            home,
                            dup,
                            Ev::DeliverDone {
                                task: id.0,
                                attempt: attempts,
                            },
                        );
                    }
                    placed
                }
                None => self.schedule_on(
                    home,
                    now + span,
                    Ev::Complete {
                        task: id.0,
                        attempt: attempts,
                    },
                ),
            };
            let slot = self.running.insert(Running {
                task: id.0,
                attempt: attempts,
                alloc,
                started: now,
                setup,
                outcome,
                shard,
                event,
            });
            self.tasks[idx]
                .as_mut()
                .expect("placed task exists")
                .running = Some(slot);
            // Hedge arming: once the shape class has a runtime estimate, an
            // attempt still running past k× that estimate gets a duplicate.
            // The check is armed only when it could fire before the modeled
            // completion — estimate-free shapes fall back to the attempt's
            // own span (threshold = k × span ≥ span), so they never arm and
            // the hedging-off path schedules nothing at all.
            if let Some(policy) = self.hedge {
                let threshold = self
                    .hedge_estimate(shape, span, policy.min_samples)
                    .mul_f64(policy.threshold);
                if threshold < span {
                    self.schedule(
                        now + threshold,
                        Ev::HedgeCheck {
                            task: id.0,
                            attempt: attempts,
                        },
                    );
                }
            }
        }
        if launched > 0 {
            self.telemetry.count("placements", launched);
        }
        self.telemetry
            .observe_many("queue_wait_seconds", 0.0, 14_400.0, 48, &self.queue_waits);
        self.queue_waits.clear();
        // See `stranded` above: each recursion either holds, sheds or
        // places at least one queued task, so the depth is bounded by the
        // queue length.
        if stranded && self.control.is_some() {
            self.place_ready(now);
        }
    }
}

impl ExecutionBackend for ShardedBackend {
    fn submit(&mut self, desc: TaskDescription) -> TaskId {
        let id = TaskId(self.tasks.len() as u64);
        let now = self.now;
        assert!(
            desc.request.fits_node(self.scheduler.node()),
            "{id}: request {} can never fit the pilot's node",
            desc.request
        );
        let mut spans = TaskSpans {
            task: SpanId::NONE,
            queue: SpanId::NONE,
            attempt: SpanId::NONE,
            queued_at: now,
        };
        if self.telemetry.enabled() {
            let tele = self.telemetry.clone();
            let at = Stamp::virt(now);
            let tr = track::task(id.0);
            let task_span = tele.span(
                SpanCat::Task,
                &desc.name,
                SpanId::NONE,
                tr,
                at,
                &[("task", id.0 as i64), ("priority", desc.priority as i64)],
            );
            let queue_span = tele.span(SpanCat::Queue, "queue", task_span, tr, at, &[("attempt", 0)]);
            spans.task = task_span;
            spans.queue = queue_span;
            tele.count("tasks_submitted", 1);
        }
        let mut state = StateCell::new();
        state.advance(TaskState::Scheduling);
        let request = desc.request;
        let priority = desc.priority;
        self.tasks.push(Some(Task {
            name: desc.name,
            tag: desc.tag,
            request,
            priority,
            duration: desc.duration,
            gpu_busy_fraction: desc.gpu_busy_fraction,
            kind: desc.kind,
            walltime: desc.walltime,
            attempts: 0,
            work: desc.work,
            state,
            spans,
            running: None,
            hedged: false,
        }));
        self.in_flight += 1;
        // Under the control plane the submit command itself is routed:
        // the task enters the scheduler queue at the command's hub
        // delivery, not at the client call.
        if let Some((primary, duplicate)) = self.route("submit", msg_key(id.0, 0), None, now) {
            if self.telemetry.enabled() {
                self.telemetry.gauge("in_flight", self.in_flight as f64);
            }
            self.schedule(primary, Ev::SubmitArrive { task: id.0 });
            if let Some(dup) = duplicate {
                self.schedule(dup, Ev::SubmitArrive { task: id.0 });
            }
            self.ensure_heartbeats(now);
            return id;
        }
        self.scheduler.enqueue_with_priority(id, request, priority);
        if self.telemetry.enabled() {
            self.telemetry
                .gauge("queue_depth", self.scheduler.queue_len() as f64);
            self.telemetry.gauge("in_flight", self.in_flight as f64);
        }
        // One coalesced placement scan per submission burst, exactly like
        // the sequential backend: every submission before the next pump is
        // already enqueued when the scan fires.
        if !std::mem::replace(&mut self.place_event_pending, true) {
            self.schedule(now, Ev::PlaceScan);
        }
        id
    }

    fn next_completion(&mut self) -> Option<Completion> {
        loop {
            if let Some(c) = self.completions.pop_front() {
                return Some(c);
            }
            // Nothing in flight ⇒ no completion can materialize. Do not
            // drain the remaining event horizon: under fault injection it
            // holds far-future crash/recover events whose processing would
            // pointlessly advance virtual time past the workload's end.
            if self.in_flight == 0 {
                return None;
            }
            // With a live detector the heartbeat chains keep the event
            // queues nonempty forever; a workload reduced to held tasks
            // can never complete, so stop instead of ticking heartbeats
            // until the end of time.
            if self.control.is_some() && self.in_flight == self.held.len() {
                return None;
            }
            if !self.pump() {
                return None;
            }
        }
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn utilization(&self) -> UtilizationReport {
        self.util.report(self.now)
    }

    fn phase_breakdown(&self) -> PhaseBreakdown {
        self.breakdown
    }

    fn held_tasks(&self) -> usize {
        self.held.len()
    }

    fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    fn cancel(&mut self, id: TaskId) -> bool {
        if !self.scheduler.cancel_queued(id) {
            // Already placed, finished, unknown — or requeued but waiting
            // out a retry backoff (best-effort: such a task re-enters the
            // queue when its backoff fires).
            return false;
        }
        let mut task = self.tasks[id.0 as usize]
            .take()
            .expect("queued task has a record");
        task.state.advance(TaskState::Canceled);
        self.in_flight -= 1;
        if self.telemetry.enabled() {
            let tele = self.telemetry.clone();
            let at = Stamp::virt(self.now);
            tele.end(task.spans.queue, at);
            tele.instant(
                SpanCat::Task,
                "canceled",
                task.spans.task,
                track::task(id.0),
                at,
                &[],
            );
            tele.end(task.spans.task, at);
            tele.count("tasks_canceled", 1);
            tele.gauge("in_flight", self.in_flight as f64);
        }
        let attempts = task.attempts;
        // Under the control plane the cancel takes effect at the
        // (coordinator-local) queue immediately, but its acknowledgment —
        // the terminal `Canceled` completion — routes back over the hub
        // link and surfaces at delivery.
        if let Some((primary, duplicate)) =
            self.route("cancel", msg_key(id.0, attempts), None, self.now)
        {
            // The deferred ack keeps the task in flight until delivery so
            // the completion pump knows to keep stepping.
            self.in_flight += 1;
            self.canceled_acks
                .insert(id.0, (task.name, task.tag, task.hedged));
            self.schedule(
                primary,
                Ev::CancelAck {
                    task: id.0,
                    attempt: attempts,
                },
            );
            if let Some(dup) = duplicate {
                self.schedule(
                    dup,
                    Ev::CancelAck {
                        task: id.0,
                        attempt: attempts,
                    },
                );
            }
            return true;
        }
        self.completions.push_back(Completion {
            task: id,
            name: task.name,
            tag: task.tag,
            result: Err(TaskError::Canceled),
            started: self.now,
            finished: self.now,
            attempts,
            hedged: task.hedged,
        });
        true
    }

    fn control_stats(&self) -> ControlStats {
        self.cstats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, ScriptedCrash, ScriptedPartition, ScriptedSlowdown};
    use crate::resources::{NodeSpec, ResourceRequest};
    use crate::scheduler::PlacementPolicy;
    use impress_sim::props;

    fn config(cores: u32, gpus: u32) -> PilotConfig {
        PilotConfig {
            node: NodeSpec::new(cores, gpus, 64),
            nodes: 1,
            policy: PlacementPolicy::Backfill,
            bootstrap: SimDuration::from_secs(100),
            exec_setup_per_task: SimDuration::from_secs(10),
            seed: 0,
        }
    }

    fn task(name: &str, cores: u32, gpus: u32, secs: u64) -> TaskDescription {
        TaskDescription::new(
            name,
            ResourceRequest::with_gpus(cores, gpus),
            SimDuration::from_secs(secs),
        )
    }

    #[test]
    fn nothing_starts_before_bootstrap() {
        let mut b = ShardedBackend::new(config(4, 0));
        b.submit(task("t", 1, 0, 50));
        let c = b.next_completion().unwrap();
        // bootstrap 100 + setup 10 + run 50
        assert_eq!(c.started, SimTime::from_micros(100_000_000));
        assert_eq!(c.finished, SimTime::from_micros(160_000_000));
    }

    #[test]
    fn oversubscription_serializes_and_outputs_flow_back() {
        let mut b = ShardedBackend::new(config(1, 0));
        b.submit(task("a", 1, 0, 100).with_work(|| 7u32));
        b.submit(task("b", 1, 0, 100));
        let c1 = b.next_completion().unwrap();
        let first_finished = c1.finished;
        assert_eq!(c1.output::<u32>(), 7);
        let c2 = b.next_completion().unwrap();
        assert!(c2.started >= first_finished, "second task must wait");
        assert!(b.next_completion().is_none());
        assert_eq!(b.in_flight(), 0);
    }

    #[test]
    fn queued_tasks_can_be_cancelled_running_ones_cannot() {
        let mut b = ShardedBackend::new(config(1, 0));
        let _running = b.submit(task("running", 1, 0, 100));
        let queued = b.submit(task("queued", 1, 0, 100));
        assert!(b.cancel(queued), "queued task is cancellable");
        assert!(!b.cancel(queued), "double cancel is a no-op");
        let mut results = Vec::new();
        while let Some(c) = b.next_completion() {
            results.push((c.name, c.result.is_ok()));
        }
        assert_eq!(results.len(), 2);
        assert!(results.iter().any(|(n, ok)| n == "queued" && !ok));
        assert!(results.iter().any(|(n, ok)| n == "running" && *ok));
    }

    #[test]
    fn parallel_drive_matches_serial_drive() {
        let run = |parallel: bool| -> Vec<(u64, u64, u64)> {
            let mut b = RuntimeConfig::new(config(3, 1))
                .shards(3)
                .parallel_shards(parallel)
                .sharded();
            for i in 0..10 {
                b.submit(task(&format!("t{i}"), 1 + (i % 2), i % 2, 40 + i as u64));
            }
            let mut log = Vec::new();
            while let Some(c) = b.next_completion() {
                log.push((c.task.0, c.started.as_micros(), c.finished.as_micros()));
            }
            log
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn deadline_holds_tasks_instead_of_launching() {
        let mut b = RuntimeConfig::new(config(1, 0))
            .deadline(SimTime::from_micros(200_000_000))
            .sharded();
        b.submit(task("fits", 1, 0, 50));
        b.submit(task("held", 1, 0, 500));
        let c = b.next_completion().unwrap();
        assert_eq!(c.name, "fits");
        assert!(b.next_completion().is_none(), "held task never completes");
        assert_eq!(b.held_tasks(), 1);
        assert_eq!(b.in_flight(), 1);
    }

    /// The tentpole's differential proof: on random campaigns — random
    /// cluster shapes, workloads, fault environments, deadlines, shard
    /// counts, pre-drain cancellations — the sharded engine replays the
    /// sequential backend *bit-for-bit*: completion streams, virtual
    /// clocks, the full metrics snapshot, and the byte-exact Chrome
    /// trace. The parallel drive mode must match its own serial drive the
    /// same way.
    mod differential {
        use super::*;
        use impress_telemetry::{chrome_trace, MetricsSnapshot, Telemetry, TraceClock};

        struct Campaign {
            config: PilotConfig,
            faults: FaultPlan,
            retry: RetryPolicy,
            deadline: Option<SimTime>,
            hedge: Option<HedgePolicy>,
            quarantine: Option<QuarantinePolicy>,
            /// (cores, gpus, secs, priority, walltime_secs)
            descs: Vec<(u32, u32, u64, i32, Option<u64>)>,
            cancels: Vec<usize>,
        }

        struct Outcome {
            completions: Vec<(u64, String, u64, u64, u32, bool, String)>,
            end: u64,
            held: usize,
            snapshot: MetricsSnapshot,
            trace: String,
            breakdown: PhaseBreakdown,
            util: UtilizationReport,
            cstats: ControlStats,
        }

        fn drive(backend: &mut dyn ExecutionBackend, c: &Campaign) -> Vec<(u64, String, u64, u64, u32, bool, String)> {
            let ids: Vec<TaskId> = c
                .descs
                .iter()
                .map(|&(cores, gpus, secs, priority, walltime)| {
                    let mut d = task("t", cores, gpus, secs).with_priority(priority);
                    if let Some(w) = walltime {
                        d = d.with_walltime(SimDuration::from_secs(w));
                    }
                    backend.submit(d)
                })
                .collect();
            for &i in &c.cancels {
                backend.cancel(ids[i]);
            }
            let mut log = Vec::new();
            while let Some(done) = backend.next_completion() {
                log.push((
                    done.task.0,
                    done.name,
                    done.started.as_micros(),
                    done.finished.as_micros(),
                    done.attempts,
                    done.hedged,
                    format!("{:?}", done.result.map(|_| ())),
                ));
            }
            log
        }

        fn run(c: &Campaign, make: impl FnOnce(RuntimeConfig) -> Box<dyn ExecutionBackend>) -> Outcome {
            let (telemetry, recorder) = Telemetry::recording(1 << 16);
            let mut rt = RuntimeConfig::new(c.config.clone())
                .faults(c.faults.clone(), c.retry)
                .telemetry(telemetry.clone());
            if let Some(d) = c.deadline {
                rt = rt.deadline(d);
            }
            if let Some(h) = c.hedge {
                rt = rt.hedge(h);
            }
            if let Some(q) = c.quarantine {
                rt = rt.quarantine(q);
            }
            let mut backend = make(rt);
            let completions = drive(backend.as_mut(), c);
            Outcome {
                completions,
                cstats: backend.control_stats(),
                end: backend.now().as_micros(),
                held: backend.held_tasks(),
                snapshot: telemetry.snapshot(),
                trace: impress_json::to_string(&chrome_trace(
                    &recorder.events(),
                    TraceClock::Virtual,
                )),
                breakdown: backend.phase_breakdown(),
                util: backend.utilization(),
            }
        }

        props! {
            /// 256 random campaigns, three engines each: sequential oracle,
            /// sharded (serial drive), sharded (parallel drive).
            fn sharded_engine_matches_sequential_oracle(rng, cases = 256) {
                let nodes = 1 + rng.below(6) as u32;
                let cores = 2 + rng.below(7) as u32;
                let gpus = rng.below(3) as u32;
                let seed = rng.next_u64();
                let nshards = 1 + rng.below(5);

                let mut fc = FaultConfig::none();
                if rng.below(2) == 1 {
                    fc.task_failure_rate = rng.below(30) as f64 / 100.0;
                    fc.task_hang_rate = rng.below(20) as f64 / 100.0;
                    fc.hang_factor = 2.0 + rng.below(6) as f64;
                }
                if rng.below(3) == 0 {
                    for _ in 0..1 + rng.below(3) {
                        fc.scripted_crashes.push(ScriptedCrash {
                            node: rng.below(nodes as usize) as u32,
                            at: SimTime::from_micros((60 + rng.below(2000) as u64) * 1_000_000),
                            outage: SimDuration::from_secs(30 + rng.below(600) as u64),
                        });
                    }
                }
                // Gray failures: scripted and stochastic slowdown windows.
                if rng.below(3) == 0 {
                    for _ in 0..1 + rng.below(2) {
                        fc.scripted_slowdowns.push(ScriptedSlowdown {
                            node: rng.below(nodes as usize) as u32,
                            at: SimTime::from_micros((30 + rng.below(1500) as u64) * 1_000_000),
                            duration: SimDuration::from_secs(60 + rng.below(900) as u64),
                            factor: 2.0 + rng.below(18) as f64,
                        });
                    }
                }
                if rng.below(4) == 0 {
                    fc.node_slowdown_mtbf = Some(SimDuration::from_secs(600 + rng.below(3600) as u64));
                    fc.slowdown_duration = SimDuration::from_secs(60 + rng.below(600) as u64);
                    fc.slowdown_factor = 2.0 + rng.below(10) as f64;
                    fc.max_slowdowns_per_node = 1 + rng.below(3) as u32;
                }
                // Control-plane link faults on about a third of campaigns:
                // drops, duplicates, latency/jitter/reorder, scripted
                // partitions, heartbeat failure detection. The other two
                // thirds keep proving the strict no-op path stays
                // byte-identical to the pre-control-plane engine.
                if rng.below(3) == 0 {
                    fc.link.drop_rate = rng.below(25) as f64 / 100.0;
                    fc.link.duplicate_rate = rng.below(30) as f64 / 100.0;
                    fc.link.delay = SimDuration::from_micros(1_000 + rng.below(150_000) as u64);
                    fc.link.jitter = SimDuration::from_micros(rng.below(80_000) as u64);
                    fc.link.reorder_rate = rng.below(20) as f64 / 100.0;
                    fc.link.retransmit_timeout = SimDuration::from_secs(1 + rng.below(4) as u64);
                    if rng.below(2) == 0 {
                        fc.link.partitions.push(ScriptedPartition {
                            first_node: 0,
                            last_node: rng.below(nodes as usize) as u32,
                            at: SimTime::from_micros((30 + rng.below(900) as u64) * 1_000_000),
                            duration: SimDuration::from_secs(20 + rng.below(180) as u64),
                        });
                    }
                    if rng.below(2) == 0 {
                        let interval = 1 + rng.below(5) as u64;
                        fc.link.heartbeat_interval = Some(SimDuration::from_secs(interval));
                        // Any timeout is legal — too-tight ones just produce
                        // false suspicions, which resync. Both sides of that
                        // coin must replay identically.
                        fc.link.heartbeat_timeout =
                            Some(SimDuration::from_secs(interval * (3 + rng.below(6) as u64)));
                    }
                }
                let mut descs = Vec::new();
                for _ in 0..1 + rng.below(25) {
                    descs.push((
                        1 + rng.below(cores as usize) as u32,
                        rng.below(gpus as usize + 1) as u32,
                        5 + rng.below(900) as u64,
                        rng.below(5) as i32 - 2,
                        if rng.below(5) == 0 { Some(1 + rng.below(400) as u64) } else { None },
                    ));
                }
                let mut cancels = Vec::new();
                for i in 0..descs.len() {
                    if rng.below(8) == 0 {
                        cancels.push(i);
                    }
                }
                let campaign = Campaign {
                    config: PilotConfig {
                        node: NodeSpec::new(cores, gpus, 64),
                        nodes,
                        policy: PlacementPolicy::Backfill,
                        bootstrap: SimDuration::from_secs(10 + rng.below(120) as u64),
                        exec_setup_per_task: SimDuration::from_secs(rng.below(12) as u64),
                        seed,
                    },
                    faults: FaultPlan::new(fc, seed ^ 0xfa),
                    retry: RetryPolicy {
                        max_retries: rng.below(3) as u32,
                        ..RetryPolicy::retries(2)
                    },
                    deadline: if rng.below(4) == 0 {
                        Some(SimTime::from_micros((500 + rng.below(3000) as u64) * 1_000_000))
                    } else {
                        None
                    },
                    hedge: if rng.below(2) == 0 {
                        Some(HedgePolicy {
                            threshold: 1.5 + rng.below(4) as f64 * 0.5,
                            min_samples: 1 + rng.below(4) as u32,
                        })
                    } else {
                        None
                    },
                    quarantine: if rng.below(2) == 0 {
                        Some(
                            QuarantinePolicy::distinct(2 + rng.below(2) as u32)
                                .with_shape_trip(rng.below(3) as u32),
                        )
                    } else {
                        None
                    },
                    descs,
                    cancels,
                };

                let oracle = run(&campaign, |rt| Box::new(rt.simulated()));
                let serial = run(&campaign, |rt| {
                    Box::new(rt.shards(nshards).parallel_shards(false).sharded())
                });
                let parallel = run(&campaign, |rt| {
                    Box::new(rt.shards(nshards).parallel_shards(true).sharded())
                });

                assert_eq!(oracle.completions, serial.completions, "completion stream diverged");
                assert_eq!(oracle.end, serial.end, "final virtual clock diverged");
                assert_eq!(oracle.held, serial.held, "held-task count diverged");
                assert_eq!(oracle.snapshot, serial.snapshot, "metrics snapshot diverged");
                assert_eq!(oracle.trace, serial.trace, "chrome trace diverged");
                assert_eq!(oracle.breakdown, serial.breakdown, "phase breakdown diverged");
                assert_eq!(oracle.cstats, serial.cstats, "control-plane stats diverged");

                // Utilization: same math, different (aggregate vs per-device)
                // summation order — equal to float round-off.
                let (a, b) = (&oracle.util, &serial.util);
                assert!((a.cpu - b.cpu).abs() < 1e-8, "cpu {} vs {}", a.cpu, b.cpu);
                assert!((a.gpu_slot - b.gpu_slot).abs() < 1e-8, "gpu_slot {} vs {}", a.gpu_slot, b.gpu_slot);
                assert!(
                    (a.gpu_hardware - b.gpu_hardware).abs() < 1e-8,
                    "gpu_hw {} vs {}", a.gpu_hardware, b.gpu_hardware
                );
                assert_eq!(a.makespan, b.makespan);
                assert_eq!(a.tasks, b.tasks);
                assert_eq!(a.retries, b.retries);
                assert!((a.wasted_core_seconds - b.wasted_core_seconds).abs() < 1e-6);
                assert!((a.wasted_gpu_seconds - b.wasted_gpu_seconds).abs() < 1e-6);
                assert_eq!(a.hedges, b.hedges, "hedge count diverged");
                assert!((a.hedge_wasted_core_seconds - b.hedge_wasted_core_seconds).abs() < 1e-6);
                assert!((a.hedge_wasted_gpu_seconds - b.hedge_wasted_gpu_seconds).abs() < 1e-6);

                // Parallel drive: same routine on worker threads ⇒ identical
                // in every observable, bit for bit.
                assert_eq!(serial.completions, parallel.completions, "parallel drive diverged");
                assert_eq!(serial.end, parallel.end);
                assert_eq!(serial.held, parallel.held);
                assert_eq!(serial.snapshot, parallel.snapshot);
                assert_eq!(serial.trace, parallel.trace);
                assert_eq!(serial.cstats, parallel.cstats);
            }
        }
    }
}
